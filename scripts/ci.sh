#!/usr/bin/env bash
# CI gate: formatting, lints, tier-1 build + tests.
#
# Mirrors .github/workflows/ci.yml so the same checks run locally:
#
#   scripts/ci.sh          # everything
#   scripts/ci.sh fmt      # one stage: fmt | clippy | test | chaos | serve | serve-scale | repl | temporal | history | read-scaling
#
# The build environment has no route to crates.io (external deps come
# from shims/), so everything runs offline.

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

stage="${1:-all}"

run_fmt() {
    echo "== fmt =="
    cargo fmt --all -- --check
}

run_clippy() {
    echo "== clippy =="
    cargo clippy --workspace --all-targets -- -D warnings
}

run_test() {
    echo "== build (release) =="
    cargo build --release
    echo "== tier-1 tests (workspace-root suite) =="
    cargo test -q
    echo "== full workspace tests =="
    cargo test --workspace -q
}

run_chaos() {
    echo "== chaos smoke (crash-recovery torture, fixed seeds) =="
    # Bounded deterministic torture runs: each crashes the engine dozens
    # of times mid-write and audits durability, rollback, timestamp
    # repair and AS OF stability after every recovery.
    for seed in 42 7 1337; do
        cargo run --release -q -p immortaldb-chaos --bin torture -- \
            --seed "$seed" --ops 600 --crashes 8
    done
    echo "== chaos smoke (multi-writer group-commit torture, fixed seeds) =="
    # Concurrent committers share group-commit batches; every round the
    # crash lands mid-batch and the audit asserts acked-implies-durable
    # and all-or-nothing recovery of unacknowledged commits.
    for seed in 42 7; do
        cargo run --release -q -p immortaldb-chaos --bin torture -- \
            --threads 4 --seed "$seed" --rounds 6
    done
    echo "== chaos smoke (isolation checker, concurrent-readers mode) =="
    # Dedicated snapshot/AS OF reader threads race the writer workload
    # through the optimistic latch read path (DESIGN.md §11) while the
    # offline timestamp checker audits every observation.
    cargo test --release -q --test isolation_check isolation_checker_concurrent_readers
}

run_serve() {
    echo "== serve smoke (wire server: mixed workload, graceful shutdown, clean reopen) =="
    # Ephemeral port, 4 concurrent net::Client workers doing autocommit
    # writes, explicit transactions and AS OF reads; then a graceful
    # shutdown and a reopen that must NOT count as a crash recovery.
    cargo run --release -q -p immortaldb-net --bin net-smoke
}

run_serve_scale() {
    echo "== serve scale (500 mostly-idle connections on a fixed core pool, sentinel armed) =="
    # Reactor model: 500 connections (>= 90% idle) over 4 worker cores;
    # 50 active clients drive autocommit writes, snapshot transactions
    # and AS OF reads while the isolation sentinel checks every commit
    # and read online. Fails on any shed connection, any unanswered idle
    # connection, thread-per-conn thread counts, unbounded RSS, or a
    # single confirmed isolation violation.
    cargo run --release -q -p immortaldb-net --bin serve-scale
}

run_repl() {
    echo "== repl smoke (WAL shipping: primary + 2 followers, mixed load, restore) =="
    # One primary, two read replicas following over the wire. Asserts
    # bounded replication lag, zero AS OF isolation violations at the
    # replicas, typed READ_ONLY rejection of replica writes, and a
    # RESTORE TABLE ... AS OF round trip that itself replicates.
    cargo run --release -q -p immortaldb-repl --bin repl-smoke
}

run_temporal() {
    echo "== temporal sweep (range walk vs per-timestamp AS OF replay) =="
    # Deep-history workload (100+ updates/object); the VERSIONS BETWEEN
    # range walk must read at least 5x fewer pages than replaying the
    # window with one AS OF scan per commit tick.
    cargo run --release -q -p immortaldb-bench -- --quick temporal
    python3 - <<'EOF'
import json
with open("BENCH_temporal.json") as f:
    r = json.load(f)
ratio = r["fetch_ratio"]
assert r["versions"] > 0, "temporal sweep returned no versions"
assert ratio >= 5.0, f"range walk only {ratio:.1f}x cheaper than AS OF replay"
print(f"temporal: walk {r['walk_fetches']} fetches vs replay "
      f"{r['replay_fetches']} ({ratio:.1f}x, floor 5x)")
EOF
}

run_history() {
    echo "== history sweep (bytes/version + deep AS OF, before/after compaction) =="
    # Chain-depth sweep built with time-split packing off (the pre-delta
    # on-disk format); one compact_history pass must cut bytes/version
    # by >= 2x at depth 100 without slowing deep AS OF reads down.
    cargo run --release -q -p immortaldb-bench -- --quick history
    python3 - <<'EOF'
import json
with open("BENCH_history.json") as f:
    r = json.load(f)
rows = {row["depth"]: row for row in r["rows"]}
d = rows[100]
assert d["versions"] > 0, "history sweep stored no versions"
assert d["reduction"] >= 2.0, \
    f"compaction only cut bytes/version {d['reduction']:.2f}x at depth 100 (floor 2x)"
assert d["pages_rewritten"] > 0, "compaction pass rewrote nothing"
# Latency floor is generous (1.5x, vs the 1.1x tracked in EXPERIMENTS.md)
# because sub-10us reads on shared CI runners are noisy.
assert d["latency_ratio"] <= 1.5, \
    f"deep AS OF reads {d['latency_ratio']:.2f}x slower after compaction"
print(f"history: {d['baseline_bpv']:.0f} -> {d['packed_bpv']:.0f} bytes/version "
      f"({d['reduction']:.2f}x, floor 2x); AS OF latency ratio {d['latency_ratio']:.2f}")
EOF
}

run_read_scaling() {
    echo "== read scaling (1/2/4/8 readers over deep history) =="
    # Sharded frame table + miss singleflight + optimistic page latching:
    # aggregate read throughput must scale with reader threads. The
    # ≥1.5x floor at 4 readers only means anything with cores to scale
    # onto, so it is gated on host parallelism; single-core runners still
    # exercise the sweep and the artifact, and must not REGRESS at 1
    # reader vs the recorded baseline semantics (speedup row 1 == 1.0).
    cargo run --release -q -p immortaldb-bench -- --quick read-scaling
    cores=$(nproc 2>/dev/null || echo 1)
    python3 - "$cores" <<'EOF'
import json, sys
cores = int(sys.argv[1])
with open("BENCH_read_scaling.json") as f:
    r = json.load(f)
rows = {row["readers"]: row for row in r["rows"]}
assert rows[1]["speedup"] == 1.0, "1-reader row is the baseline"
assert all(rows[n]["total_reads"] == n * r["ops_per_reader"] for n in rows), \
    "sweep dropped reads"
four = rows[4]["speedup"]
if cores >= 4:
    assert four >= 1.5, f"4-reader speedup {four:.2f}x below the 1.5x floor"
    print(f"read-scaling: {four:.2f}x at 4 readers (floor 1.5x, {cores} cores)")
else:
    print(f"read-scaling: {four:.2f}x at 4 readers on {cores} core(s) — "
          "floor waived (time-slicing, not latch behaviour)")
EOF
}

case "$stage" in
    fmt) run_fmt ;;
    clippy) run_clippy ;;
    test) run_test ;;
    chaos) run_chaos ;;
    serve) run_serve ;;
    serve-scale) run_serve_scale ;;
    repl) run_repl ;;
    temporal) run_temporal ;;
    history) run_history ;;
    read-scaling) run_read_scaling ;;
    all)
        run_fmt
        run_clippy
        run_test
        run_chaos
        run_serve
        run_serve_scale
        run_repl
        run_temporal
        run_history
        run_read_scaling
        ;;
    *)
        echo "usage: scripts/ci.sh [fmt|clippy|test|all|chaos|serve|serve-scale|repl|temporal|history|read-scaling]" >&2
        exit 2
        ;;
esac

echo "ci: ok"
