//! Replication stream chaos: kill the wire mid-batch, assert the
//! follower reconnects with backoff and converges anyway.
//!
//! The replica connects to the primary through an in-test TCP proxy.
//! After bootstrap, the proxy repeatedly severs every live connection
//! while a writer keeps committing on the primary — the follower loses
//! batches mid-socket, resubscribes from its local log end (the
//! replication position *is* the log position, so nothing is lost or
//! doubled), and must end up byte-identical with the primary. The
//! `repl.reconnects` counter proves the failure path actually ran.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use immortaldb::{Database, DbConfig, Durability, Isolation, Value};
use immortaldb_net::{Server, ServerConfig};
use immortaldb_obs::MetricsRegistry;
use immortaldb_repl::{Replica, ReplicaConfig};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("repl-chaos-{}-{tag}-{nanos}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A dumb TCP proxy whose connections can all be severed on demand.
struct ChaosProxy {
    addr: String,
    live: Arc<Mutex<Vec<TcpStream>>>,
    stop: Arc<AtomicBool>,
}

impl ChaosProxy {
    fn start(upstream: String) -> ChaosProxy {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let live = Arc::clone(&live);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for inbound in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(inbound) = inbound else { continue };
                    let Ok(outbound) = TcpStream::connect(&upstream) else {
                        continue;
                    };
                    let _ = inbound.set_nodelay(true);
                    let _ = outbound.set_nodelay(true);
                    {
                        let mut l = live.lock().unwrap();
                        l.push(inbound.try_clone().unwrap());
                        l.push(outbound.try_clone().unwrap());
                    }
                    pump(inbound.try_clone().unwrap(), outbound.try_clone().unwrap());
                    pump(outbound, inbound);
                }
            });
        }
        ChaosProxy { addr, live, stop }
    }

    /// Sever every live proxied connection mid-stream.
    fn kill_all(&self) {
        let mut l = self.live.lock().unwrap();
        for s in l.drain(..) {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.kill_all();
        // Unblock the accept loop.
        let _ = TcpStream::connect(&self.addr);
    }
}

fn pump(mut from: TcpStream, mut to: TcpStream) {
    std::thread::spawn(move || {
        let mut buf = [0u8; 8 * 1024];
        loop {
            match from.read(&mut buf) {
                Ok(0) | Err(_) => {
                    let _ = to.shutdown(std::net::Shutdown::Both);
                    return;
                }
                Ok(n) => {
                    if to.write_all(&buf[..n]).is_err() {
                        let _ = from.shutdown(std::net::Shutdown::Both);
                        return;
                    }
                }
            }
        }
    });
}

fn write_round(db: &Database, base: i64) {
    let mut txn = db.begin(Isolation::Serializable);
    for k in 0..4i64 {
        let row = vec![Value::Int(k as i32), Value::BigInt(base + k)];
        if base == 0 {
            db.insert_row(&mut txn, "kv", row).unwrap();
        } else {
            db.update_row(&mut txn, "kv", row).unwrap();
        }
    }
    db.commit(&mut txn).unwrap();
}

fn scan_sorted(db: &Database) -> Vec<Vec<Value>> {
    let mut txn = db.begin(Isolation::Serializable);
    let mut rows = db.scan_rows(&mut txn, "kv").unwrap();
    db.commit(&mut txn).unwrap();
    rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    rows
}

#[test]
fn follower_survives_severed_streams_and_converges() {
    let db = Arc::new(
        Database::open(DbConfig::new(tempdir("primary")).durability(Durability::Buffered)).unwrap(),
    );
    let schema = immortaldb::Schema::new(
        vec![
            immortaldb::Column {
                name: "k".into(),
                ctype: immortaldb::ColType::Int,
            },
            immortaldb::Column {
                name: "v".into(),
                ctype: immortaldb::ColType::BigInt,
            },
        ],
        0,
    )
    .unwrap();
    db.create_table("kv", schema, immortaldb::TableKind::Immortal)
        .unwrap();
    write_round(&db, 0);

    let server =
        Server::start(Arc::clone(&db), ServerConfig::new("127.0.0.1:0").workers(4)).unwrap();
    let proxy = ChaosProxy::start(server.local_addr().to_string());

    // Fast backoff so the test converges quickly; private registry so
    // the reconnect counter is unambiguous.
    let metrics = MetricsRegistry::default();
    let replica = Replica::start(
        ReplicaConfig::new(tempdir("replica"), proxy.addr.clone())
            .backoff(Duration::from_millis(20), Duration::from_millis(200))
            .metrics(metrics.clone()),
    )
    .unwrap();

    // Writer load with the proxy repeatedly severing connections under
    // it: batches die mid-socket, acks are lost, subscriptions break.
    let mut last_ts = None;
    for round in 1..=30i64 {
        write_round(&db, round * 100);
        let mut txn = db.begin(Isolation::Serializable);
        db.scan_rows(&mut txn, "kv").unwrap();
        last_ts = Some(db.commit(&mut txn).unwrap());
        if round % 5 == 0 {
            proxy.kill_all();
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let last_ts = last_ts.unwrap();

    // Convergence despite the chaos: the replica horizon must pass the
    // last commit within a bounded time.
    let deadline = Instant::now() + Duration::from_secs(60);
    while replica.horizon() < last_ts {
        assert!(
            Instant::now() < deadline,
            "follower failed to converge after stream kills (horizon {:?})",
            replica.horizon()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    assert!(
        metrics.repl.reconnects.get() >= 1,
        "the stream was never actually severed — chaos did not engage"
    );

    // Byte-level agreement: the replica's log is a prefix of the
    // primary's, and the visible table state matches exactly.
    assert_eq!(scan_sorted(replica.db()), scan_sorted(&db));
    let rdb = replica.stop();
    assert!(rdb.wal().end_lsn() <= db.wal().end_lsn());

    proxy.stop();
    server.shutdown().unwrap();
}
