//! Concurrent read-scaling stress with an exact commit-history shadow.
//!
//! N reader threads (mixed snapshot-current and `AS OF` point reads) run
//! against M writer threads driving inserts, updates and deletes — deep
//! version chains, leaf splits and (on the TSB index) time splits —
//! while the optimistic page-latch protocol (DESIGN.md §11) serves the
//! read side. Writers commit under a shadow mutex that appends every
//! committed change to a `(timestamp, key, state)` log, so the log is
//! always exactly the engine's commit history. Each read is verified
//! against the state the shadow log implies for its timestamp: zero
//! violations allowed, on two fixed seeds, for both index layouts.
//!
//! The runs also assert `latch.optimistic_retries > 0` — the protocol's
//! conflict path must actually exercise under writer pressure (a hot-key
//! phase tops up contention on machines where the main phase raced too
//! cleanly).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use immortaldb::{Database, DbConfig, Durability, Isolation, Session, SimClock, Value};
use immortaldb_common::Timestamp;

const WRITERS: usize = 2;
const READERS: usize = 3;
const COMMITS_PER_WRITER: u32 = 250;
/// Verified reads each reader must complete (it keeps going while
/// writers are still running, so the mixed phase lasts the whole run).
const MIN_READS: u32 = 600;

/// One committed change: `(commit ts, oid, Some((x, y)) | None = delete)`.
type Log = Vec<(Timestamp, i32, Option<(i32, i32)>)>;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "read-scaling-stress-{}-{tag}-{nanos}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn xorshift(rng: &mut u64) -> u64 {
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    *rng
}

/// Table state at `ts` per the shadow: fold every change at or below it.
fn state_at(log: &Log, ts: Timestamp) -> BTreeMap<i32, (i32, i32)> {
    let mut m = BTreeMap::new();
    for (cts, oid, val) in log {
        if *cts <= ts {
            match val {
                Some(xy) => {
                    m.insert(*oid, *xy);
                }
                None => {
                    m.remove(oid);
                }
            }
        }
    }
    m
}

/// Latest state: fold the whole log (complete under the shadow lock).
fn latest_state(log: &Log) -> BTreeMap<i32, (i32, i32)> {
    state_at(log, Timestamp::MAX)
}

fn expect_row(oid: i32, xy: Option<(i32, i32)>) -> Option<Vec<Value>> {
    xy.map(|(x, y)| vec![Value::Int(oid), Value::Int(x), Value::Int(y)])
}

/// Writer `w` owns oids with `oid % WRITERS == w`, so Serializable
/// writers never conflict with each other; every commit appends its
/// changes to the shadow log under the shadow mutex, which makes the log
/// exactly the commit history in timestamp order.
#[allow(clippy::too_many_arguments)]
fn writer(
    db: &Database,
    shadow: &Mutex<Log>,
    clock: &SimClock,
    writers_left: &AtomicUsize,
    w: usize,
    seed: u64,
) {
    let mut rng = seed ^ (w as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut live: Vec<i32> = Vec::new();
    let mut next_new = w as i32;
    for _ in 0..COMMITS_PER_WRITER {
        let nops = 1 + (xorshift(&mut rng) % 3) as usize;
        let mut txn = db.begin(Isolation::Serializable);
        let mut pending: Vec<(i32, Option<(i32, i32)>)> = Vec::new();
        for _ in 0..nops {
            let roll = xorshift(&mut rng) % 10;
            if live.is_empty() || roll < 3 {
                let oid = next_new;
                next_new += WRITERS as i32;
                let (x, y) = (
                    (xorshift(&mut rng) % 10_000) as i32,
                    (xorshift(&mut rng) % 10_000) as i32,
                );
                db.insert_row(
                    &mut txn,
                    "obj",
                    vec![Value::Int(oid), Value::Int(x), Value::Int(y)],
                )
                .unwrap();
                live.push(oid);
                pending.push((oid, Some((x, y))));
            } else {
                let idx = (xorshift(&mut rng) % live.len() as u64) as usize;
                let oid = live[idx];
                if pending.iter().any(|(o, _)| *o == oid) {
                    continue; // at most one version per key per commit
                }
                if roll < 5 {
                    db.delete_row(&mut txn, "obj", &Value::Int(oid)).unwrap();
                    live.swap_remove(idx);
                    pending.push((oid, None));
                } else {
                    let (x, y) = (
                        (xorshift(&mut rng) % 10_000) as i32,
                        (xorshift(&mut rng) % 10_000) as i32,
                    );
                    db.update_row(
                        &mut txn,
                        "obj",
                        vec![Value::Int(oid), Value::Int(x), Value::Int(y)],
                    )
                    .unwrap();
                    pending.push((oid, Some((x, y))));
                }
            }
        }
        // Commit and log atomically w.r.t. every other commit and every
        // reader's expectation snapshot.
        let mut log = shadow.lock().unwrap();
        let ts = db.commit(&mut txn).unwrap();
        for (oid, val) in pending {
            log.push((ts, oid, val));
        }
        clock.advance(20);
    }
    writers_left.fetch_sub(1, Ordering::Release);
}

/// Reader: alternates snapshot-current batches (transaction begun under
/// the shadow lock, so its snapshot equals the folded log) with `AS OF`
/// point reads at a random logged commit timestamp (history is
/// immutable, so the expectation computed under the lock holds no matter
/// what commits after).
fn reader(
    db: &Database,
    shadow: &Mutex<Log>,
    writers_left: &AtomicUsize,
    violations: &Mutex<Vec<String>>,
    seed: u64,
) {
    let mut rng = seed | 1;
    let mut verified = 0u32;
    let complain = |msg: String| violations.lock().unwrap().push(msg);
    while verified < MIN_READS || writers_left.load(Ordering::Acquire) > 0 {
        // -- current reads under snapshot isolation ---------------------
        let (mut txn, picks) = {
            let log = shadow.lock().unwrap();
            if log.is_empty() {
                continue;
            }
            let txn = db.begin(Isolation::Snapshot);
            let state = latest_state(&log);
            let picks: Vec<(i32, Option<(i32, i32)>)> = (0..8)
                .map(|_| {
                    let oid = log[(xorshift(&mut rng) % log.len() as u64) as usize].1;
                    (oid, state.get(&oid).copied())
                })
                .collect();
            (txn, picks)
        };
        for (oid, want) in picks {
            let got = db.get_row(&mut txn, "obj", &Value::Int(oid)).unwrap();
            if got != expect_row(oid, want) {
                complain(format!(
                    "snapshot read oid {oid}: got {got:?}, want {want:?}"
                ));
            }
            verified += 1;
        }
        db.commit(&mut txn).unwrap();

        // -- AS OF replay at a random commit timestamp ------------------
        let (ts, oid, want) = {
            let log = shadow.lock().unwrap();
            let ts = log[(xorshift(&mut rng) % log.len() as u64) as usize].0;
            let oid = log[(xorshift(&mut rng) % log.len() as u64) as usize].1;
            let want = state_at(&log, ts).get(&oid).copied();
            (ts, oid, want)
        };
        let mut txn = db.begin_as_of_ts(ts);
        let got = db.get_row(&mut txn, "obj", &Value::Int(oid)).unwrap();
        if got != expect_row(oid, want) {
            complain(format!(
                "AS OF {ts:?} read oid {oid}: got {got:?}, want {want:?}"
            ));
        }
        verified += 1;
        db.commit(&mut txn).unwrap();
    }
}

/// Top up latch contention on a hot key until the optimistic protocol
/// records at least one retry (bounded; the main phase almost always
/// produces retries on its own, but a clean race is not a test failure).
fn ensure_retries(db: &Database) {
    let hot = 5_000_000;
    let mut txn = db.begin(Isolation::Serializable);
    db.insert_row(
        &mut txn,
        "obj",
        vec![Value::Int(hot), Value::Int(0), Value::Int(0)],
    )
    .unwrap();
    db.commit(&mut txn).unwrap();
    for _ in 0..50 {
        if db.metrics().latch.optimistic_retries.get() > 0 {
            return;
        }
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..400 {
                    let mut txn = db.begin(Isolation::Serializable);
                    db.update_row(
                        &mut txn,
                        "obj",
                        vec![Value::Int(hot), Value::Int(i), Value::Int(i)],
                    )
                    .unwrap();
                    db.commit(&mut txn).unwrap();
                }
            });
            for _ in 0..2 {
                scope.spawn(|| {
                    let mut txn = db.begin(Isolation::Snapshot);
                    for _ in 0..4_000 {
                        let _ = db.get_row(&mut txn, "obj", &Value::Int(hot)).unwrap();
                    }
                    db.commit(&mut txn).unwrap();
                });
            }
        });
    }
}

fn stress(tag: &str, using_tsb: bool, seed: u64) {
    let dir = tempdir(tag);
    let clock = Arc::new(SimClock::new(5_000_000));
    let db = Database::open(
        DbConfig::new(&dir)
            .durability(Durability::Buffered)
            .clock(clock.clone()),
    )
    .unwrap();
    let mut s = Session::new(&db);
    let ddl = format!(
        "CREATE IMMORTAL TABLE obj (Oid INT PRIMARY KEY, LocationX INT, LocationY INT){}",
        if using_tsb { " USING TSB" } else { "" }
    );
    s.execute(&ddl).unwrap();

    let shadow: Mutex<Log> = Mutex::new(Vec::new());
    let writers_left = AtomicUsize::new(WRITERS);
    let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let (db, shadow, clock, writers_left) = (&db, &shadow, &*clock, &writers_left);
            scope.spawn(move || writer(db, shadow, clock, writers_left, w, seed));
        }
        for r in 0..READERS {
            let (db, shadow, writers_left, violations) = (&db, &shadow, &writers_left, &violations);
            let rseed = seed ^ (0xABCD_0000 + r as u64);
            scope.spawn(move || reader(db, shadow, writers_left, violations, rseed));
        }
    });

    let violations = violations.into_inner().unwrap();
    assert!(
        violations.is_empty(),
        "{} shadow-model violations ({tag}); first: {}",
        violations.len(),
        violations[0]
    );
    let log = shadow.into_inner().unwrap();
    assert!(
        log.len() as u32 >= WRITERS as u32 * COMMITS_PER_WRITER,
        "writers under-committed"
    );

    ensure_retries(&db);
    let retries = db.metrics().latch.optimistic_retries.get();
    assert!(
        retries > 0,
        "optimistic latch protocol never conflicted ({tag})"
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn read_scaling_stress_chain_seed1() {
    stress("chain1", false, 0xDEC0_DE01);
}

#[test]
fn read_scaling_stress_chain_seed2() {
    stress("chain2", false, 0x0DDB_A117);
}

#[test]
fn read_scaling_stress_tsb_seed1() {
    stress("tsb1", true, 0xDEC0_DE01);
}

#[test]
fn read_scaling_stress_tsb_seed2() {
    stress("tsb2", true, 0x0DDB_A117);
}
