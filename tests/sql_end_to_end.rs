//! Workspace integration: SQL surface across sessions and tables.

use std::sync::Arc;

use immortaldb::{Database, DbConfig, Error, Isolation, Session, SimClock, Value};

struct Env {
    dir: std::path::PathBuf,
    clock: Arc<SimClock>,
}

impl Env {
    fn new(name: &str) -> Env {
        let dir =
            std::env::temp_dir().join(format!("immortal-it-sql-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Env {
            dir,
            clock: Arc::new(SimClock::new(10_000_000)),
        }
    }

    fn open(&self) -> Database {
        Database::open(
            DbConfig::new(&self.dir).clock(Arc::clone(&self.clock) as Arc<dyn immortaldb::Clock>),
        )
        .unwrap()
    }

    fn tick(&self) {
        self.clock.advance(20);
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn two_sessions_share_one_database() {
    let env = Env::new("twosessions");
    let db = env.open();
    let mut a = Session::new(&db);
    let mut b = Session::new(&db);
    a.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    a.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    // Session b sees a's committed work immediately.
    let res = b.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(10));
}

#[test]
fn snapshot_session_is_unaffected_by_concurrent_commits() {
    let env = Env::new("snapsession");
    let db = env.open();
    let mut setup = Session::new(&db);
    setup
        .execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    setup.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    env.tick();

    let mut reader = Session::new(&db);
    reader.execute("BEGIN TRAN ISOLATION SNAPSHOT").unwrap();
    let before = reader.execute("SELECT v FROM t WHERE id = 1").unwrap();

    let mut writer = Session::new(&db);
    writer.execute("UPDATE t SET v = 99 WHERE id = 1").unwrap();
    env.tick();

    let during = reader.execute("SELECT v FROM t WHERE id = 1").unwrap();
    reader.execute("COMMIT").unwrap();
    assert_eq!(before.rows, during.rows, "snapshot reads are stable");
    let after = reader.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(
        after.rows[0][0],
        Value::Int(99),
        "new snapshot sees the update"
    );
}

#[test]
fn sql_predicates_and_projections() {
    let env = Env::new("predicates");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute("CREATE TABLE items (id INT PRIMARY KEY, qty INT, name VARCHAR(20))")
        .unwrap();
    for (id, qty, name) in [
        (1, 5, "apple"),
        (2, 20, "pear"),
        (3, 12, "plum"),
        (4, 3, "fig"),
    ] {
        s.execute(&format!("INSERT INTO items VALUES ({id}, {qty}, '{name}')"))
            .unwrap();
    }
    let res = s
        .execute("SELECT name, qty FROM items WHERE qty >= 5 AND qty <= 15")
        .unwrap();
    assert_eq!(res.columns, vec!["name", "qty"]);
    assert_eq!(res.rows.len(), 2);
    assert_eq!(res.rows[0][0], Value::Varchar("apple".into()));
    let res = s
        .execute("SELECT * FROM items WHERE name <> 'fig' AND id > 2")
        .unwrap();
    assert_eq!(res.rows.len(), 1);
    // Point lookup path with extra predicates.
    let res = s
        .execute("SELECT * FROM items WHERE id = 2 AND qty < 5")
        .unwrap();
    assert!(res.rows.is_empty());
    // UPDATE with predicate, DELETE with predicate.
    let res = s
        .execute("UPDATE items SET qty = 0 WHERE qty < 10")
        .unwrap();
    assert_eq!(res.affected, 2);
    let res = s.execute("DELETE FROM items WHERE qty = 0").unwrap();
    assert_eq!(res.affected, 2);
    assert_eq!(s.execute("SELECT * FROM items").unwrap().rows.len(), 2);
}

#[test]
fn write_conflict_rolls_back_the_doomed_session_txn() {
    let env = Env::new("conflict");
    let db = env.open();
    let mut setup = Session::new(&db);
    setup
        .execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    setup.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    env.tick();

    let mut a = Session::new(&db);
    let mut b = Session::new(&db);
    a.execute("BEGIN TRAN ISOLATION SNAPSHOT").unwrap();
    b.execute("BEGIN TRAN ISOLATION SNAPSHOT").unwrap();
    a.execute("UPDATE t SET v = 1 WHERE id = 1").unwrap();
    a.execute("COMMIT").unwrap();
    // b is doomed by first-committer-wins; the session auto-rolls back.
    let err = b.execute("UPDATE t SET v = 2 WHERE id = 1").unwrap_err();
    assert!(
        matches!(err, Error::WriteConflict(_) | Error::Deadlock(_)),
        "{err}"
    );
    assert!(!b.in_transaction(), "doomed transaction was rolled back");
    // b can retry on a fresh snapshot and succeed.
    b.execute("UPDATE t SET v = 2 WHERE id = 1").unwrap();
    let res = b.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(2));
}

#[test]
fn timestamp_order_matches_commit_order() {
    let env = Env::new("tsorder");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    // Interleave two transactions; the one committing LAST must carry the
    // larger timestamp even though it began first.
    let mut first = db.begin(Isolation::Serializable);
    db.insert_row(&mut first, "t", vec![Value::Int(1), Value::Int(1)])
        .unwrap();
    let mut second = db.begin(Isolation::Serializable);
    db.insert_row(&mut second, "t", vec![Value::Int(2), Value::Int(2)])
        .unwrap();
    let ts_second = db.commit(&mut second).unwrap();
    let ts_first = db.commit(&mut first).unwrap();
    assert!(
        ts_first > ts_second,
        "late committer gets the later timestamp"
    );
    // And the stored versions agree.
    let h1 = db.history_rows("t", &Value::Int(1)).unwrap();
    let h2 = db.history_rows("t", &Value::Int(2)).unwrap();
    assert_eq!(h1[0].0.unwrap(), ts_first);
    assert_eq!(h2[0].0.unwrap(), ts_second);
}

#[test]
fn same_tick_commits_disambiguated_by_sequence_number() {
    let env = Env::new("sn");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    // No clock advance: every commit lands in the same 20 ms tick and is
    // distinguished purely by the 4-byte sequence number (§2.1).
    for i in 0..100 {
        s.execute(&format!("INSERT INTO t VALUES ({i}, 0)"))
            .unwrap();
    }
    let mut stamps = Vec::new();
    for i in 0..100 {
        let h = db.history_rows("t", &Value::Int(i)).unwrap();
        stamps.push(h[0].0.unwrap());
    }
    let ticks: std::collections::HashSet<u64> = stamps.iter().map(|t| t.ttime).collect();
    assert_eq!(ticks.len(), 1, "all in one tick");
    let mut sns: Vec<u32> = stamps.iter().map(|t| t.sn).collect();
    let mut sorted = sns.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), 100, "unique sequence numbers");
    sns.sort_unstable();
    assert_eq!(sns, sorted);
}

#[test]
fn large_workload_with_checkpoints_and_reopen() {
    let env = Env::new("bigreopen");
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT, pad VARCHAR(64))")
            .unwrap();
        for round in 0..6 {
            for id in 0..300 {
                let stmt = if round == 0 {
                    format!("INSERT INTO t VALUES ({id}, 0, 'pppppppppppppppppppppppppppp')")
                } else {
                    format!("UPDATE t SET v = {round} WHERE id = {id}")
                };
                s.execute(&stmt).unwrap();
                env.tick();
            }
            db.checkpoint().unwrap();
        }
        let (tsplits, ksplits) = db.split_counts();
        assert!(tsplits > 0 && ksplits > 0, "{tsplits}/{ksplits}");
        db.close().unwrap();
    }
    let db = env.open();
    let mut s = Session::new(&db);
    let res = s.execute("SELECT * FROM t").unwrap();
    assert_eq!(res.rows.len(), 300);
    assert!(res.rows.iter().all(|r| r[1] == Value::Int(5)));
    // Deep history still intact after checkpoints + restart.
    let h = db.history_rows("t", &Value::Int(42)).unwrap();
    assert_eq!(h.len(), 6);
}
