//! The snapshot-isolation checker from `tests/isolation_check.rs`, run
//! through the wire path: 8 concurrent TCP clients drive a randomized
//! read/write workload against one `immortaldb-net` server, logging every
//! transaction's events with the begin-snapshot and commit timestamps the
//! protocol returns natively. The offline checks are the same:
//!
//! 1. **Write-write order** — per key, the engine's version chain must be
//!    exactly the logged committed writes ordered by commit timestamp.
//! 2. **Snapshot-read consistency** — every read over the wire must see
//!    the transaction's own latest write or the newest committed value at
//!    or below its snapshot.
//! 3. **First-committer-wins** — no foreign committed write to a key I
//!    wrote may land strictly between my snapshot and my commit.
//!
//! (The embedded checker's fourth check, PTT agreement, needs engine
//! transaction ids, which the protocol deliberately does not expose; it
//! stays covered by the embedded test.)
//!
//! Run grouped and per-commit: the leader/follower log-force barrier,
//! now batching commits *across connections*, must stay invisible to a
//! timestamp checker.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use immortaldb::{Database, DbConfig, Durability, GroupCommitConfig, Isolation, Timestamp, Value};
use immortaldb_net::{Client, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: &str = "acct";
const KEYS: i32 = 16;
const CLIENTS: u64 = 8;
const COMMITS_PER_CLIENT: usize = 25;

#[derive(Debug, Clone)]
enum Event {
    Read(i32, Option<i64>),
    Write(i32, i64),
}

#[derive(Debug)]
struct TxnLog {
    client: u64,
    snapshot: Timestamp,
    commit_ts: Timestamp,
    events: Vec<Event>,
}

fn check_one(seed: u64, grouped: bool) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!(
        "immortal-net-iso-{seed}-{grouped}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(
        Database::open(
            DbConfig::new(&dir)
                .durability(Durability::Fsync)
                .group_commit(GroupCommitConfig {
                    enabled: grouped,
                    ..GroupCommitConfig::default()
                }),
        )
        .unwrap(),
    );
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::new("127.0.0.1:0").workers(CLIENTS as usize),
    )
    .unwrap();
    let addr = server.local_addr();

    // Set up and seed every key through the wire, then free the worker.
    let seed_ts = {
        let mut admin = Client::connect(addr).unwrap();
        admin
            .query(&format!(
                "CREATE IMMORTAL TABLE {TABLE} (id INT PRIMARY KEY, v BIGINT)"
            ))
            .unwrap();
        admin.begin(Isolation::Serializable).unwrap();
        for k in 0..KEYS {
            admin
                .query(&format!("INSERT INTO {TABLE} VALUES ({k}, 0)"))
                .unwrap();
        }
        admin.commit().unwrap()
    };

    let logs: Arc<Mutex<Vec<TxnLog>>> = Arc::new(Mutex::new(Vec::new()));
    std::thread::scope(|scope| {
        for t in 0..CLIENTS {
            let logs = Arc::clone(&logs);
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1009).wrapping_add(t));
                let mut next_val: i64 = 0;
                let mut committed = 0;
                let mut attempts = 0;
                while committed < COMMITS_PER_CLIENT {
                    attempts += 1;
                    assert!(
                        attempts < COMMITS_PER_CLIENT * 100,
                        "client {t} cannot make progress"
                    );
                    let snapshot = c.begin(Isolation::Snapshot).unwrap();
                    let mut events = Vec::new();
                    let n_ops = rng.gen_range(2..5);
                    let mut failed = false;
                    for _ in 0..n_ops {
                        let k = rng.gen_range(0..KEYS);
                        if rng.gen_range(0..100) < 60 {
                            match c.query(&format!("SELECT v FROM {TABLE} WHERE id = {k}")) {
                                Ok(resp) => {
                                    let v = resp.rows.first().map(|r| match r[0] {
                                        Value::BigInt(v) => v,
                                        ref other => panic!("bad value {other:?}"),
                                    });
                                    events.push(Event::Read(k, v));
                                }
                                Err(e) if e.is_transient() => {
                                    failed = true;
                                    break;
                                }
                                Err(e) => panic!("read failed: {e}"),
                            }
                        } else {
                            next_val += 1;
                            let v = t as i64 * 1_000_000 + next_val;
                            match c.query(&format!("UPDATE {TABLE} SET v = {v} WHERE id = {k}")) {
                                Ok(_) => events.push(Event::Write(k, v)),
                                Err(e) if e.is_transient() => {
                                    failed = true;
                                    break;
                                }
                                Err(e) => panic!("write failed: {e}"),
                            }
                        }
                    }
                    if failed {
                        // A transient failure dooms the transaction; the
                        // server already rolled it back (ERROR frames
                        // carry txn_open=false) but be defensive.
                        if c.in_transaction() {
                            c.rollback().unwrap();
                        }
                        continue;
                    }
                    match c.commit() {
                        Ok(commit_ts) => {
                            logs.lock().unwrap().push(TxnLog {
                                client: t,
                                snapshot,
                                commit_ts,
                                events,
                            });
                            committed += 1;
                        }
                        Err(e) if e.is_transient() => continue,
                        Err(e) => panic!("commit failed: {e}"),
                    }
                }
            });
        }
    });
    let logs = Arc::try_unwrap(logs).unwrap().into_inner().unwrap();

    let mut violations = Vec::new();

    // Committed writes per key, ordered by commit timestamp.
    let mut writes_by_key: HashMap<i32, Vec<(Timestamp, i64)>> = HashMap::new();
    for k in 0..KEYS {
        writes_by_key.entry(k).or_default().push((seed_ts, 0));
    }
    for log in &logs {
        let mut last: HashMap<i32, i64> = HashMap::new();
        for ev in &log.events {
            if let Event::Write(k, v) = ev {
                last.insert(*k, *v);
            }
        }
        for (k, v) in last {
            writes_by_key.entry(k).or_default().push((log.commit_ts, v));
        }
    }
    for list in writes_by_key.values_mut() {
        list.sort();
    }

    // (1) WW order against the engine's version chains (read directly;
    // the server is idle now).
    for k in 0..KEYS {
        let expect: Vec<(Timestamp, i64)> = writes_by_key[&k].iter().rev().copied().collect();
        let history = db.history_rows(TABLE, &Value::Int(k)).unwrap();
        let got: Vec<(Timestamp, i64)> = history
            .iter()
            .map(|(ts, row)| {
                let ts = ts.expect("uncommitted version survived the workload");
                let v = match row.as_ref().expect("unexpected deletion")[1] {
                    Value::BigInt(v) => v,
                    ref other => panic!("bad value {other:?}"),
                };
                (ts, v)
            })
            .collect();
        for w in got.windows(2) {
            if w[0].0 <= w[1].0 {
                violations.push(format!(
                    "key {k}: version chain timestamps not strictly descending: {:?} then {:?}",
                    w[0], w[1]
                ));
            }
        }
        if got != expect {
            violations.push(format!(
                "key {k}: version chain {got:?} != committed writes by timestamp {expect:?}"
            ));
        }
    }

    // (2) Snapshot-read consistency: replay each transaction's events.
    for log in &logs {
        let mut own: HashMap<i32, i64> = HashMap::new();
        for ev in &log.events {
            match ev {
                Event::Write(k, v) => {
                    own.insert(*k, *v);
                }
                Event::Read(k, observed) => {
                    let expected = own.get(k).copied().or_else(|| {
                        writes_by_key[k]
                            .iter()
                            .rev()
                            .find(|(ts, _)| *ts <= log.snapshot)
                            .map(|(_, v)| *v)
                    });
                    if *observed != expected {
                        violations.push(format!(
                            "client {} (snapshot {:?}, commit {:?}): wire read of key {k} \
                             observed {observed:?}, expected {expected:?}",
                            log.client, log.snapshot, log.commit_ts
                        ));
                    }
                }
            }
        }
    }

    // (3) First-committer-wins.
    for log in &logs {
        let mine: Vec<i32> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Write(k, _) => Some(*k),
                _ => None,
            })
            .collect();
        for k in mine {
            for (ts, v) in &writes_by_key[&k] {
                if *ts > log.snapshot && *ts < log.commit_ts {
                    violations.push(format!(
                        "client {}: lost update on key {k}: foreign write {v} at {ts:?} inside \
                         (snapshot {:?}, commit {:?})",
                        log.client, log.snapshot, log.commit_ts
                    ));
                }
            }
        }
    }

    server.shutdown().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    violations
}

#[test]
fn wire_isolation_checker_group_commit_enabled() {
    for seed in [17u64, 29] {
        let violations = check_one(seed, true);
        assert!(
            violations.is_empty(),
            "seed {seed} (grouped): {} violations:\n{}",
            violations.len(),
            violations.join("\n")
        );
    }
}

#[test]
fn wire_isolation_checker_per_commit_fsync() {
    let violations = check_one(41, false);
    assert!(
        violations.is_empty(),
        "seed 41 (per-commit): {} violations:\n{}",
        violations.len(),
        violations.join("\n")
    );
}
