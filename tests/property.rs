//! Property-based tests: the engine against an in-memory model database.
//!
//! The model records, per key, the full sequence of `(commit index,
//! value-or-deleted)`; after replaying a random operation sequence, every
//! AS OF point query and full scan on the engine must match the model at
//! every captured instant — across time splits, key splits, rollbacks and
//! checkpoints.

// The proptest shim's `ProptestConfig` happens to have exactly the fields
// set below, making `..default()` redundant offline — but it is required
// against the real crate.
#![allow(clippy::needless_update)]

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use immortaldb::{Database, DbConfig, Isolation, SimClock, Timestamp, Value};

#[derive(Debug, Clone)]
enum Action {
    /// Write `value` to `key` (insert or update as appropriate) and
    /// commit.
    Put { key: i32, value: i32 },
    /// Delete `key` if present, commit.
    Delete { key: i32 },
    /// Write but roll back — must leave no trace.
    AbortedPut { key: i32, value: i32 },
    /// Take a checkpoint (exercises flush-time stamping + PTT GC).
    Checkpoint,
    /// Remember this instant for later AS OF validation.
    Mark,
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        6 => (0..24i32, any::<i32>()).prop_map(|(key, value)| Action::Put { key, value }),
        2 => (0..24i32).prop_map(|key| Action::Delete { key }),
        2 => (0..24i32, any::<i32>()).prop_map(|(key, value)| Action::AbortedPut { key, value }),
        1 => Just(Action::Checkpoint),
        2 => Just(Action::Mark),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn engine_matches_model_at_every_marked_instant(
        actions in proptest::collection::vec(action_strategy(), 30..120),
        seed in any::<u32>(),
    ) {
        let dir = std::env::temp_dir().join(
            format!("immortal-prop-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let clock = Arc::new(SimClock::new(30_000_000));
        let db = Database::open(
            DbConfig::new(&dir).clock(Arc::clone(&clock) as Arc<dyn immortaldb::Clock>),
        ).unwrap();
        {
            let mut s = immortaldb::Session::new(&db);
            s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)").unwrap();
        }

        let mut state: HashMap<i32, i32> = HashMap::new();
        let mut marks: Vec<(Timestamp, HashMap<i32, i32>)> = Vec::new();
        for action in &actions {
            match action {
                Action::Put { key, value } => {
                    let mut txn = db.begin(Isolation::Serializable);
                    let row = vec![Value::Int(*key), Value::Int(*value)];
                    if state.contains_key(key) {
                        db.update_row(&mut txn, "t", row).unwrap();
                    } else {
                        db.insert_row(&mut txn, "t", row).unwrap();
                    }
                    db.commit(&mut txn).unwrap();
                    state.insert(*key, *value);
                    clock.advance(20);
                }
                Action::Delete { key } => {
                    if state.remove(key).is_some() {
                        let mut txn = db.begin(Isolation::Serializable);
                        db.delete_row(&mut txn, "t", &Value::Int(*key)).unwrap();
                        db.commit(&mut txn).unwrap();
                        clock.advance(20);
                    }
                }
                Action::AbortedPut { key, value } => {
                    let mut txn = db.begin(Isolation::Serializable);
                    let row = vec![Value::Int(*key), Value::Int(*value)];
                    if state.contains_key(key) {
                        db.update_row(&mut txn, "t", row).unwrap();
                    } else {
                        db.insert_row(&mut txn, "t", row).unwrap();
                    }
                    db.rollback(&mut txn).unwrap();
                }
                Action::Checkpoint => {
                    db.checkpoint().unwrap();
                }
                Action::Mark => {
                    marks.push((db.latest_ts(), state.clone()));
                }
            }
        }
        marks.push((db.latest_ts(), state.clone()));

        // Validate every mark: point queries + scans.
        for (ts, snapshot) in &marks {
            let mut txn = db.begin_as_of_ts(*ts);
            for key in 0..24i32 {
                let row = db.get_row(&mut txn, "t", &Value::Int(key)).unwrap();
                let got = row.map(|r| match r[1] { Value::Int(v) => v, _ => unreachable!() });
                prop_assert_eq!(got, snapshot.get(&key).copied(), "key {} at {:?}", key, ts);
            }
            let rows = db.scan_rows(&mut txn, "t").unwrap();
            prop_assert_eq!(rows.len(), snapshot.len());
            for r in rows {
                let k = r[0].as_i64().unwrap() as i32;
                let v = r[1].as_i64().unwrap() as i32;
                prop_assert_eq!(Some(&v), snapshot.get(&k));
            }
            db.commit(&mut txn).unwrap();
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Row codec roundtrip over arbitrary typed values.
    #[test]
    fn row_codec_roundtrip(
        a in any::<i16>(),
        b in any::<i32>(),
        c in any::<i64>(),
        s in "[a-zA-Z0-9 ]{0,30}",
    ) {
        use immortaldb::{ColType, Column, Schema};
        let schema = Schema::new(vec![
            Column { name: "a".into(), ctype: ColType::SmallInt },
            Column { name: "b".into(), ctype: ColType::Int },
            Column { name: "c".into(), ctype: ColType::BigInt },
            Column { name: "s".into(), ctype: ColType::Varchar(30) },
        ], 0).unwrap();
        let row = vec![
            Value::SmallInt(a),
            Value::Int(b),
            Value::BigInt(c),
            Value::Varchar(s),
        ];
        let enc = schema.encode_row(&row);
        prop_assert_eq!(schema.decode_row(&enc).unwrap(), row);
    }

    /// Key encoding is strictly order-preserving per type.
    #[test]
    fn key_encoding_preserves_order(a in any::<i64>(), b in any::<i64>()) {
        use immortaldb::row::encode_key;
        let ka = encode_key(&Value::BigInt(a)).unwrap();
        let kb = encode_key(&Value::BigInt(b)).unwrap();
        prop_assert_eq!(a.cmp(&b), ka.cmp(&kb));
    }
}
