//! `RESTORE TABLE … AS OF` against a shadow model.
//!
//! A scripted mutation history is applied in committed transactions
//! while a shadow `BTreeMap` snapshot is captured after each commit.
//! Restoring to any captured timestamp must reproduce that snapshot
//! exactly — and, because the restore is ordinary stamped work, the
//! pre-restore state must stay readable at its own timestamps (history
//! is preserved, not rewritten).

use std::collections::BTreeMap;
use std::time::{SystemTime, UNIX_EPOCH};

use immortaldb::{Database, DbConfig, Isolation, Session, TableKind, Value};
use immortaldb_common::Timestamp;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir =
        std::env::temp_dir().join(format!("restore-asof-{}-{tag}-{nanos}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> immortaldb::Schema {
    immortaldb::Schema::new(
        vec![
            immortaldb::Column {
                name: "id".into(),
                ctype: immortaldb::ColType::Int,
            },
            immortaldb::Column {
                name: "v".into(),
                ctype: immortaldb::ColType::BigInt,
            },
        ],
        0,
    )
    .unwrap()
}

fn scan_map(db: &Database) -> BTreeMap<i32, i64> {
    let mut txn = db.begin(Isolation::Serializable);
    let rows = db.scan_rows(&mut txn, "t").unwrap();
    db.commit(&mut txn).unwrap();
    rows_to_map(rows)
}

fn rows_to_map(rows: Vec<Vec<Value>>) -> BTreeMap<i32, i64> {
    rows.into_iter()
        .map(|r| match (&r[0], &r[1]) {
            (Value::Int(id), Value::BigInt(v)) => (*id, *v),
            other => panic!("unexpected row {other:?}"),
        })
        .collect()
}

#[test]
fn restore_reproduces_every_shadow_snapshot() {
    let db = Database::open(DbConfig::new(tempdir("shadow"))).unwrap();
    db.create_table("t", schema(), TableKind::Immortal).unwrap();

    // Scripted history: each step is one committed transaction; the
    // shadow map snapshot is captured with its commit timestamp.
    let mut shadow: BTreeMap<i32, i64> = BTreeMap::new();
    let mut snapshots: Vec<(Timestamp, BTreeMap<i32, i64>)> = Vec::new();
    #[derive(Clone)]
    enum Op {
        Ins(i32, i64),
        Upd(i32, i64),
        Del(i32),
    }
    use Op::*;
    let script: Vec<Vec<Op>> = vec![
        vec![Ins(1, 10), Ins(2, 20), Ins(3, 30)],
        vec![Upd(2, 21), Ins(4, 40)],
        vec![Del(1), Upd(3, 33)],
        vec![Ins(1, 11), Del(4), Upd(2, 22)],
        vec![Del(2), Del(3)],
    ];
    for step in &script {
        let mut txn = db.begin(Isolation::Serializable);
        for op in step {
            match op {
                Ins(id, v) => {
                    db.insert_row(&mut txn, "t", vec![Value::Int(*id), Value::BigInt(*v)])
                        .unwrap();
                    shadow.insert(*id, *v);
                }
                Upd(id, v) => {
                    db.update_row(&mut txn, "t", vec![Value::Int(*id), Value::BigInt(*v)])
                        .unwrap();
                    shadow.insert(*id, *v);
                }
                Del(id) => {
                    db.delete_row(&mut txn, "t", &Value::Int(*id)).unwrap();
                    shadow.remove(id);
                }
            }
        }
        let ts = db.commit(&mut txn).unwrap();
        snapshots.push((ts, shadow.clone()));
    }

    // Restore to every snapshot in turn (newest to oldest exercises both
    // directions of the diff: re-inserts, un-deletes, value reverts).
    for (ts, want) in snapshots.iter().rev() {
        let (_changed, effective) = db.restore_table_as_of("t", *ts).unwrap();
        assert_eq!(effective, *ts, "timestamp was clamped unexpectedly");
        assert_eq!(
            &scan_map(&db),
            want,
            "restore to {ts:?} diverged from shadow"
        );
    }

    // Restoring to the current horizon is a no-op.
    let (changed, _) = db.restore_table_as_of("t", Timestamp::MAX).unwrap();
    assert_eq!(changed, 0, "idempotent restore still changed rows");

    // History preservation: the state right before the first restore
    // (i.e. the last scripted snapshot) is still readable AS OF then.
    let (last_ts, last_state) = snapshots.last().unwrap();
    let mut txn = db.begin_as_of_ts(*last_ts);
    let seen = rows_to_map(db.scan_rows(&mut txn, "t").unwrap());
    db.commit(&mut txn).unwrap();
    assert_eq!(&seen, last_state, "restore rewrote history");
}

#[test]
fn restore_error_paths_and_sql_surface() {
    let db = Database::open(DbConfig::new(tempdir("sql"))).unwrap();
    db.create_table("t", schema(), TableKind::Immortal).unwrap();
    db.create_table("plain", schema(), TableKind::Conventional)
        .unwrap();

    // Conventional tables have no history to restore from.
    assert!(db.restore_table_as_of("plain", Timestamp::MAX).is_err());
    assert!(db.restore_table_as_of("missing", Timestamp::MAX).is_err());

    // SQL surface: seed, mutate, restore via the statement.
    let mut session = Session::new(&db);
    session.execute("INSERT INTO t VALUES (1, 100)").unwrap();
    let good_ms = {
        // The tick boundary: everything committed so far is within it.
        session.execute("INSERT INTO t VALUES (2, 200)").unwrap();
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_millis() as u64
    };
    // Separate tick so the damage is not inside the restore target.
    std::thread::sleep(std::time::Duration::from_millis(50));
    session.execute("DELETE FROM t WHERE id = 1").unwrap();
    session.execute("UPDATE t SET v = 0 WHERE id = 2").unwrap();

    // Inside an explicit transaction the statement must be refused.
    session.execute("BEGIN TRAN").unwrap();
    assert!(session
        .execute(&format!("RESTORE TABLE t AS OF ms({good_ms})"))
        .is_err());
    session.execute("ROLLBACK").unwrap();

    let res = session
        .execute(&format!("RESTORE TABLE t AS OF ms({good_ms})"))
        .unwrap();
    assert!(res.affected > 0);
    assert_eq!(
        scan_map(&db),
        BTreeMap::from([(1, 100), (2, 200)]),
        "SQL restore missed the pre-damage state"
    );
}
