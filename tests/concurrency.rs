//! Workspace integration: concurrent transactions against one engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use immortaldb::{Database, DbConfig, Isolation, Session, Value};

fn open(name: &str) -> (Arc<Database>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("immortal-it-conc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Database::open(DbConfig::new(&dir)).unwrap());
    (db, dir)
}

#[test]
fn disjoint_writers_proceed_in_parallel() {
    let (db, dir) = open("disjoint");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
    }
    let threads = 4;
    let per_thread = 200;
    let handles: Vec<_> = (0..threads)
        .map(|tno| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let id = tno * per_thread + i;
                    let mut txn = db.begin(Isolation::Serializable);
                    db.insert_row(&mut txn, "t", vec![Value::Int(id), Value::Int(tno)])
                        .unwrap();
                    db.commit(&mut txn).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut s = Session::new(&db);
    let res = s.execute("SELECT * FROM t").unwrap();
    assert_eq!(res.rows.len(), (threads * per_thread) as usize);
    drop(s);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn contended_counter_under_serializable_locking() {
    let (db, dir) = open("counter");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE c (id INT PRIMARY KEY, n BIGINT)")
            .unwrap();
        s.execute("INSERT INTO c VALUES (1, 0)").unwrap();
    }
    let threads = 4;
    let per_thread = 50;
    let retries = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let db = Arc::clone(&db);
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let mut txn = db.begin(Isolation::Serializable);
                        let attempt = (|| -> immortaldb::Result<()> {
                            let row = db
                                .get_row(&mut txn, "c", &Value::Int(1))?
                                .expect("counter row");
                            let n = row[1].as_i64().unwrap();
                            db.update_row(
                                &mut txn,
                                "c",
                                vec![Value::Int(1), Value::BigInt(n + 1)],
                            )?;
                            Ok(())
                        })();
                        match attempt {
                            Ok(()) => {
                                db.commit(&mut txn).unwrap();
                                break;
                            }
                            Err(e) if e.is_transient() => {
                                let _ = db.rollback(&mut txn);
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut s = Session::new(&db);
    let res = s.execute("SELECT n FROM c WHERE id = 1").unwrap();
    assert_eq!(
        res.rows[0][0],
        Value::BigInt((threads * per_thread) as i64),
        "no lost updates (retries: {})",
        retries.load(Ordering::Relaxed)
    );
    // Every increment is a distinct version in history.
    let h = db.history_rows("c", &Value::Int(1)).unwrap();
    assert_eq!(h.len(), 1 + (threads * per_thread) as usize);
    drop(s);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_writers_on_same_key_obey_first_committer_wins() {
    let (db, dir) = open("fcwthreads");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(25));
    let commits = Arc::new(AtomicU64::new(0));
    let conflicts = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|tno| {
            let db = Arc::clone(&db);
            let commits = Arc::clone(&commits);
            let conflicts = Arc::clone(&conflicts);
            std::thread::spawn(move || {
                for i in 0..25 {
                    let mut txn = db.begin(Isolation::Snapshot);
                    match db.update_row(
                        &mut txn,
                        "t",
                        vec![Value::Int(1), Value::Int(tno * 100 + i)],
                    ) {
                        Ok(()) => {
                            db.commit(&mut txn).unwrap();
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_transient() => {
                            let _ = db.rollback(&mut txn);
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let n_commits = commits.load(Ordering::Relaxed);
    assert!(n_commits > 0);
    // History length equals insert + exactly the committed updates: no
    // aborted write left a version behind.
    let h = db.history_rows("t", &Value::Int(1)).unwrap();
    assert_eq!(h.len() as u64, 1 + n_commits);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readers_never_block_under_snapshot_isolation() {
    let (db, dir) = open("readnoblock");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        for i in 0..50 {
            s.execute(&format!("INSERT INTO t VALUES ({i}, 0)"))
                .unwrap();
        }
    }
    let stop = Arc::new(AtomicU64::new(0));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 1;
            while stop.load(Ordering::Relaxed) == 0 {
                for i in 0..50 {
                    let mut txn = db.begin(Isolation::Serializable);
                    db.update_row(&mut txn, "t", vec![Value::Int(i), Value::Int(round)])
                        .unwrap();
                    db.commit(&mut txn).unwrap();
                }
                round += 1;
            }
        })
    };
    // Concurrent snapshot scans always see a transaction-consistent state:
    // within one scan, all values come from the same round or its
    // immediate boundary (monotone prefix: v[i] >= v[i+1] is NOT
    // guaranteed row-wise, but min/max spread is at most 1 round because
    // the writer commits row-by-row in order).
    for _ in 0..30 {
        let mut txn = db.begin(Isolation::Snapshot);
        let rows = db.scan_rows(&mut txn, "t").unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(rows.len(), 50);
        let vals: Vec<i64> = rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let (min, max) = (vals.iter().min().unwrap(), vals.iter().max().unwrap());
        assert!(max - min <= 1, "snapshot spread {min}..{max}");
        // Prefix property: once a value drops to `min`, it never goes back
        // up within the scan (writer updates keys in ascending order).
        let first_min = vals.iter().position(|v| v == min).unwrap();
        assert!(
            vals[first_min..].iter().all(|v| v == min),
            "snapshot must be a clean prefix cut: {vals:?}"
        );
    }
    stop.store(1, Ordering::Relaxed);
    writer.join().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
