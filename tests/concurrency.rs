//! Workspace integration: concurrent transactions against one engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use immortaldb::{Database, DbConfig, Isolation, Session, Value};

fn open(name: &str) -> (Arc<Database>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("immortal-it-conc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(Database::open(DbConfig::new(&dir)).unwrap());
    (db, dir)
}

#[test]
fn disjoint_writers_proceed_in_parallel() {
    let (db, dir) = open("disjoint");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
    }
    let threads = 4;
    let per_thread = 200;
    let handles: Vec<_> = (0..threads)
        .map(|tno| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let id = tno * per_thread + i;
                    let mut txn = db.begin(Isolation::Serializable);
                    db.insert_row(&mut txn, "t", vec![Value::Int(id), Value::Int(tno)])
                        .unwrap();
                    db.commit(&mut txn).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut s = Session::new(&db);
    let res = s.execute("SELECT * FROM t").unwrap();
    assert_eq!(res.rows.len(), (threads * per_thread) as usize);
    drop(s);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn contended_counter_under_serializable_locking() {
    let (db, dir) = open("counter");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE c (id INT PRIMARY KEY, n BIGINT)")
            .unwrap();
        s.execute("INSERT INTO c VALUES (1, 0)").unwrap();
    }
    let threads = 4;
    let per_thread = 50;
    let retries = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let db = Arc::clone(&db);
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    loop {
                        let mut txn = db.begin(Isolation::Serializable);
                        let attempt = (|| -> immortaldb::Result<()> {
                            let row = db
                                .get_row(&mut txn, "c", &Value::Int(1))?
                                .expect("counter row");
                            let n = row[1].as_i64().unwrap();
                            db.update_row(
                                &mut txn,
                                "c",
                                vec![Value::Int(1), Value::BigInt(n + 1)],
                            )?;
                            Ok(())
                        })();
                        match attempt {
                            Ok(()) => {
                                db.commit(&mut txn).unwrap();
                                break;
                            }
                            Err(e) if e.is_transient() => {
                                let _ = db.rollback(&mut txn);
                                retries.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut s = Session::new(&db);
    let res = s.execute("SELECT n FROM c WHERE id = 1").unwrap();
    assert_eq!(
        res.rows[0][0],
        Value::BigInt((threads * per_thread) as i64),
        "no lost updates (retries: {})",
        retries.load(Ordering::Relaxed)
    );
    // Every increment is a distinct version in history.
    let h = db.history_rows("c", &Value::Int(1)).unwrap();
    assert_eq!(h.len(), 1 + (threads * per_thread) as usize);
    drop(s);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_writers_on_same_key_obey_first_committer_wins() {
    let (db, dir) = open("fcwthreads");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 0)").unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(25));
    let commits = Arc::new(AtomicU64::new(0));
    let conflicts = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|tno| {
            let db = Arc::clone(&db);
            let commits = Arc::clone(&commits);
            let conflicts = Arc::clone(&conflicts);
            std::thread::spawn(move || {
                for i in 0..25 {
                    let mut txn = db.begin(Isolation::Snapshot);
                    match db.update_row(
                        &mut txn,
                        "t",
                        vec![Value::Int(1), Value::Int(tno * 100 + i)],
                    ) {
                        Ok(()) => {
                            db.commit(&mut txn).unwrap();
                            commits.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) if e.is_transient() => {
                            let _ = db.rollback(&mut txn);
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let n_commits = commits.load(Ordering::Relaxed);
    assert!(n_commits > 0);
    // History length equals insert + exactly the committed updates: no
    // aborted write left a version behind.
    let h = db.history_rows("t", &Value::Int(1)).unwrap();
    assert_eq!(h.len() as u64, 1 + n_commits);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readers_never_block_under_snapshot_isolation() {
    let (db, dir) = open("readnoblock");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        for i in 0..50 {
            s.execute(&format!("INSERT INTO t VALUES ({i}, 0)"))
                .unwrap();
        }
    }
    let stop = Arc::new(AtomicU64::new(0));
    let writer = {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut round = 1;
            while stop.load(Ordering::Relaxed) == 0 {
                for i in 0..50 {
                    let mut txn = db.begin(Isolation::Serializable);
                    db.update_row(&mut txn, "t", vec![Value::Int(i), Value::Int(round)])
                        .unwrap();
                    db.commit(&mut txn).unwrap();
                }
                round += 1;
            }
        })
    };
    // Concurrent snapshot scans always see a transaction-consistent state:
    // within one scan, all values come from the same round or its
    // immediate boundary (monotone prefix: v[i] >= v[i+1] is NOT
    // guaranteed row-wise, but min/max spread is at most 1 round because
    // the writer commits row-by-row in order).
    for _ in 0..30 {
        let mut txn = db.begin(Isolation::Snapshot);
        let rows = db.scan_rows(&mut txn, "t").unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(rows.len(), 50);
        let vals: Vec<i64> = rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        let (min, max) = (vals.iter().min().unwrap(), vals.iter().max().unwrap());
        assert!(max - min <= 1, "snapshot spread {min}..{max}");
        // Prefix property: once a value drops to `min`, it never goes back
        // up within the scan (writer updates keys in ascending order).
        let first_min = vals.iter().position(|v| v == min).unwrap();
        assert!(
            vals[first_min..].iter().all(|v| v == min),
            "snapshot must be a clean prefix cut: {vals:?}"
        );
    }
    stop.store(1, Ordering::Relaxed);
    writer.join().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Open with fsync durability so the group-commit barrier is on the
/// commit path (the default `open` is buffered and never batches).
fn open_fsync(name: &str) -> (Arc<Database>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("immortal-it-conc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(
        Database::open(DbConfig::new(&dir).durability(immortaldb::Durability::Fsync)).unwrap(),
    );
    (db, dir)
}

#[test]
fn as_of_readers_never_observe_half_a_batch() {
    // Writers update a PAIR of rows with one value per transaction; a
    // reader pinned at the visibility horizon must see both halves of
    // every pair equal — group commit must never expose a transaction's
    // first row without its second, no matter where the batch fsync cuts.
    let (db, dir) = open_fsync("pairbatch");
    const PAIRS: i32 = 8;
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE p (id INT PRIMARY KEY, v BIGINT)")
            .unwrap();
        for k in 0..2 * PAIRS {
            s.execute(&format!("INSERT INTO p VALUES ({k}, 0)"))
                .unwrap();
        }
    }
    let stop = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut val: i64 = 1;
                while stop.load(Ordering::Relaxed) == 0 {
                    // Each writer owns two pairs; keys always locked in
                    // ascending order, so no deadlocks.
                    let j = 2 * w + (val % 2) as i32;
                    let v = (w as i64) * 1_000_000 + val;
                    let mut txn = db.begin(Isolation::Serializable);
                    db.update_row(&mut txn, "p", vec![Value::Int(2 * j), Value::BigInt(v)])
                        .unwrap();
                    db.update_row(&mut txn, "p", vec![Value::Int(2 * j + 1), Value::BigInt(v)])
                        .unwrap();
                    db.commit(&mut txn).unwrap();
                    val += 1;
                }
            })
        })
        .collect();
    for _ in 0..300 {
        let mut txn = db.begin_as_of_ts(db.visible_horizon());
        for j in 0..PAIRS {
            let a = db.get_row(&mut txn, "p", &Value::Int(2 * j)).unwrap();
            let b = db.get_row(&mut txn, "p", &Value::Int(2 * j + 1)).unwrap();
            // Compare the value column only — the id columns differ by
            // construction.
            let va = a.expect("pair row present")[1].clone();
            let vb = b.expect("pair row present")[1].clone();
            assert_eq!(
                va,
                vb,
                "pair {j} torn at horizon {:?}",
                txn.as_of().unwrap()
            );
        }
        db.commit(&mut txn).unwrap();
    }
    stop.store(1, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_chains_stay_strictly_descending_under_load() {
    // Property over the whole post-run state: after 8 threads hammer a
    // handful of keys through the group-commit pipeline, every version
    // chain's commit timestamps are strictly descending and fully
    // committed (no TID-marked residue, no duplicate or reordered
    // stamps).
    let (db, dir) = open_fsync("descending");
    const KEYS: i32 = 6;
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v BIGINT)")
            .unwrap();
        for k in 0..KEYS {
            s.execute(&format!("INSERT INTO t VALUES ({k}, 0)"))
                .unwrap();
        }
    }
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let mut committed = 0u64;
                let mut n = 0u64;
                while committed < 25 {
                    n += 1;
                    assert!(n < 10_000, "thread {t} cannot make progress");
                    let k = ((t + n) % KEYS as u64) as i32;
                    let mut txn = db.begin(Isolation::Snapshot);
                    let v = (t as i64) * 1_000_000 + n as i64;
                    match db.update_row(&mut txn, "t", vec![Value::Int(k), Value::BigInt(v)]) {
                        Ok(()) => {}
                        Err(e) if e.is_transient() => {
                            let _ = db.rollback(&mut txn);
                            continue;
                        }
                        Err(e) => panic!("update: {e}"),
                    }
                    match db.commit(&mut txn) {
                        Ok(_) => committed += 1,
                        Err(e) if e.is_transient() => {}
                        Err(e) => panic!("commit: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut total_versions = 0usize;
    for k in 0..KEYS {
        let h = db.history_rows("t", &Value::Int(k)).unwrap();
        total_versions += h.len();
        let ts: Vec<_> = h
            .iter()
            .map(|(ts, _)| ts.expect("uncommitted version after all writers joined"))
            .collect();
        for w in ts.windows(2) {
            assert!(
                w[0] > w[1],
                "key {k}: version chain not strictly descending: {ts:?}"
            );
        }
    }
    // 8 threads x 25 commits, one version each, plus the seed inserts.
    assert_eq!(total_versions, (8 * 25 + KEYS) as usize);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rollbacks_interleaved_with_pending_batches_do_not_wedge_commit() {
    // Aborting transactions append WAL records between the commit records
    // of a forming batch; their rollback must neither join nor stall the
    // barrier, and committers must keep draining.
    let (db, dir) = open_fsync("abortmix");
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
    }
    let handles: Vec<_> = (0..6u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..40u64 {
                    let id = (t * 1_000 + i) as i32;
                    let mut txn = db.begin(Isolation::Serializable);
                    db.insert_row(&mut txn, "t", vec![Value::Int(id), Value::Int(t as i32)])
                        .unwrap();
                    if (t + i) % 3 == 0 {
                        db.rollback(&mut txn).unwrap();
                    } else {
                        db.commit(&mut txn).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // A committed row is durable and visible; a rolled-back one is gone.
    let mut txn = db.begin(Isolation::Snapshot);
    let rows = db.scan_rows(&mut txn, "t").unwrap();
    db.commit(&mut txn).unwrap();
    let expect: usize = (0..6u64)
        .map(|t| (0..40u64).filter(|i| (t + i) % 3 != 0).count())
        .sum();
    assert_eq!(rows.len(), expect);
    // And the barrier still works for a fresh committer.
    let mut txn = db.begin(Isolation::Serializable);
    db.insert_row(&mut txn, "t", vec![Value::Int(99_999), Value::Int(7)])
        .unwrap();
    db.commit(&mut txn).unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
