//! Online timestamp-based isolation checking (after arXiv:2504.01477):
//! run a randomized concurrent workload, record every transaction's read
//! and write sets together with its begin-snapshot and commit timestamp,
//! then verify offline that the observed history is consistent with the
//! timestamps the engine assigned:
//!
//! 1. **Write-write order** — per key, the committed values in the
//!    engine's version chain must be exactly the logged committed writes
//!    ordered by commit timestamp, timestamps strictly descending.
//! 2. **Snapshot-read consistency** — every read must return the
//!    transaction's own latest write to the key, or else the committed
//!    value with the greatest commit timestamp at or below the
//!    transaction's snapshot. Nothing else (no dirty, no half-batch, no
//!    non-repeatable reads).
//! 3. **Read-write (anti-dependency) order** — first-committer-wins: no
//!    two committed snapshot transactions may both write a key when one's
//!    commit falls between the other's snapshot and commit.
//! 4. **PTT agreement** — the persistent timestamp table must map every
//!    committed writer to exactly the commit timestamp it returned.
//!
//! The workload runs with group commit on (several seeds) and off: the
//! leader/follower fsync barrier must not reorder or split commit
//! visibility in any way a timestamp checker can observe.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use immortaldb::{
    Database, DbConfig, Durability, GroupCommitConfig, Isolation, Session, Timestamp, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TABLE: &str = "acct";
const KEYS: i32 = 16;
const THREADS: u64 = 6;
const COMMITS_PER_THREAD: usize = 40;

#[derive(Debug, Clone)]
enum Event {
    /// Key and the value observed (`None` would mean "row missing").
    Read(i32, Option<i64>),
    /// Key and the (globally unique) value written.
    Write(i32, i64),
}

#[derive(Debug)]
struct TxnLog {
    tid: u64,
    snapshot: Timestamp,
    commit_ts: Timestamp,
    events: Vec<Event>,
    // Debug ordering info: global sequence numbers around the txn.
    seq_begin: u64,
    seq_events: Vec<u64>,
    seq_commit: u64,
}

fn open(name: &str, grouped: bool) -> (Arc<Database>, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("immortal-it-iso-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(
        DbConfig::new(&dir)
            .durability(Durability::Fsync)
            .group_commit(GroupCommitConfig {
                enabled: grouped,
                ..GroupCommitConfig::default()
            }),
    )
    .unwrap();
    (Arc::new(db), dir)
}

/// Run the workload for one seed and return every violation found.
///
/// `readers` adds that many dedicated read-only threads running
/// concurrently with the writers: snapshot transactions doing multi-read
/// batches plus `AS OF` transactions replaying a random already-logged
/// commit timestamp. Their reads are logged like everyone else's (an
/// `AS OF` transaction is logged with the pinned timestamp as its
/// snapshot) and verified by the same offline snapshot-read rule. This
/// drives the optimistic read path of DESIGN.md §11 underneath the
/// timestamp checker.
fn check_one(seed: u64, grouped: bool, readers: usize) -> Vec<String> {
    let (db, dir) = open(&format!("{seed}-{grouped}-{readers}"), grouped);
    {
        let mut s = Session::new(&db);
        s.execute(&format!(
            "CREATE IMMORTAL TABLE {TABLE} (id INT PRIMARY KEY, v BIGINT)"
        ))
        .unwrap();
    }
    // Seed every key with value 0 in one transaction; its commit acts as
    // the first committed write of each key.
    let seed_ts = {
        let mut txn = db.begin(Isolation::Serializable);
        for k in 0..KEYS {
            db.insert_row(&mut txn, TABLE, vec![Value::Int(k), Value::BigInt(0)])
                .unwrap();
        }
        db.commit(&mut txn).unwrap()
    };

    let logs: Arc<Mutex<Vec<TxnLog>>> = Arc::new(Mutex::new(Vec::new()));
    let seq = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let writers_left = Arc::new(std::sync::atomic::AtomicU64::new(THREADS));
    let reader_reads = Arc::new(std::sync::atomic::AtomicU64::new(0));
    std::thread::scope(|scope| {
        for r in 0..readers {
            let db = Arc::clone(&db);
            let logs = Arc::clone(&logs);
            let seq = Arc::clone(&seq);
            let writers_left = Arc::clone(&writers_left);
            let reader_reads = Arc::clone(&reader_reads);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919).wrapping_add(r as u64));
                while writers_left.load(std::sync::atomic::Ordering::Acquire) > 0 {
                    // A read-only snapshot transaction with a batch of
                    // point reads, logged like any writer transaction.
                    let mut txn = db.begin(Isolation::Snapshot);
                    let seq_begin = seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let mut events = Vec::new();
                    let mut seq_events = Vec::new();
                    for _ in 0..rng.gen_range(4..9) {
                        let k = rng.gen_range(0..KEYS);
                        let row = db.get_row(&mut txn, TABLE, &Value::Int(k)).unwrap();
                        let v = row.map(|r| match r[1] {
                            Value::BigInt(v) => v,
                            ref other => panic!("bad value {other:?}"),
                        });
                        events.push(Event::Read(k, v));
                        seq_events.push(seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst));
                    }
                    reader_reads
                        .fetch_add(events.len() as u64, std::sync::atomic::Ordering::Relaxed);
                    let snapshot = txn.snapshot();
                    let tid = txn.tid().0;
                    let ts = db.commit(&mut txn).unwrap();
                    let seq_commit = seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    logs.lock().unwrap().push(TxnLog {
                        tid,
                        snapshot,
                        commit_ts: ts,
                        events,
                        seq_begin,
                        seq_events,
                        seq_commit,
                    });

                    // An AS OF replay pinned at a random commit timestamp
                    // observed so far; the pinned timestamp plays the role
                    // of the snapshot in the offline read check. Only
                    // timestamps at or below the snapshot watermark just
                    // observed are eligible: commits complete out of
                    // timestamp order under group commit, so a logged
                    // timestamp above the watermark may still have
                    // in-flight commits below it whose versions an AS OF
                    // read cannot see yet.
                    let as_of = {
                        let logs = logs.lock().unwrap();
                        let eligible: Vec<Timestamp> = logs
                            .iter()
                            .map(|l| l.commit_ts)
                            .filter(|ts| *ts <= snapshot)
                            .collect();
                        if eligible.is_empty() {
                            continue;
                        }
                        eligible[rng.gen_range(0..eligible.len())]
                    };
                    let mut txn = db.begin_as_of_ts(as_of);
                    let seq_begin = seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let mut events = Vec::new();
                    let mut seq_events = Vec::new();
                    for _ in 0..rng.gen_range(2..5) {
                        let k = rng.gen_range(0..KEYS);
                        let row = db.get_row(&mut txn, TABLE, &Value::Int(k)).unwrap();
                        let v = row.map(|r| match r[1] {
                            Value::BigInt(v) => v,
                            ref other => panic!("bad value {other:?}"),
                        });
                        events.push(Event::Read(k, v));
                        seq_events.push(seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst));
                    }
                    reader_reads
                        .fetch_add(events.len() as u64, std::sync::atomic::Ordering::Relaxed);
                    let tid = txn.tid().0;
                    db.commit(&mut txn).unwrap();
                    let seq_commit = seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    logs.lock().unwrap().push(TxnLog {
                        tid,
                        snapshot: as_of,
                        commit_ts: as_of,
                        events,
                        seq_begin,
                        seq_events,
                        seq_commit,
                    });
                }
            });
        }
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            let logs = Arc::clone(&logs);
            let seq = Arc::clone(&seq);
            let writers_left = Arc::clone(&writers_left);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(1009).wrapping_add(t));
                // Monotone per thread so every write attempt carries a
                // globally unique value (thread id in the high digits).
                let mut next_val: i64 = 0;
                let mut committed = 0;
                let mut attempts = 0;
                while committed < COMMITS_PER_THREAD {
                    attempts += 1;
                    assert!(
                        attempts < COMMITS_PER_THREAD * 100,
                        "thread {t} cannot make progress"
                    );
                    let mut txn = db.begin(Isolation::Snapshot);
                    let seq_begin = seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    let mut events = Vec::new();
                    let mut seq_events = Vec::new();
                    let n_ops = rng.gen_range(2..5);
                    let mut failed = false;
                    for _ in 0..n_ops {
                        let k = rng.gen_range(0..KEYS);
                        if rng.gen_range(0..100) < 60 {
                            match db.get_row(&mut txn, TABLE, &Value::Int(k)) {
                                Ok(row) => {
                                    let v = row.map(|r| match r[1] {
                                        Value::BigInt(v) => v,
                                        ref other => panic!("bad value {other:?}"),
                                    });
                                    events.push(Event::Read(k, v));
                                    seq_events.push(
                                        seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
                                    );
                                }
                                Err(e) if e.is_transient() => {
                                    failed = true;
                                    break;
                                }
                                Err(e) => panic!("read failed: {e}"),
                            }
                        } else {
                            next_val += 1;
                            let v = t as i64 * 1_000_000 + next_val;
                            let row = vec![Value::Int(k), Value::BigInt(v)];
                            match db.update_row(&mut txn, TABLE, row) {
                                Ok(()) => {
                                    events.push(Event::Write(k, v));
                                    seq_events.push(
                                        seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst),
                                    );
                                }
                                Err(e) if e.is_transient() => {
                                    failed = true;
                                    break;
                                }
                                Err(e) => panic!("write failed: {e}"),
                            }
                        }
                    }
                    if failed {
                        let _ = db.rollback(&mut txn);
                        continue;
                    }
                    let snapshot = txn.snapshot();
                    let tid = txn.tid().0;
                    match db.commit(&mut txn) {
                        Ok(ts) => {
                            let seq_commit = seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            logs.lock().unwrap().push(TxnLog {
                                tid,
                                snapshot,
                                commit_ts: ts,
                                events,
                                seq_begin,
                                seq_events,
                                seq_commit,
                            });
                            committed += 1;
                        }
                        Err(e) if e.is_transient() => continue,
                        Err(e) => panic!("commit failed: {e}"),
                    }
                }
                writers_left.fetch_sub(1, std::sync::atomic::Ordering::Release);
            });
        }
    });
    if readers > 0 {
        assert!(
            reader_reads.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "concurrent readers never read"
        );
    }

    let logs = Arc::try_unwrap(logs).unwrap().into_inner().unwrap();
    let mut violations = Vec::new();

    // Committed writes per key, and the writer of every committed value.
    let mut writes_by_key: HashMap<i32, Vec<(Timestamp, i64)>> = HashMap::new();
    for k in 0..KEYS {
        writes_by_key.entry(k).or_default().push((seed_ts, 0));
    }
    for log in &logs {
        // Only a transaction's LAST write to a key is a committed
        // version; earlier ones were overwritten in place by itself.
        let mut last: HashMap<i32, i64> = HashMap::new();
        for ev in &log.events {
            if let Event::Write(k, v) = ev {
                last.insert(*k, *v);
            }
        }
        for (k, v) in last {
            writes_by_key.entry(k).or_default().push((log.commit_ts, v));
        }
    }
    for list in writes_by_key.values_mut() {
        list.sort();
    }

    // (1) WW order: the engine's version chains must equal the logged
    // committed writes in commit-timestamp order, strictly descending.
    for k in 0..KEYS {
        let expect: Vec<(Timestamp, i64)> = writes_by_key[&k].iter().rev().copied().collect();
        let history = db.history_rows(TABLE, &Value::Int(k)).unwrap();
        let got: Vec<(Timestamp, i64)> = history
            .iter()
            .map(|(ts, row)| {
                let ts = ts.expect("uncommitted version survived the workload");
                let v = match row.as_ref().expect("unexpected deletion")[1] {
                    Value::BigInt(v) => v,
                    ref other => panic!("bad value {other:?}"),
                };
                (ts, v)
            })
            .collect();
        for w in got.windows(2) {
            if w[0].0 <= w[1].0 {
                violations.push(format!(
                    "key {k}: version chain timestamps not strictly descending: {:?} then {:?}",
                    w[0], w[1]
                ));
            }
        }
        if got != expect {
            violations.push(format!(
                "key {k}: version chain {got:?} != committed writes by timestamp {expect:?}"
            ));
        }
    }

    // (2) Snapshot-read consistency: replay each transaction's events.
    for log in &logs {
        let mut own: HashMap<i32, i64> = HashMap::new();
        for (ei, ev) in log.events.iter().enumerate() {
            match ev {
                Event::Write(k, v) => {
                    own.insert(*k, *v);
                }
                Event::Read(k, observed) => {
                    let expected = own.get(k).copied().or_else(|| {
                        writes_by_key[k]
                            .iter()
                            .rev()
                            .find(|(ts, _)| *ts <= log.snapshot)
                            .map(|(_, v)| *v)
                    });
                    if *observed != expected {
                        let ts_of = |v: Option<i64>| {
                            v.and_then(|v| {
                                writes_by_key[k]
                                    .iter()
                                    .find(|(_, w)| *w == v)
                                    .map(|(ts, _)| *ts)
                            })
                        };
                        let writer_of = |v: Option<i64>| {
                            v.and_then(|v| {
                                logs.iter().find(|l| {
                                    l.events
                                        .iter()
                                        .any(|e| matches!(e, Event::Write(wk, wv) if *wk == *k && *wv == v))
                                })
                            })
                        };
                        let wdesc = |v: Option<i64>| {
                            writer_of(v)
                                .map(|w| {
                                    format!(
                                        "writer tid {} seq_begin {} seq_commit {}",
                                        w.tid, w.seq_begin, w.seq_commit
                                    )
                                })
                                .unwrap_or_else(|| "seed txn".to_string())
                        };
                        violations.push(format!(
                            "txn {} (snapshot {:?}, commit {:?}, seq_begin {}, read seq {}): \
                             read of key {k} observed {observed:?} (committed {:?}; {}), \
                             expected {expected:?} (committed {:?}; {})",
                            log.tid,
                            log.snapshot,
                            log.commit_ts,
                            log.seq_begin,
                            log.seq_events[ei],
                            ts_of(*observed),
                            wdesc(*observed),
                            ts_of(expected),
                            wdesc(expected)
                        ));
                    }
                }
            }
        }
    }

    // (3) RW order / first-committer-wins: no committed write to a key I
    // wrote may fall strictly between my snapshot and my commit.
    for log in &logs {
        let mine: Vec<i32> = log
            .events
            .iter()
            .filter_map(|e| match e {
                Event::Write(k, _) => Some(*k),
                _ => None,
            })
            .collect();
        for k in mine {
            for (ts, v) in &writes_by_key[&k] {
                if *ts > log.snapshot && *ts < log.commit_ts {
                    violations.push(format!(
                        "txn {}: lost update on key {k}: foreign write {v} at {ts:?} inside \
                         (snapshot {:?}, commit {:?})",
                        log.tid, log.snapshot, log.commit_ts
                    ));
                }
            }
        }
    }

    // (4) PTT agreement: every committed writer's PTT row carries the
    // timestamp the engine returned at commit.
    let ptt: HashMap<u64, Timestamp> = db
        .ptt_entries()
        .unwrap()
        .into_iter()
        .map(|(tid, ts)| (tid.0, ts))
        .collect();
    for log in &logs {
        let wrote = log.events.iter().any(|e| matches!(e, Event::Write(..)));
        if !wrote {
            continue;
        }
        match ptt.get(&log.tid) {
            Some(ts) if *ts == log.commit_ts => {}
            Some(ts) => violations.push(format!(
                "txn {}: PTT timestamp {ts:?} != returned commit timestamp {:?}",
                log.tid, log.commit_ts
            )),
            // GC may legitimately have reclaimed a fully-stamped entry;
            // absence is only suspicious if nothing could have stamped it.
            None => {}
        }
    }

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    violations
}

#[test]
fn isolation_checker_group_commit_enabled() {
    for seed in [11u64, 22, 33] {
        let violations = check_one(seed, true, 0);
        assert!(
            violations.is_empty(),
            "seed {seed} (grouped): {} violations:\n{}",
            violations.len(),
            violations.join("\n")
        );
    }
}

#[test]
fn isolation_checker_per_commit_fsync() {
    for seed in [44u64, 55] {
        let violations = check_one(seed, false, 0);
        assert!(
            violations.is_empty(),
            "seed {seed} (per-commit): {} violations:\n{}",
            violations.len(),
            violations.join("\n")
        );
    }
}

/// Concurrent-readers mode: dedicated snapshot/AS OF reader threads race
/// the writer workload through the optimistic page-latch read path while
/// the offline timestamp checker audits every observation.
#[test]
fn isolation_checker_concurrent_readers() {
    for seed in [66u64, 77] {
        let violations = check_one(seed, true, 3);
        assert!(
            violations.is_empty(),
            "seed {seed} (concurrent readers): {} violations:\n{}",
            violations.len(),
            violations.join("\n")
        );
    }
}
