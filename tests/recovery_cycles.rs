//! Workspace integration: repeated crash/recovery cycles, checkpoint
//! interplay, and PTT garbage collection across restarts.

use std::sync::Arc;

use immortaldb::{Database, DbConfig, Isolation, Session, SimClock, Value};

struct Env {
    dir: std::path::PathBuf,
    clock: Arc<SimClock>,
}

impl Env {
    fn new(name: &str) -> Env {
        let dir =
            std::env::temp_dir().join(format!("immortal-it-rec-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Env {
            dir,
            clock: Arc::new(SimClock::new(20_000_000)),
        }
    }

    fn open(&self) -> Database {
        Database::open(
            DbConfig::new(&self.dir).clock(Arc::clone(&self.clock) as Arc<dyn immortaldb::Clock>),
        )
        .unwrap()
    }

    fn tick(&self) {
        self.clock.advance(20);
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn repeated_crash_cycles_accumulate_only_committed_history() {
    let env = Env::new("cycles");
    let cycles = 5;
    for cycle in 0..cycles {
        let db = env.open();
        let mut s = Session::new(&db);
        if cycle == 0 {
            s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
                .unwrap();
            s.execute("INSERT INTO t VALUES (1, 0)").unwrap();
            env.tick();
        }
        // Committed update for this cycle.
        s.execute(&format!("UPDATE t SET v = {} WHERE id = 1", cycle + 1))
            .unwrap();
        env.tick();
        // A loser that must vanish.
        let mut loser = db.begin(Isolation::Serializable);
        db.update_row(&mut loser, "t", vec![Value::Int(1), Value::Int(-999)])
            .unwrap();
        db.force_log().unwrap();
        std::mem::forget(loser);
        // Crash (no close/checkpoint).
        drop(db);
    }
    let db = env.open();
    let mut s = Session::new(&db);
    let res = s.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(cycles));
    let h = db.history_rows("t", &Value::Int(1)).unwrap();
    assert_eq!(
        h.len(),
        1 + cycles as usize,
        "insert + one committed update per cycle"
    );
    // Timestamps strictly descending, no -999 anywhere.
    for w in h.windows(2) {
        assert!(w[0].0.unwrap() > w[1].0.unwrap());
    }
    assert!(h
        .iter()
        .all(|(_, row)| row.as_ref().unwrap()[1] != Value::Int(-999)));
}

#[test]
fn crash_between_checkpoint_and_commit_preserves_atomicity() {
    let env = Env::new("ckptmid");
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        env.tick();
        // Multi-record loser caught mid-flight by a checkpoint: its dirty
        // pages reach disk, but the transaction never commits.
        let mut loser = db.begin(Isolation::Serializable);
        db.update_row(&mut loser, "t", vec![Value::Int(1), Value::Int(-1)])
            .unwrap();
        db.checkpoint().unwrap(); // flushes the loser's modified pages!
        db.update_row(&mut loser, "t", vec![Value::Int(2), Value::Int(-2)])
            .unwrap();
        db.force_log().unwrap();
        std::mem::forget(loser);
    }
    let db = env.open();
    assert_eq!(db.recovered_losers, 1);
    let mut s = Session::new(&db);
    let res = s.execute("SELECT * FROM t").unwrap();
    assert_eq!(
        res.rows[0][1],
        Value::Int(10),
        "flushed-but-uncommitted change undone"
    );
    assert_eq!(res.rows[1][1], Value::Int(20));
}

#[test]
fn ptt_entries_survive_crash_and_still_resolve() {
    // The paper: after a crash, volatile refcounts are lost, so those PTT
    // entries "cannot be deleted" — but they keep resolving TID-marked
    // records correctly, and the data remains exact.
    let env = Env::new("pttcrash");
    let n = 40;
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
            .unwrap();
        for i in 0..n {
            s.execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
                .unwrap();
            env.tick();
        }
        db.force_log().unwrap();
        // Crash with every record still TID-marked (no reads, no flushes).
    }
    let db = env.open();
    // All committed transactions' PTT entries were redone.
    assert!(db.ptt_len().unwrap() >= n as usize);
    let mut s = Session::new(&db);
    // Reads resolve through the PTT (VTT was lost) and still see all data.
    let res = s.execute("SELECT * FROM t").unwrap();
    assert_eq!(res.rows.len(), n as usize);
    for (i, row) in res.rows.iter().enumerate() {
        assert_eq!(row[1], Value::Int(i as i32));
    }
    // Those crash-orphaned entries are pinned (refcount unknown), but the
    // engine keeps working and new transactions GC normally.
    for i in n..n + 10 {
        s.execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
        let _ = s
            .execute(&format!("SELECT * FROM t WHERE id = {i}"))
            .unwrap();
        env.tick();
    }
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    let after = db.ptt_len().unwrap();
    assert!(
        after <= n as usize + 2,
        "new entries reclaimed, orphans retained: {after}"
    );
}

#[test]
fn as_of_correctness_across_restart_with_cold_cache() {
    let env = Env::new("coldasof");
    let mut marks = Vec::new();
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT, pad VARCHAR(48))")
            .unwrap();
        for round in 0..8 {
            for id in 0..120 {
                let stmt = if round == 0 {
                    format!("INSERT INTO t VALUES ({id}, 0, 'xxxxxxxxxxxxxxxxxxxxxxxx')")
                } else {
                    format!("UPDATE t SET v = {round} WHERE id = {id}")
                };
                s.execute(&stmt).unwrap();
                env.tick();
            }
            marks.push((round, db.latest_ts()));
        }
        db.close().unwrap();
    }
    let db = env.open();
    for (round, ts) in marks {
        let mut txn = db.begin_as_of_ts(ts);
        let rows = db.scan_rows(&mut txn, "t").unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(rows.len(), 120, "round {round}");
        assert!(
            rows.iter().all(|r| r[1] == Value::Int(round)),
            "round {round} state exact after restart"
        );
    }
}

#[test]
fn drop_without_close_preserves_ddl_and_commits() {
    // Dropping the engine without `close()` (no checkpoint) must not
    // lose acknowledged work: `Drop` drains the WAL buffer, so DDL
    // system records and committed rows replay on the next open even
    // though no page was ever flushed.
    let env = Env::new("drop-no-close");
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE d (id INT PRIMARY KEY, v INT)")
            .unwrap();
        for id in 0..10 {
            s.execute(&format!("INSERT INTO d VALUES ({id}, {})", id * 7))
                .unwrap();
        }
        env.tick();
        drop(db); // no close(), no checkpoint
    }
    let db = env.open();
    let mut txn = db.begin(Isolation::Serializable);
    let rows = db.scan_rows(&mut txn, "d").unwrap();
    db.commit(&mut txn).unwrap();
    assert_eq!(rows.len(), 10, "all committed rows replayed");
    for row in rows {
        let id = match row[0] {
            Value::Int(i) => i,
            ref other => panic!("unexpected id {other:?}"),
        };
        assert_eq!(row[1], Value::Int(id * 7));
    }
}
