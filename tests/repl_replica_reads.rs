//! Wire-path isolation check for read replicas.
//!
//! A primary serves a write load over TCP while a replica follows over
//! the replication frames and serves `BEGIN AS OF` reads over its own
//! TCP endpoint. The writer keeps a ground-truth commit log (timestamp,
//! key, value — single writer, so it is the exact serialization order);
//! afterwards every replica read is replayed against it: the value seen
//! for each key must be the newest committed write at or below the
//! read's effective timestamp, with zero exceptions.
//!
//! The isolation sentinel is armed across BOTH engines through one
//! shared event tap: the primary's commits and the replica's AS OF
//! reads land in the same ring, so the checker verifies the replica
//! reads online against the primary's commit history — the same
//! property the offline replay below proves, but caught live. Ring
//! order is sound because the replication horizon the replica serves
//! under never passes the primary's visible horizon, and every commit's
//! event is pushed before its timestamp becomes visible.
//!
//! Also locks in the typed READ_ONLY rejection over the wire (satellite:
//! `ErrorCode::ReadOnly` must survive the ERROR frame round trip).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use immortaldb::{Database, DbConfig, Durability, EventTap, Isolation, Sentinel, Value};
use immortaldb_common::{Error, ErrorCode, Timestamp};
use immortaldb_net::{Client, Server, ServerConfig};
use immortaldb_repl::{Replica, ReplicaConfig};

const KEYS: i64 = 4;
const ROUNDS: usize = 60;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("repl-reads-{}-{tag}-{nanos}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

#[test]
fn replica_as_of_reads_match_the_primary_commit_history() {
    // One tap shared by the primary and the replica engines; one checker
    // watching both sides of the replication boundary.
    let tap = EventTap::new(1 << 16);
    let db = Arc::new(
        Database::open(
            DbConfig::new(tempdir("primary"))
                .durability(Durability::Buffered)
                .sentinel(Arc::clone(&tap)),
        )
        .unwrap(),
    );
    let sentinel = Sentinel::spawn(Arc::clone(&tap), db.metrics().clone());
    let server =
        Server::start(Arc::clone(&db), ServerConfig::new("127.0.0.1:0").workers(4)).unwrap();
    let addr = server.local_addr().to_string();

    let mut setup = Client::connect(&addr).unwrap();
    setup
        .query("CREATE IMMORTAL TABLE kv (k int PRIMARY KEY, v bigint)")
        .unwrap();

    // Ground truth: (commit ts, key, value) in serialization order.
    let history: Arc<Mutex<Vec<(Timestamp, i64, i64)>>> = Arc::new(Mutex::new(Vec::new()));
    let done = Arc::new(AtomicBool::new(false));

    // A few rounds land before the replica exists, so bootstrap catch-up
    // is exercised on a non-trivial log.
    let writer = {
        let addr = addr.clone();
        let history = Arc::clone(&history);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            for round in 0..ROUNDS {
                let k = round as i64 % KEYS;
                let v = round as i64 * 10;
                c.begin(Isolation::Serializable).unwrap();
                let stmt = if round < KEYS as usize {
                    format!("INSERT INTO kv VALUES ({k}, {v})")
                } else {
                    format!("UPDATE kv SET v = {v} WHERE k = {k}")
                };
                c.query(&stmt).unwrap();
                let ts = c.commit().unwrap();
                history.lock().unwrap().push((ts, k, v));
                std::thread::sleep(Duration::from_millis(3));
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    // Give the writer a head start, then bootstrap the replica mid-load.
    std::thread::sleep(Duration::from_millis(60));
    let replica = Replica::start(
        ReplicaConfig::new(tempdir("replica"), addr.clone()).sentinel(Arc::clone(&tap)),
    )
    .unwrap();
    let replica_server = Server::start(
        Arc::clone(replica.db()),
        ServerConfig::new("127.0.0.1:0").workers(2),
    )
    .unwrap();
    let replica_addr = replica_server.local_addr().to_string();

    // Replica reads during the load: (effective ts, rows seen).
    let mut observations: Vec<(Timestamp, Vec<(i64, i64)>)> = Vec::new();
    let mut reader = Client::connect(&replica_addr).unwrap();
    while !done.load(Ordering::SeqCst) {
        let effective = reader.begin_as_of_ms(now_ms()).unwrap();
        let resp = reader.query("SELECT * FROM kv").unwrap();
        reader.commit().unwrap();
        let rows = resp
            .rows
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(k), Value::BigInt(v)) => (*k as i64, *v),
                other => panic!("unexpected row {other:?}"),
            })
            .collect();
        observations.push((effective, rows));
        std::thread::sleep(Duration::from_millis(2));
    }
    writer.join().unwrap();
    assert!(
        observations.iter().any(|(_, rows)| !rows.is_empty()),
        "no replica read ever observed data; the check never engaged"
    );

    // Offline replay: each observation must equal the prefix of the
    // commit history at its effective timestamp.
    let history = history.lock().unwrap();
    let mut violations = 0usize;
    for (effective, rows) in &observations {
        let mut expected: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
        for (ts, k, v) in history.iter() {
            if ts <= effective {
                expected.insert(*k, *v);
            }
        }
        let mut seen: std::collections::BTreeMap<i64, i64> = std::collections::BTreeMap::new();
        for (k, v) in rows {
            seen.insert(*k, *v);
        }
        if seen != expected {
            violations += 1;
            eprintln!(
                "violation at {}.{}: saw {seen:?}, expected {expected:?}",
                effective.ttime, effective.sn
            );
        }
    }
    assert_eq!(violations, 0, "replica AS OF reads diverged from history");

    // Satellite: the typed READ_ONLY code must cross the wire intact.
    let mut w = Client::connect(&replica_addr).unwrap();
    match w.query("INSERT INTO kv VALUES (99, 1)") {
        Err(Error::Remote { code, message, .. }) => {
            assert_eq!(code, ErrorCode::ReadOnly);
            assert!(
                message.contains("read-only"),
                "unhelpful replica rejection: {message}"
            );
        }
        other => panic!("replica accepted a write: {other:?}"),
    }
    // DDL is rejected the same way.
    match w.query("CREATE TABLE nope (a int PRIMARY KEY)") {
        Err(Error::Remote { code, .. }) => assert_eq!(code, ErrorCode::ReadOnly),
        other => panic!("replica accepted DDL: {other:?}"),
    }

    replica_server.shutdown().unwrap();
    replica.stop();
    server.shutdown().unwrap();

    // The online checker must agree with the offline replay: it watched
    // the primary's commits and the replica's reads and found nothing.
    let report = sentinel.stop();
    assert!(
        report.commits_checked > 0,
        "sentinel saw no commits; the online check never engaged"
    );
    assert!(
        report.reads_checked > 0,
        "sentinel saw no replica reads; the online check never engaged"
    );
    assert_eq!(
        report.violation_count, 0,
        "online sentinel found violations the replay did not: {:?}",
        report.violations
    );
}
