//! Deep-history shadow checker for delta-encoded version chains and the
//! history compactor.
//!
//! A table is driven through hundreds of updates per key — deep version
//! chains spanning many history pages, with mostly-stable payloads so
//! delta encoding has something to exploit — while a shadow log records
//! every commit's exact `(timestamp, key, value)`. AS OF point reads and
//! `VERSIONS BETWEEN` are then checked against the shadow: after the
//! build, after a synchronous `compact_history` pass, after a reopen
//! that replays the compaction's page images from the log, and on a
//! replica that applied the compacted primary's WAL. Both index kinds
//! (chain and TSB) run the same battery.

use std::sync::Arc;

use immortaldb::{Database, DbConfig, Durability, Isolation, Session, SimClock, Value};
use immortaldb_common::Timestamp;
use immortaldb_net::{Client, Server, ServerConfig};
use immortaldb_repl::{Replica, ReplicaConfig};

const KEYS: i32 = 4;
const ROUNDS: usize = 250;
/// The key that gets a mid-history delete + re-insert (tombstones must
/// survive packing as anchors).
const DELETED_KEY: i32 = 2;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "history-compaction-{}-{tag}-{nanos}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Mostly-stable payload: a long constant pad with a small changing head.
fn payload(oid: i32, seq: i32) -> String {
    format!("{seq:06}-{oid:02}-{}", "p".repeat(120))
}

/// One committed change: `(commit ts, oid, Some(seq) | None for delete)`.
type Log = Vec<(Timestamp, i32, Option<i32>)>;

struct Fixture {
    /// `Option` so tests can close the engine (reopen scenarios) while
    /// the fixture keeps owning the directory.
    db: Option<Arc<Database>>,
    clock: Arc<SimClock>,
    log: Log,
    dir: std::path::PathBuf,
}

impl Fixture {
    fn db(&self) -> &Arc<Database> {
        self.db.as_ref().expect("engine is open")
    }

    /// Close the engine and recover from the files on disk.
    fn reopen(&mut self) {
        self.db = None;
        self.db = Some(open_db(&self.dir, Arc::clone(&self.clock)));
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.db = None;
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn open_db(dir: &std::path::Path, clock: Arc<SimClock>) -> Arc<Database> {
    Arc::new(
        Database::open(
            DbConfig::new(dir)
                .durability(Durability::Buffered)
                .clock(clock),
        )
        .unwrap(),
    )
}

/// Build the deep history: a batched initial load, then `ROUNDS` rounds
/// of single-key updates walking round-robin over the keys, one delete +
/// re-insert for [`DELETED_KEY`] in the middle.
fn build(tag: &str, using_tsb: bool) -> Fixture {
    let dir = tempdir(tag);
    let clock = Arc::new(SimClock::new(7_000_000));
    let db = open_db(&dir, Arc::clone(&clock));
    let mut s = Session::new(&db);
    let ddl = format!(
        "CREATE IMMORTAL TABLE deep (Oid INT PRIMARY KEY, Seq INT, Pad VARCHAR(160)){}",
        if using_tsb { " USING TSB" } else { "" }
    );
    s.execute(&ddl).unwrap();

    let mut log: Log = Vec::new();
    // Initial load through the batched-ingest path.
    let rows: Vec<Vec<Value>> = (0..KEYS)
        .map(|oid| {
            vec![
                Value::Int(oid),
                Value::Int(0),
                Value::Varchar(payload(oid, 0)),
            ]
        })
        .collect();
    let mut txn = db.begin(Isolation::Serializable);
    db.insert_rows(&mut txn, "deep", rows).unwrap();
    let ts = db.commit(&mut txn).unwrap();
    for oid in 0..KEYS {
        log.push((ts, oid, Some(0)));
    }
    clock.advance(20);

    for round in 1..=ROUNDS {
        let oid = (round as i32) % KEYS;
        let seq = round as i32;
        let mut txn = db.begin(Isolation::Serializable);
        if oid == DELETED_KEY && round == ROUNDS / 2 {
            db.delete_row(&mut txn, "deep", &Value::Int(oid)).unwrap();
            let ts = db.commit(&mut txn).unwrap();
            log.push((ts, oid, None));
        } else if oid == DELETED_KEY && round == ROUNDS / 2 + KEYS as usize {
            db.insert_row(
                &mut txn,
                "deep",
                vec![
                    Value::Int(oid),
                    Value::Int(seq),
                    Value::Varchar(payload(oid, seq)),
                ],
            )
            .unwrap();
            let ts = db.commit(&mut txn).unwrap();
            log.push((ts, oid, Some(seq)));
        } else {
            db.update_row(
                &mut txn,
                "deep",
                vec![
                    Value::Int(oid),
                    Value::Int(seq),
                    Value::Varchar(payload(oid, seq)),
                ],
            )
            .unwrap();
            let ts = db.commit(&mut txn).unwrap();
            log.push((ts, oid, Some(seq)));
        }
        clock.advance(20);
    }
    Fixture {
        db: Some(db),
        clock,
        log,
        dir,
    }
}

/// Shadow answer for `key` AS OF `ts`: newest change at or below it.
fn shadow_at(log: &Log, oid: i32, ts: Timestamp) -> Option<i32> {
    log.iter()
        .rfind(|(cts, k, _)| *k == oid && *cts <= ts)
        .and_then(|(_, _, v)| *v)
}

/// Check sampled AS OF point reads for every key against the shadow.
fn check_as_of(db: &Database, log: &Log, label: &str) {
    let step = (log.len() / 40).max(1);
    for (i, (ts, _, _)) in log.iter().enumerate().step_by(step) {
        for oid in 0..KEYS {
            let mut txn = db.begin_as_of_ts(*ts);
            let row = db.get_row(&mut txn, "deep", &Value::Int(oid)).unwrap();
            db.rollback(&mut txn).unwrap();
            let want = shadow_at(log, oid, *ts);
            let got = row.map(|r| match r[1] {
                Value::Int(seq) => seq,
                ref other => panic!("bad Seq cell: {other:?}"),
            });
            assert_eq!(
                got, want,
                "{label}: AS OF {ts:?} (log index {i}) diverged for key {oid}"
            );
            if let Some(seq) = want {
                // The payload must reconstruct byte-exact through any
                // delta chain, not just the Seq column.
                let mut txn = db.begin_as_of_ts(*ts);
                let row = db.get_row(&mut txn, "deep", &Value::Int(oid)).unwrap();
                db.rollback(&mut txn).unwrap();
                match &row.unwrap()[2] {
                    Value::Varchar(p) => assert_eq!(
                        p,
                        &payload(oid, seq),
                        "{label}: payload mismatch AS OF {ts:?} key {oid}"
                    ),
                    other => panic!("bad Pad cell: {other:?}"),
                }
            }
        }
    }
}

/// Check `VERSIONS BETWEEN` over a window against the shadow.
fn check_versions_between(db: &Arc<Database>, log: &Log, label: &str) {
    let lo = log[log.len() / 4].0;
    let hi = log[3 * log.len() / 4].0;
    let mut s = Session::new(db);
    let sql = format!(
        "SELECT * FROM deep VERSIONS BETWEEN ms({}) AND ms({})",
        lo.ttime, hi.ttime
    );
    let got = s.execute(&sql).unwrap();
    let mut want: Vec<(u64, i32, Option<i32>)> = log
        .iter()
        .filter(|(ts, _, _)| lo <= *ts && *ts <= hi)
        .map(|(ts, oid, v)| (ts.ttime, *oid, *v))
        .collect();
    want.sort_by_key(|(ms, oid, _)| (*oid, *ms));
    assert_eq!(
        got.rows.len(),
        want.len(),
        "{label}: VERSIONS BETWEEN row count diverged"
    );
    for (row, (ms, oid, v)) in got.rows.iter().zip(&want) {
        match (&row[0], &row[2], &row[3]) {
            (Value::BigInt(got_ms), Value::Varchar(op), Value::Int(got_oid)) => {
                assert_eq!(*got_ms as u64, *ms, "{label}: version ms diverged");
                assert_eq!(got_oid, oid, "{label}: version key diverged");
                let want_op = if v.is_some() { "WRITE" } else { "DELETE" };
                assert_eq!(op, want_op, "{label}: version op diverged");
            }
            other => panic!("bad VERSIONS row head: {other:?}"),
        }
    }
}

/// Serializes the batteries: they toggle the process-wide split-time
/// packing switch and must not observe each other's setting.
static PACKING_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn run_battery(using_tsb: bool, tag: &str) {
    let _gate = PACKING_GATE.lock().unwrap();
    // Build with split-time delta packing off: history pages land holding
    // full versions — the shape a pre-delta engine (or one upgraded in
    // place) leaves behind — so the compactor's packing win is
    // measurable for both index kinds, not just the chain merge.
    let was = immortaldb_storage::version::set_history_packing(false);
    let mut f = build(tag, using_tsb);
    immortaldb_storage::version::set_history_packing(was);

    check_as_of(f.db(), &f.log, "pre-compaction");
    check_versions_between(f.db(), &f.log, "pre-compaction");
    let before = f.db().history_stats().unwrap();
    assert!(
        before.history_pages > 3,
        "build must produce deep history, got {before:?}"
    );

    // Synchronous compaction pass: must reclaim something (merging for
    // the chain index, packing for both) and must not change any answer.
    let stats = f.db().compact_history().unwrap();
    assert!(
        stats.pages_rewritten > 0,
        "compaction found nothing to rewrite: {stats:?}"
    );
    let after = f.db().history_stats().unwrap();
    assert!(
        after.bytes_per_version() < 0.7 * before.bytes_per_version(),
        "delta packing must shrink bytes/version substantially: {before:?} -> {after:?}"
    );
    if !using_tsb {
        assert!(
            stats.pages_freed > 0,
            "chain compaction must merge under-filled chain pages: {stats:?}"
        );
        assert!(
            after.history_pages < before.history_pages,
            "merging must shrink the page count: {before:?} -> {after:?}"
        );
    }
    check_as_of(f.db(), &f.log, "post-compaction");
    check_versions_between(f.db(), &f.log, "post-compaction");

    // A second pass must be (close to) a no-op — idempotence.
    let again = f.db().compact_history().unwrap();
    assert_eq!(again.pages_freed, 0, "second pass freed pages: {again:?}");
    check_as_of(f.db(), &f.log, "second-pass");

    // Reopen: redo replays the compaction's page images from the log
    // (the pass never checkpointed, so its pages were never flushed).
    f.reopen();
    check_as_of(f.db(), &f.log, "post-reopen");
    check_versions_between(f.db(), &f.log, "post-reopen");
    let reopened = f.db().history_stats().unwrap();
    assert_eq!(
        reopened.history_pages, after.history_pages,
        "reopen must reconstruct the compacted store"
    );
}

#[test]
fn deep_history_matches_shadow_chain_index() {
    run_battery(false, "chain");
}

#[test]
fn deep_history_matches_shadow_tsb_index() {
    run_battery(true, "tsb");
}

/// A replica that applies the primary's WAL — including the compaction's
/// page-image records — must serve the same deep-history answers.
#[test]
fn replica_serves_compacted_history() {
    let f = build("repl", false);
    f.db().compact_history().unwrap();

    let server = Server::start(
        Arc::clone(f.db()),
        ServerConfig::new("127.0.0.1:0").workers(2),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let replica = Replica::start(ReplicaConfig::new(tempdir("repl-follower"), addr)).unwrap();
    let last = f.log.last().unwrap().0;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while replica.db().visible_horizon() < last {
        assert!(
            std::time::Instant::now() < deadline,
            "replica never caught up to {last:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    check_as_of(replica.db(), &f.log, "replica");

    // And over the wire, a sampled AS OF transaction.
    let replica_server = Server::start(
        Arc::clone(replica.db()),
        ServerConfig::new("127.0.0.1:0").workers(2),
    )
    .unwrap();
    let mut c = Client::connect(replica_server.local_addr().to_string()).unwrap();
    let (mid_ts, _, _) = f.log[f.log.len() / 2];
    c.query(&format!("BEGIN TRAN AS OF ms({})", mid_ts.ttime))
        .unwrap();
    let rows = c.query("SELECT * FROM deep WHERE Oid < 1000").unwrap();
    c.query("COMMIT TRAN").unwrap();
    let want_live = (0..KEYS)
        .filter(|oid| shadow_at(&f.log, *oid, mid_ts).is_some())
        .count();
    assert_eq!(
        rows.rows.len(),
        want_live,
        "replica wire scan diverged from the shadow"
    );

    replica_server.shutdown().unwrap();
    replica.stop();
    server.shutdown().unwrap();
}
