//! Shadow-model checker for the temporal query subsystem.
//!
//! A deterministic history (inserts, multi-updates, deletes, re-inserts
//! from `mobgen::temporal_history`) is replayed against the engine while
//! a shadow model records every commit's exact `(timestamp, key, state)`.
//! Afterwards `VERSIONS BETWEEN`, `DIFF TABLE`, and snapshot reads are
//! checked against answers recomputed from the shadow log — zero
//! mismatches allowed — on fixed seeds, for both the TSB index and the
//! default version-chain index, with per-commit and grouped transactions,
//! on the primary `Session` and over the wire.

use std::collections::BTreeMap;
use std::sync::Arc;

use immortaldb::temporal::{window_hi, window_lo};
use immortaldb::{Database, DbConfig, Durability, Isolation, Session, SimClock, Value};
use immortaldb_common::{Error, ErrorCode, Timestamp};
use immortaldb_mobgen::{temporal_history, TemporalOp};
use immortaldb_net::{Client, Server, ServerConfig};
use immortaldb_repl::{Replica, ReplicaConfig};

const OBJECTS: u32 = 6;
const STEPS: u32 = 240;

fn tempdir(tag: &str) -> std::path::PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!(
        "temporal-shadow-{}-{tag}-{nanos}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One committed change: `(commit ts, oid, Some((x, y)) | None for delete)`.
type Log = Vec<(Timestamp, i32, Option<(i32, i32)>)>;

struct Fixture {
    db: Arc<Database>,
    log: Log,
    dir: std::path::PathBuf,
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Replay `ops` in transactions of up to `batch` operations (flushing
/// early if an oid repeats, so each key has at most one version per
/// commit), advancing the simulated clock one 20 ms tick per commit.
fn build(tag: &str, using_tsb: bool, seed: u64, batch: usize) -> Fixture {
    let dir = tempdir(tag);
    let clock = Arc::new(SimClock::new(5_000_000));
    let db = Arc::new(
        Database::open(
            DbConfig::new(&dir)
                .durability(Durability::Buffered)
                .clock(clock.clone()),
        )
        .unwrap(),
    );
    let mut s = Session::new(&db);
    let ddl = format!(
        "CREATE IMMORTAL TABLE obj (Oid INT PRIMARY KEY, LocationX INT, LocationY INT){}",
        if using_tsb { " USING TSB" } else { "" }
    );
    s.execute(&ddl).unwrap();

    let ops = temporal_history(seed, OBJECTS, STEPS);
    let mut log: Log = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        let mut in_txn: Vec<TemporalOp> = Vec::new();
        while i < ops.len()
            && in_txn.len() < batch
            && !in_txn.iter().any(|o| o.oid() == ops[i].oid())
        {
            in_txn.push(ops[i]);
            i += 1;
        }
        let mut txn = db.begin(Isolation::Serializable);
        for op in &in_txn {
            match *op {
                TemporalOp::Insert { oid, x, y } => db
                    .insert_row(
                        &mut txn,
                        "obj",
                        vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
                    )
                    .unwrap(),
                TemporalOp::Update { oid, x, y } => db
                    .update_row(
                        &mut txn,
                        "obj",
                        vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
                    )
                    .unwrap(),
                TemporalOp::Delete { oid } => db
                    .delete_row(&mut txn, "obj", &Value::Int(oid as i32))
                    .unwrap(),
            }
        }
        let ts = db.commit(&mut txn).unwrap();
        for op in &in_txn {
            match *op {
                TemporalOp::Insert { oid, x, y } | TemporalOp::Update { oid, x, y } => {
                    log.push((ts, oid as i32, Some((x, y))))
                }
                TemporalOp::Delete { oid } => log.push((ts, oid as i32, None)),
            }
        }
        clock.advance(20);
    }
    Fixture { db, log, dir }
}

/// Table state at `ts` per the shadow: newest change at or below `ts`.
fn state_at(log: &Log, ts: Timestamp) -> BTreeMap<i32, (i32, i32)> {
    let mut m = BTreeMap::new();
    for (cts, oid, val) in log {
        if *cts <= ts {
            match val {
                Some(xy) => {
                    m.insert(*oid, *xy);
                }
                None => {
                    m.remove(oid);
                }
            }
        }
    }
    m
}

/// Expected `VERSIONS BETWEEN` rows: every change in `[lo, hi]`, sorted
/// key-major then time, as `(ms, sn, op, oid, x, y)` with empty x/y on
/// tombstones (mirroring the SQL projection).
type VersionRow = (u64, u32, String, i32, String, String);

fn expected_versions(log: &Log, lo: Timestamp, hi: Timestamp) -> Vec<VersionRow> {
    let mut rows: Vec<_> = log
        .iter()
        .filter(|(ts, _, _)| lo <= *ts && *ts <= hi)
        .collect();
    rows.sort_by_key(|(ts, oid, _)| (*oid, *ts));
    rows.iter()
        .map(|(ts, oid, val)| match val {
            Some((x, y)) => (
                ts.ttime,
                ts.sn,
                "WRITE".to_string(),
                *oid,
                x.to_string(),
                y.to_string(),
            ),
            None => (
                ts.ttime,
                ts.sn,
                "DELETE".to_string(),
                *oid,
                String::new(),
                String::new(),
            ),
        })
        .collect()
}

fn got_versions(rows: &[Vec<Value>]) -> Vec<VersionRow> {
    rows.iter()
        .map(|r| match (&r[0], &r[1], &r[2], &r[3], &r[4], &r[5]) {
            (Value::BigInt(ms), Value::Int(sn), Value::Varchar(op), Value::Int(oid), x, y) => (
                *ms as u64,
                *sn as u32,
                op.clone(),
                *oid,
                x.to_string(),
                y.to_string(),
            ),
            other => panic!("bad VERSIONS row: {other:?}"),
        })
        .collect()
}

/// Expected `DIFF` rows `(op, ts, oid, before, after)` sorted by key; the
/// row timestamp is the newest change of the key at or below `t2`.
type DiffRow = (
    String,
    u64,
    u32,
    i32,
    Option<(i32, i32)>,
    Option<(i32, i32)>,
);

fn expected_diff(log: &Log, t1: Timestamp, t2: Timestamp) -> Vec<DiffRow> {
    let before = state_at(log, t1);
    let after = state_at(log, t2);
    let keys: std::collections::BTreeSet<i32> =
        before.keys().chain(after.keys()).copied().collect();
    let mut out = Vec::new();
    for oid in keys {
        let (b, a) = (before.get(&oid).copied(), after.get(&oid).copied());
        let op = match (b, a) {
            (None, Some(_)) => "INSERT",
            (Some(_), None) => "DELETE",
            (Some(x), Some(y)) if x != y => "UPDATE",
            _ => continue,
        };
        let ts = log
            .iter()
            .filter(|(ts, k, _)| *k == oid && *ts <= t2)
            .map(|(ts, _, _)| *ts)
            .max()
            .unwrap();
        out.push((op.to_string(), ts.ttime, ts.sn, oid, b, a));
    }
    out
}

fn got_diff(rows: &[Vec<Value>]) -> Vec<DiffRow> {
    let side = |cells: &[Value]| match cells {
        [Value::Int(_), Value::Int(x), Value::Int(y)] => Some((*x, *y)),
        [Value::Varchar(e), ..] if e.is_empty() => None,
        other => panic!("bad DIFF side: {other:?}"),
    };
    let mut out: Vec<DiffRow> = rows
        .iter()
        .map(|r| {
            let (op, ms, sn) = match (&r[0], &r[1], &r[2]) {
                (Value::Varchar(op), Value::BigInt(ms), Value::Int(sn)) => {
                    (op.clone(), *ms as u64, *sn as u32)
                }
                other => panic!("bad DIFF row head: {other:?}"),
            };
            let (b, a) = (side(&r[3..6]), side(&r[6..9]));
            let oid = match (&r[3], &r[6]) {
                (Value::Int(k), _) | (_, Value::Int(k)) => *k,
                other => panic!("DIFF row lost its key: {other:?}"),
            };
            (op, ms, sn, oid, b, a)
        })
        .collect();
    out.sort_by_key(|r| r.3);
    out
}

/// Run the full battery of shadow checks through `query` (a closure so
/// the same assertions run against a local Session and a wire client).
fn check_against_shadow<F>(log: &Log, mut query: F)
where
    F: FnMut(&str) -> immortaldb::QueryResult,
{
    let times: Vec<Timestamp> = log.iter().map(|e| e.0).collect();
    let span = (times[0].ttime, times[times.len() - 1].ttime);
    // Windows: whole history, a mid slice, a single tick, and an upper
    // bound far past the horizon (the engine clamps it; the shadow sees
    // the same rows because nothing committed out there).
    let mid = (span.0 + span.1) / 2;
    let windows = [
        (span.0, span.1),
        (mid - 400, mid + 400),
        (times[times.len() / 3].ttime, times[times.len() / 3].ttime),
        (span.0, span.1 + 1_000_000),
    ];
    for (a, b) in windows {
        let sql = format!("SELECT * FROM obj VERSIONS BETWEEN ms({a}) AND ms({b})");
        let res = query(&sql);
        assert_eq!(
            res.columns,
            vec![
                "_commit_ms",
                "_commit_sn",
                "_op",
                "Oid",
                "LocationX",
                "LocationY"
            ]
        );
        assert_eq!(
            got_versions(&res.rows),
            expected_versions(log, window_lo(a), window_hi(b)),
            "VERSIONS BETWEEN ms({a}) AND ms({b}) diverged from the shadow"
        );

        let sql = format!("DIFF TABLE obj BETWEEN ms({a}) AND ms({b})");
        let res = query(&sql);
        assert_eq!(
            got_diff(&res.rows),
            expected_diff(log, window_hi(a), window_hi(b)),
            "DIFF BETWEEN ms({a}) AND ms({b}) diverged from the shadow"
        );
    }

    // Snapshot pinned mid-history reads exactly the shadow state there,
    // both via BEGIN AS OF SNAPSHOT and as a VERSIONS BETWEEN bound.
    query(&format!("CREATE SNAPSHOT mid AS OF ms({mid})"));
    query("BEGIN TRAN AS OF SNAPSHOT mid");
    let res = query("SELECT * FROM obj");
    query("COMMIT TRAN");
    let got: BTreeMap<i32, (i32, i32)> = res
        .rows
        .iter()
        .map(|r| match (&r[0], &r[1], &r[2]) {
            (Value::Int(k), Value::Int(x), Value::Int(y)) => (*k, (*x, *y)),
            other => panic!("bad row {other:?}"),
        })
        .collect();
    assert_eq!(got, state_at(log, window_hi(mid)), "snapshot read diverged");

    let res = query(&format!(
        "SELECT * FROM obj VERSIONS BETWEEN SNAPSHOT mid AND ms({})",
        span.1
    ));
    // Snapshot bounds are exact (no tick-widening).
    let snap_ts = window_hi(mid);
    assert_eq!(
        got_versions(&res.rows),
        expected_versions(log, snap_ts, window_hi(span.1)),
        "snapshot-bounded VERSIONS diverged"
    );

    let res = query("SHOW SNAPSHOTS");
    assert!(
        res.rows
            .iter()
            .any(|r| matches!(&r[0], Value::Varchar(n) if n == "mid")),
        "SHOW SNAPSHOTS lost the snapshot"
    );
    query("DROP SNAPSHOT mid");

    // WHERE on VERSIONS BETWEEN: a key qualifies if any live version in
    // the window matches; all of its versions are then returned.
    let res = query(&format!(
        "SELECT * FROM obj VERSIONS BETWEEN ms({}) AND ms({}) WHERE Oid = 3",
        span.0, span.1
    ));
    let expected: Vec<VersionRow> = expected_versions(log, window_lo(span.0), window_hi(span.1))
        .into_iter()
        .filter(|r| r.3 == 3)
        .collect();
    assert_eq!(
        got_versions(&res.rows),
        expected,
        "predicate filtering diverged"
    );
}

#[test]
fn versions_diff_and_snapshots_match_shadow_on_fixed_seeds() {
    // (seed, grouped batch size) × (TSB, version-chain) — per-commit
    // histories and grouped transactions both replayed.
    for (seed, batch) in [(0xA11CE, 1), (0xB0B, 3)] {
        for using_tsb in [true, false] {
            let tag = format!("s{seed}-b{batch}-t{using_tsb}");
            let f = build(&tag, using_tsb, seed, batch);
            let mut session = Session::new(&f.db);
            check_against_shadow(&f.log, |sql| {
                session
                    .execute(sql)
                    .unwrap_or_else(|e| panic!("{sql}: {e}"))
            });
        }
    }
}

#[test]
fn wire_results_match_shadow_and_errors_stay_typed() {
    let f = build("wire", true, 0xA11CE, 1);
    let server = Server::start(
        Arc::clone(&f.db),
        ServerConfig::new("127.0.0.1:0").workers(2),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let mut c = Client::connect(&addr).unwrap();

    check_against_shadow(&f.log, |sql| {
        let resp = c.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        immortaldb::QueryResult {
            columns: resp.columns,
            rows: resp.rows,
            affected: resp.affected as usize,
            message: resp.message,
        }
    });

    // Reversed literal bounds: a parse error anchored at the second
    // bound's byte offset, surviving the wire round trip.
    let sql = "SELECT * FROM obj VERSIONS BETWEEN ms(200) AND ms(100)";
    match c.query(sql) {
        Err(Error::Remote {
            code,
            offset,
            message,
        }) => {
            assert_eq!(code, ErrorCode::Parse);
            assert_eq!(offset, Some(sql.find("ms(100)").unwrap() as u32));
            assert!(message.contains("reversed"), "unhelpful: {message}");
        }
        other => panic!("reversed bounds accepted: {other:?}"),
    }

    // Unknown snapshot name: the typed temporal code crosses the wire.
    match c.query("BEGIN TRAN AS OF SNAPSHOT no_such_snap") {
        Err(Error::Remote { code, message, .. }) => {
            assert_eq!(code, ErrorCode::Temporal);
            assert!(message.contains("no_such_snap"), "unhelpful: {message}");
        }
        other => panic!("unknown snapshot accepted: {other:?}"),
    }
    match c.query("DIFF TABLE obj BETWEEN SNAPSHOT no_such_snap AND ms(99999999999)") {
        Err(Error::Remote { code, .. }) => assert_eq!(code, ErrorCode::Temporal),
        other => panic!("unknown snapshot accepted: {other:?}"),
    }
    // Duplicate snapshot names are temporal errors too.
    c.query("CREATE SNAPSHOT dup").unwrap();
    match c.query("CREATE SNAPSHOT dup") {
        Err(Error::Remote { code, .. }) => assert_eq!(code, ErrorCode::Temporal),
        other => panic!("duplicate snapshot accepted: {other:?}"),
    }
    c.query("DROP SNAPSHOT dup").unwrap();

    server.shutdown().unwrap();
}

#[test]
fn replica_clamps_temporal_upper_bound_to_its_horizon() {
    let f = build("repl-clamp", true, 0xB0B, 1);
    let server = Server::start(
        Arc::clone(&f.db),
        ServerConfig::new("127.0.0.1:0").workers(2),
    )
    .unwrap();
    let addr = server.local_addr().to_string();

    let replica = Replica::start(ReplicaConfig::new(tempdir("replica"), addr)).unwrap();
    let last = f.log.last().unwrap().0;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    while replica.db().visible_horizon() < last {
        assert!(
            std::time::Instant::now() < deadline,
            "replica never caught up to {last:?}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let replica_server = Server::start(
        Arc::clone(replica.db()),
        ServerConfig::new("127.0.0.1:0").workers(2),
    )
    .unwrap();
    let mut c = Client::connect(replica_server.local_addr().to_string()).unwrap();

    // An upper bound far beyond the replication horizon must be clamped,
    // not rejected, and the rows must match the shadow's full history.
    let (a, b) = (f.log[0].0.ttime, last.ttime + 1_000_000_000);
    let resp = c
        .query(&format!(
            "SELECT * FROM obj VERSIONS BETWEEN ms({a}) AND ms({b})"
        ))
        .expect("replica rejected a past-horizon VERSIONS upper bound");
    assert_eq!(
        got_versions(&resp.rows),
        expected_versions(&f.log, window_lo(a), window_hi(b)),
        "replica VERSIONS diverged from the primary history"
    );
    let resp = c
        .query(&format!("DIFF TABLE obj BETWEEN ms({a}) AND ms({b})"))
        .expect("replica rejected a past-horizon DIFF upper bound");
    assert_eq!(
        got_diff(&resp.rows),
        expected_diff(&f.log, window_hi(a), window_hi(b)),
        "replica DIFF diverged from the primary history"
    );

    // Snapshots created on the primary replicate; creating one on the
    // replica is refused as read-only.
    let mut p = Client::connect(server.local_addr().to_string()).unwrap();
    p.query(&format!(
        "CREATE SNAPSHOT replicated AS OF ms({})",
        last.ttime
    ))
    .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let resp = c.query("SHOW SNAPSHOTS").unwrap();
        if resp
            .rows
            .iter()
            .any(|r| matches!(&r[0], Value::Varchar(n) if n == "replicated"))
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "snapshot never reached the replica"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    match c.query("CREATE SNAPSHOT local_on_replica") {
        Err(Error::Remote { code, .. }) => assert_eq!(code, ErrorCode::ReadOnly),
        other => panic!("replica accepted snapshot DDL: {other:?}"),
    }

    replica_server.shutdown().unwrap();
    replica.stop();
    server.shutdown().unwrap();
}
