//! Workspace integration: the obs metrics subsystem observed end-to-end
//! through `Database::metrics_snapshot()` and `SHOW STATS`.

use immortaldb::{Database, DbConfig, Session, TimestampingMode, Value};

struct Env {
    dir: std::path::PathBuf,
}

impl Env {
    fn new(name: &str) -> Env {
        let dir =
            std::env::temp_dir().join(format!("immortal-it-obs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Env { dir }
    }

    fn open(&self, mode: TimestampingMode) -> Database {
        Database::open(DbConfig::new(&self.dir).timestamping(mode)).unwrap()
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn load(db: &Database, rows: i32) {
    let mut s = Session::new(db);
    s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    for i in 0..rows {
        s.execute(&format!("INSERT INTO t VALUES ({i}, {i})"))
            .unwrap();
        s.execute(&format!("UPDATE t SET v = {} WHERE id = {i}", i + 1))
            .unwrap();
    }
    // Read everything back so the buffer pool sees hits, not just misses.
    let res = s.execute("SELECT * FROM t").unwrap();
    assert_eq!(res.rows.len(), rows as usize);
}

#[test]
fn buffer_accounting_is_consistent() {
    let env = Env::new("buffer");
    let db = env.open(TimestampingMode::Lazy);
    load(&db, 50);
    let snap = db.metrics_snapshot();
    let fetches = snap.get("buffer.fetches").unwrap();
    let hits = snap.get("buffer.hits").unwrap();
    let misses = snap.get("buffer.misses").unwrap();
    assert!(fetches > 0, "workload must touch the buffer pool");
    assert_eq!(fetches, hits + misses, "every fetch is a hit or a miss");
    assert!(snap.get("wal.appends").unwrap() > 0);
    assert!(snap.get("wal.bytes").unwrap() > 0);
}

#[test]
fn lazy_timestamping_defers_and_eager_does_not() {
    // Lazy: commits go through the PTT, no eager stamping work.
    let lazy_env = Env::new("lazy");
    let lazy = lazy_env.open(TimestampingMode::Lazy);
    load(&lazy, 30);
    let snap = lazy.metrics_snapshot();
    assert!(
        snap.get("ts.ptt_inserts").unwrap() > 0,
        "lazy commits register in the PTT"
    );
    assert_eq!(
        snap.get("ts.stamps.eager").unwrap(),
        0,
        "lazy mode never eager-stamps"
    );
    // The SELECT revisits committed versions, so lazy stamping happens at
    // read time (the paper's central mechanism).
    assert!(
        snap.get("ts.stamps.total").unwrap() > 0,
        "reads stamp lazily"
    );
    drop(lazy);

    // Eager: every record stamped at commit, nothing deferred to the PTT.
    let eager_env = Env::new("eager");
    let eager = eager_env.open(TimestampingMode::Eager);
    load(&eager, 30);
    let snap = eager.metrics_snapshot();
    assert_eq!(
        snap.get("ts.ptt_inserts").unwrap(),
        0,
        "eager mode bypasses the PTT"
    );
    assert!(
        snap.get("ts.stamps.eager").unwrap() > 0,
        "eager mode stamps at commit"
    );
}

#[test]
fn show_stats_surfaces_the_registry() {
    let env = Env::new("showstats");
    let db = env.open(TimestampingMode::Lazy);
    load(&db, 10);
    let mut s = Session::new(&db);
    let res = s.execute("SHOW STATS").unwrap();
    assert_eq!(res.columns, vec!["metric", "value"]);
    assert!(!res.rows.is_empty());
    let get = |name: &str| {
        res.rows
            .iter()
            .find(|r| r[0] == Value::Varchar(name.to_string()))
            .unwrap_or_else(|| panic!("SHOW STATS missing {name}"))[1]
            .clone()
    };
    // The rows reflect real activity, not a zeroed registry.
    match get("buffer.fetches") {
        Value::BigInt(n) => assert!(n > 0),
        other => panic!("buffer.fetches not a BIGINT: {other:?}"),
    }
    match get("wal.appends") {
        Value::BigInt(n) => assert!(n > 0),
        other => panic!("wal.appends not a BIGINT: {other:?}"),
    }
    // Histogram-derived rows are present too.
    get("wal.fsync_ns.count");
    get("buffer.hit_rate_pct");
}
