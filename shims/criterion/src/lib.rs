//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `criterion` to this shim. It runs each benchmark
//! closure for a fixed number of samples and prints the mean wall-clock
//! time per iteration — no statistics, plots, or HTML reports.

use std::time::{Duration, Instant};

/// Top-level benchmark driver handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut bencher = Bencher {
            iters_per_sample: 1,
            total_iters: 0,
            total_elapsed: Duration::ZERO,
        };
        // Warm-up sample (not measured), then the measured samples.
        f(&mut bencher);
        bencher.total_iters = 0;
        bencher.total_elapsed = Duration::ZERO;
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mean_ns = if bencher.total_iters == 0 {
            0.0
        } else {
            bencher.total_elapsed.as_nanos() as f64 / bencher.total_iters as f64
        };
        println!(
            "{}/{}: {} samples, mean {:.1} ns/iter ({:.3} us)",
            self.name,
            name,
            self.sample_size,
            mean_ns,
            mean_ns / 1e3
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    iters_per_sample: u64,
    total_iters: u64,
    total_elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t0 = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.total_elapsed += t0.elapsed();
        self.total_iters += self.iters_per_sample;
    }
}

/// Identity function that defeats constant folding well enough for a shim.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
