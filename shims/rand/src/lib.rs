//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this shim. It covers exactly the surface
//! the workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over integer and float `Range`s, and `Rng::gen_bool`.
//! The generator is SplitMix64 — deterministic per seed, statistically
//! fine for workload generation, **not** cryptographically secure.

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    /// A uniform f64 in `[0, 1)` using the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// A half-open range that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // Span fits in u64 for every integer type we support.
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                let v = rng.next_u64() % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + rng.next_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let f = rng.gen_range(0.25..1.25);
            assert!((0.25..1.25).contains(&f));
            let u = rng.gen_range(0..17usize);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_bool_rate_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }
}
