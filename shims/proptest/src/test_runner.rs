//! Test execution: run `cases` generated inputs through the body,
//! panicking (with the input) on the first failure. No shrinking.

use crate::strategy::Strategy;
use crate::TestRng;
use std::fmt;

/// Subset of proptest's configuration that the workspace references.
/// `max_shrink_iters` is accepted for source compatibility but unused
/// (this shim does not shrink).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}

/// A test-body failure (the expansion target of `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError {
            reason: reason.into(),
        }
    }

    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError {
            reason: format!("rejected: {}", reason.into()),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

/// Drives one `proptest!`-defined test.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// Seeded from the test name (FNV-1a), so runs are reproducible;
    /// `PROPTEST_SEED` perturbs the seed for exploratory runs.
    pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                seed ^= v.rotate_left(17);
            }
        }
        TestRunner {
            config,
            rng: TestRng::new(seed),
        }
    }

    pub fn run<S, F>(&mut self, strategy: S, body: F)
    where
        S: Strategy,
        S::Value: fmt::Debug + Clone,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        for case in 0..self.config.cases {
            let value = strategy.generate(&mut self.rng);
            if let Err(e) = body(value.clone()) {
                panic!(
                    "proptest failed at case {case}/{}: {e}\n  input: {value:?}",
                    self.config.cases
                );
            }
        }
    }
}
