//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `proptest` to this shim. It implements the subset
//! the workspace's property tests use — `proptest!` with an optional
//! `proptest_config`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `Strategy` + `prop_map`, `Just`, `any::<T>()`, integer-range and
//! tuple strategies, `collection::vec`, and `[class]{m,n}`-style string
//! patterns. Failing cases are reported with their generated input but
//! are **not shrunk**; case generation is deterministic per test name so
//! CI runs are reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Deterministic SplitMix64 generator used for all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    // `#[test]` is captured by the attribute repetition and re-emitted,
    // which avoids a parse ambiguity between the repetition and a
    // literal `#[test]` matcher.
    (@impl ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            runner.run(($($strat,)+), |($($arg,)+)| {
                $body
                #[allow(unreachable_code)]
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: {:?} == {:?}: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
}
