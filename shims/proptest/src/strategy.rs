//! Value-generation strategies (no shrinking).

use crate::TestRng;
use std::ops::Range;

/// Something that can generate values of `Self::Value` from an RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// `.prop_map()` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between strategies with a common value type
/// (the expansion of `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (weight, strat) in &self.arms {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------

/// Types with a full-range uniform generator.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over the whole domain of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------
// Ranges as strategies
// ---------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

// ---------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

// ---------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------

/// A `&str` is interpreted as a miniature regex-style pattern built from
/// literal characters and `[class]{m,n}` atoms (character classes with
/// `a-z` ranges; quantifiers `{n}` and `{m,n}`). This covers patterns
/// like `"[a-zA-Z0-9 ]{0,30}"`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Atom: character class or literal char.
        let class: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    assert!(lo <= hi, "bad range {lo}-{hi} in pattern {pattern:?}");
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        assert!(!class.is_empty(), "empty class in pattern {pattern:?}");
        // Quantifier: {n} or {m,n}; default exactly once.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse::<usize>().expect("bad quantifier"),
                    hi.trim().parse::<usize>().expect("bad quantifier"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad quantifier {{{min},{max}}}");
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            out.push(class[rng.below(class.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_generates_within_class_and_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = generate_pattern("[a-zA-Z0-9 ]{0,30}", &mut rng);
            assert!(s.chars().count() <= 30);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    #[test]
    fn pattern_literals_and_exact_counts() {
        let mut rng = TestRng::new(4);
        assert_eq!(generate_pattern("abc", &mut rng), "abc");
        let s = generate_pattern("x[01]{4}", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x'));
        assert!(s[1..].chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    fn union_respects_zero_weight_paths() {
        let u = crate::prop_oneof![
            1 => Just(1u8),
            3 => Just(2u8),
        ];
        let mut rng = TestRng::new(9);
        let mut counts = [0usize; 3];
        for _ in 0..400 {
            counts[u.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 40 && counts[2] > counts[1]);
    }
}
