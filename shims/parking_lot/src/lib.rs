//! Minimal, dependency-free stand-in for the `parking_lot` crate, built
//! on `std::sync`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `parking_lot` to this shim. It covers exactly the
//! surface the workspace uses:
//!
//! * `Mutex` / `MutexGuard` with panic-free (poison-recovering) `lock()`
//! * `RwLock` with `read()` / `write()` plus the `arc_lock` owned-guard
//!   API (`RwLock::read_arc`, `RwLock::write_arc`,
//!   `ArcRwLockReadGuard<RawRwLock, T>`, `ArcRwLockWriteGuard<RawRwLock, T>`)
//! * `Condvar` with `wait_for` / `notify_one` / `notify_all`
//!
//! Semantic differences from the real crate (none observable here): no
//! eventual fairness, no inline fast path, and guards are a word larger.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

/// Mutual exclusion primitive; `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // `Option` so `Condvar::wait_for` can hand the std guard to
            // `wait_timeout` and put the returned one back.
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Non-blocking lock attempt; `None` when the mutex is held.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

// ---------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------

/// Result of a timed wait; mirrors parking_lot's `WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable usable with this module's [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wait until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult(result.timed_out())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken during wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

/// Marker type standing in for parking_lot's raw lock; only ever used as
/// the `R` parameter of the arc guard type aliases.
#[derive(Debug)]
pub struct RawRwLock(());

/// Reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Shared lock that owns a clone of the `Arc`, so the guard is
    /// `'static` and can be returned from the function that locked it.
    pub fn read_arc(self: &Arc<Self>) -> ArcRwLockReadGuard<RawRwLock, T> {
        let arc = Arc::clone(self);
        let guard = arc.inner.read().unwrap_or_else(|e| e.into_inner());
        // SAFETY: the guard borrows the RwLock allocation owned by `arc`,
        // which the returned struct keeps alive; the guard field is
        // declared before the Arc so it drops first. Moving the Arc moves
        // only the pointer, not the allocation the guard points into.
        let guard: std::sync::RwLockReadGuard<'static, T> =
            unsafe { std::mem::transmute(guard) };
        ArcRwLockReadGuard {
            guard,
            _arc: arc,
            _raw: PhantomData,
        }
    }

    /// Exclusive variant of [`RwLock::read_arc`].
    pub fn write_arc(self: &Arc<Self>) -> ArcRwLockWriteGuard<RawRwLock, T> {
        let arc = Arc::clone(self);
        let guard = arc.inner.write().unwrap_or_else(|e| e.into_inner());
        // SAFETY: as in `read_arc`.
        let guard: std::sync::RwLockWriteGuard<'static, T> =
            unsafe { std::mem::transmute(guard) };
        ArcRwLockWriteGuard {
            guard,
            _arc: arc,
            _raw: PhantomData,
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Owned shared guard; keeps the lock's `Arc` alive while held.
///
/// Field order matters: `guard` must drop before `_arc`.
pub struct ArcRwLockReadGuard<R, T: 'static> {
    guard: std::sync::RwLockReadGuard<'static, T>,
    _arc: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockReadGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Owned exclusive guard; keeps the lock's `Arc` alive while held.
///
/// Field order matters: `guard` must drop before `_arc`.
pub struct ArcRwLockWriteGuard<R, T: 'static> {
    guard: std::sync::RwLockWriteGuard<'static, T>,
    _arc: Arc<RwLock<T>>,
    _raw: PhantomData<R>,
}

impl<R, T> Deref for ArcRwLockWriteGuard<R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R, T> DerefMut for ArcRwLockWriteGuard<R, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_times_out_and_wakes() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
        // Guard must be usable again after the wait.
        *g = true;
        drop(g);
        assert!(*m.lock());
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_secs(5));
            assert!(!r.timed_out(), "worker never signalled");
        }
        t.join().unwrap();
    }

    #[test]
    fn arc_guards_outlive_the_locking_scope() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let read = {
            let l = Arc::clone(&lock);
            RwLock::read_arc(&l)
        };
        assert_eq!(*read, vec![1, 2, 3]);
        drop(read);
        let mut write = RwLock::write_arc(&lock);
        write.push(4);
        drop(write);
        assert_eq!(lock.read().len(), 4);
    }

    #[test]
    fn rwlock_many_readers() {
        let lock = Arc::new(RwLock::new(0u64));
        let g1 = lock.read();
        let g2 = RwLock::read_arc(&lock);
        assert_eq!(*g1, *g2);
    }
}
