//! Workspace umbrella crate: holds the integration test suite (`tests/`)
//! and the runnable examples (`examples/`). The library itself re-exports
//! the public engine crate for convenience.

pub use immortaldb;
