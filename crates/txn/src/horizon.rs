//! Commit-visibility horizon: the boundary below which every issued
//! commit timestamp is actually *visible* (its transaction entered the
//! VTT/PTT, or aborted).
//!
//! The timestamp authority issues commit timestamps strictly before the
//! commit becomes durable and visible; with group commit the gap between
//! "timestamp issued" and "transaction visible" spans a whole batch
//! fsync. A snapshot taken from `TimestampAuthority::latest()` during
//! that gap could include a timestamp whose versions appear only later —
//! the same key read twice inside one snapshot transaction would change,
//! breaking snapshot isolation. The horizon closes that gap: snapshots
//! are taken at the newest timestamp `t` such that every commit
//! timestamp ≤ `t` has been retired (made visible or abandoned). Nothing
//! at or below the horizon can ever change visibility, because the
//! authority issues timestamps monotonically.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use immortaldb_btree::SplitTimeSource;
use immortaldb_common::Timestamp;

use crate::clock::TimestampAuthority;

#[derive(Default)]
struct HorizonInner {
    /// Issued-but-not-yet-retired commit timestamps, in issue order
    /// (issue order == timestamp order, the authority is monotone).
    in_flight: VecDeque<(Timestamp, bool)>,
    /// Newest timestamp with no older in-flight commit below it.
    stable: Timestamp,
}

/// Tracks in-flight commit timestamps and exposes the stable snapshot
/// boundary. One per engine, shared by all committers.
#[derive(Default)]
pub struct CommitHorizon {
    inner: Mutex<HorizonInner>,
}

impl CommitHorizon {
    pub fn new() -> CommitHorizon {
        CommitHorizon::default()
    }

    /// Issue the next commit timestamp through `authority` and register
    /// it as in-flight, atomically with respect to other issuers (so the
    /// in-flight queue is ordered like the timestamps themselves).
    pub fn issue(&self, authority: &TimestampAuthority) -> Timestamp {
        let mut g = self.inner.lock();
        if g.in_flight.is_empty() {
            // Everything issued before this point is visible; pin the
            // boundary so `snapshot()` stays current while we're the
            // only in-flight commit.
            g.stable = authority.latest();
        }
        let ts = authority.issue_commit_ts();
        g.in_flight.push_back((ts, false));
        ts
    }

    /// Retire `ts`: its transaction is now visible (committed into the
    /// VTT after the group fsync) or abandoned (commit failed and rolled
    /// back). Advances the stable boundary past every leading retired
    /// entry. Unknown timestamps are ignored (idempotent).
    pub fn retire(&self, ts: Timestamp) {
        let mut g = self.inner.lock();
        if let Some(slot) = g.in_flight.iter_mut().find(|(t, _)| *t == ts) {
            slot.1 = true;
        }
        while matches!(g.in_flight.front(), Some((_, true))) {
            let (t, _) = g.in_flight.pop_front().unwrap();
            g.stable = t;
        }
    }

    /// The snapshot timestamp a beginning transaction should read at:
    /// every commit at or below it is visible, and nothing newer can
    /// become visible at or below it later.
    pub fn snapshot(&self, authority: &TimestampAuthority) -> Timestamp {
        let g = self.inner.lock();
        if g.in_flight.is_empty() {
            authority.latest()
        } else {
            g.stable
        }
    }

    /// Number of issued-but-unretired commit timestamps (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.inner.lock().in_flight.len()
    }

    /// Oldest issued-but-unretired commit timestamp, if any. The queue is
    /// issue-ordered, so this is the minimum.
    pub fn min_in_flight(&self) -> Option<Timestamp> {
        self.inner.lock().in_flight.front().map(|(t, _)| *t)
    }

    /// Time-split boundary that no commit timestamp — issued or future —
    /// can undercut: the oldest in-flight commit timestamp, or the
    /// authority's next-timestamp lower bound when the pipeline is empty.
    ///
    /// The two reads must be one atomic sample: checking `min_in_flight`
    /// and *then* consulting the authority leaves a window where a commit
    /// issues its timestamp in between, so the authority's bound lands
    /// *above* that in-flight commit. A time split using such a boundary
    /// keeps the commit's TID-marked versions in the current page (split
    /// case 4) while pushing the page's start time past their eventual
    /// commit timestamp — stranding them from every future AS OF read at
    /// that time. Holding the horizon lock here closes the window, because
    /// `issue` registers new commits under the same lock.
    pub fn safe_split_ts(&self, authority: &TimestampAuthority) -> Timestamp {
        let g = self.inner.lock();
        match g.in_flight.front() {
            Some((t, _)) => *t,
            None => authority.current_split_ts(),
        }
    }
}

/// Split-time source that respects the commit pipeline: a time split must
/// never use a boundary above a commit timestamp that is already issued
/// but not yet visible — that transaction's TID-marked versions stay in
/// the current page (split case 4), and once it becomes visible its
/// timestamp would sit *below* the page's new start, routing snapshot
/// readers between the two into stale history. While commits are in
/// flight the safe boundary is the oldest in-flight timestamp (that
/// transaction's own versions end up exactly at the boundary, which case
/// 3 keeps current); when the pipeline is empty it is the authority's
/// next-timestamp lower bound, which no future commit can undercut.
pub struct HorizonSplitSource {
    authority: Arc<TimestampAuthority>,
    horizon: Arc<CommitHorizon>,
}

impl HorizonSplitSource {
    pub fn new(authority: Arc<TimestampAuthority>, horizon: Arc<CommitHorizon>) -> Self {
        HorizonSplitSource { authority, horizon }
    }

    fn safe_split_ts(&self) -> Timestamp {
        self.horizon.safe_split_ts(&self.authority)
    }
}

impl SplitTimeSource for HorizonSplitSource {
    fn current_split_ts(&self) -> Timestamp {
        self.safe_split_ts()
    }

    /// Same value as [`Self::current_split_ts`]: if a page's start forces
    /// the split boundary above this, the split must be skipped, not
    /// bumped.
    fn max_safe_split_ts(&self) -> Timestamp {
        self.safe_split_ts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use immortaldb_common::SimClock;
    use std::sync::Arc;

    fn authority() -> TimestampAuthority {
        TimestampAuthority::new(Arc::new(SimClock::new(1_000)))
    }

    #[test]
    fn snapshot_tracks_latest_when_idle() {
        let auth = authority();
        let h = CommitHorizon::new();
        let t1 = h.issue(&auth);
        h.retire(t1);
        assert_eq!(h.snapshot(&auth), auth.latest());
        assert_eq!(h.in_flight(), 0);
    }

    #[test]
    fn snapshot_excludes_in_flight_commits() {
        let auth = authority();
        let h = CommitHorizon::new();
        let before = auth.latest();
        let t1 = h.issue(&auth);
        let t2 = h.issue(&auth);
        // Neither retired yet: the snapshot must predate both.
        let snap = h.snapshot(&auth);
        assert_eq!(snap, before);
        assert!(snap < t1 && snap < t2);
        // Retiring out of order only advances past the contiguous prefix.
        h.retire(t2);
        assert_eq!(h.snapshot(&auth), before);
        h.retire(t1);
        assert_eq!(h.snapshot(&auth), auth.latest());
    }

    #[test]
    fn split_source_clamps_to_oldest_in_flight_commit() {
        let auth = Arc::new(authority());
        let h = Arc::new(CommitHorizon::new());
        let src = HorizonSplitSource::new(Arc::clone(&auth), Arc::clone(&h));
        // Idle: the bound is the authority's own split time, above latest.
        assert!(src.current_split_ts() > auth.latest());
        let t1 = h.issue(&auth);
        let t2 = h.issue(&auth);
        // In flight: clamped to the oldest issued-but-unretired commit.
        assert_eq!(h.min_in_flight(), Some(t1));
        assert_eq!(src.current_split_ts(), t1);
        assert_eq!(src.max_safe_split_ts(), t1);
        h.retire(t1);
        assert_eq!(src.current_split_ts(), t2);
        h.retire(t2);
        assert_eq!(h.min_in_flight(), None);
        assert!(src.current_split_ts() > t2);
    }

    #[test]
    fn safe_split_ts_pins_to_oldest_in_flight() {
        let auth = authority();
        let h = CommitHorizon::new();
        // Empty pipeline: the authority's bound, above everything issued.
        let t1 = h.issue(&auth);
        h.retire(t1);
        assert!(h.safe_split_ts(&auth) > t1);
        // In flight: clamped to the oldest unretired commit, in one
        // atomic sample (issue shares the lock, so no commit can slip
        // between the emptiness check and the authority read).
        let t2 = h.issue(&auth);
        let t3 = h.issue(&auth);
        assert_eq!(h.safe_split_ts(&auth), t2);
        h.retire(t2);
        assert_eq!(h.safe_split_ts(&auth), t3);
        h.retire(t3);
        assert!(h.safe_split_ts(&auth) > t3);
    }

    #[test]
    fn retire_is_idempotent_and_ignores_unknown() {
        let auth = authority();
        let h = CommitHorizon::new();
        let t1 = h.issue(&auth);
        h.retire(t1);
        h.retire(t1);
        h.retire(Timestamp::new(999_999, 0));
        assert_eq!(h.in_flight(), 0);
    }
}
