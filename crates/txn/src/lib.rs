//! Transaction-time machinery: the paper's §2 contribution.
//!
//! * [`clock`] — the timestamp authority: commit-time timestamps with
//!   20 ms clock resolution extended by a sequence number, issued under a
//!   mutex so timestamp order equals commit (serialization) order.
//! * [`horizon`] — the commit-visibility horizon: tracks issued-but-not-
//!   yet-visible commit timestamps so snapshots never straddle an
//!   in-flight (group-committed) transaction.
//! * [`vtt`] — the volatile timestamp table: TID → timestamp cache with
//!   the reference counts that track how many record versions still await
//!   their timestamp.
//! * [`ptt`] — the persistent timestamp table: a B-tree table keyed by
//!   TID (ascending TIDs keep the active tail clustered), written once per
//!   committing transaction, garbage-collected incrementally.
//! * [`resolver`] — the [`immortaldb_storage::TimestampResolver`]
//!   implementation (VTT first, PTT fallback with cache-back) plus the
//!   buffer-pool flush hook and the PTT GC pass.
//! * [`locks`] — a key-level S/X lock manager with wait-for-graph deadlock
//!   detection, backing serializable two-phase locking and snapshot
//!   isolation write locks.

pub mod clock;
pub mod horizon;
pub mod locks;
pub mod ptt;
pub mod resolver;
pub mod vtt;

pub use clock::TimestampAuthority;
pub use horizon::{CommitHorizon, HorizonSplitSource};
pub use locks::{LockManager, LockMode, LockTarget};
pub use ptt::Ptt;
pub use resolver::{PttGc, StampingFlushHook, TxnResolver};
pub use vtt::{TxnState, Vtt};
