//! The persistent timestamp table (PTT, §2.2).
//!
//! A disk table `(TID, Ttime, SN)` implemented as an unversioned B-tree
//! keyed by big-endian TID — TIDs ascend, so the active entries cluster at
//! the tail and lookups stay fast even when crash-orphaned entries
//! accumulate at the front. The single PTT insert at commit is the whole
//! price of lazy timestamping; it is logged inside the committing
//! transaction (so a pre-commit crash rolls it back with everything else).

use std::sync::Arc;

use immortaldb_btree::{BTree, SplitTimeSource};
use immortaldb_common::codec::{key_from_u64, u64_from_key, Reader, Writer};
use immortaldb_common::{Error, Lsn, Result, Tid, Timestamp, TreeId, NULL_LSN};
use immortaldb_storage::buffer::BufferPool;
use immortaldb_storage::wal::Wal;

/// The persistent timestamp table.
pub struct Ptt {
    tree: Arc<BTree>,
}

fn encode_ts(ts: Timestamp) -> Vec<u8> {
    let mut w = Writer::with_capacity(12);
    w.u64(ts.ttime).u32(ts.sn);
    w.finish()
}

fn decode_ts(data: &[u8]) -> Result<Timestamp> {
    let mut r = Reader::new(data);
    let ts = Timestamp::new(r.u64()?, r.u32()?);
    r.expect_end()?;
    Ok(ts)
}

impl Ptt {
    /// Create the PTT in a fresh database.
    pub fn create(
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        split_time: Arc<dyn SplitTimeSource>,
    ) -> Result<Ptt> {
        Ok(Ptt {
            tree: Arc::new(BTree::create(pool, wal, TreeId::PTT, false, split_time)?),
        })
    }

    /// Open the PTT of an existing database.
    pub fn open(
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        split_time: Arc<dyn SplitTimeSource>,
    ) -> Result<Ptt> {
        Ok(Ptt {
            tree: Arc::new(BTree::open(pool, wal, TreeId::PTT, false, split_time)?),
        })
    }

    /// The underlying tree handle (shared with the engine's tree registry
    /// so logical undo can locate PTT leaves — there must be exactly one
    /// `BTree` handle per tree).
    pub fn tree(&self) -> &Arc<BTree> {
        &self.tree
    }

    /// Insert the committing transaction's `(TID → timestamp)` mapping,
    /// logged under the transaction itself (stage III). Returns the new
    /// last LSN for the transaction's backchain.
    pub fn insert(&self, tid: Tid, ts: Timestamp, prev_lsn: Lsn) -> Result<Lsn> {
        self.tree
            .u_insert(tid, prev_lsn, &key_from_u64(tid.0), &encode_ts(ts))
    }

    /// Look up a transaction's timestamp (stage IV fallback on VTT miss).
    pub fn lookup(&self, tid: Tid) -> Result<Option<Timestamp>> {
        match self.tree.u_get(&key_from_u64(tid.0))? {
            Some(data) => Ok(Some(decode_ts(&data)?)),
            None => Ok(None),
        }
    }

    /// Garbage-collect a completed transaction's entry (redo-only system
    /// action; stamping durability was established before this is called).
    pub fn delete(&self, tid: Tid) -> Result<()> {
        match self
            .tree
            .u_delete(Tid::SYSTEM, NULL_LSN, &key_from_u64(tid.0))
        {
            Ok(_) => Ok(()),
            // Already gone (e.g. repeated GC pass): idempotent.
            Err(Error::KeyNotFound) => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Number of live entries (drives the PTT-growth experiment).
    pub fn len(&self) -> Result<usize> {
        self.tree.u_count()
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// All entries, ascending by TID (diagnostics / tests).
    pub fn entries(&self) -> Result<Vec<(Tid, Timestamp)>> {
        self.tree
            .u_scan()?
            .into_iter()
            .map(|item| Ok((Tid(u64_from_key(&item.key)?), decode_ts(&item.data)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use immortaldb_common::Timestamp;
    use immortaldb_storage::disk::DiskManager;
    use std::path::PathBuf;

    struct FixedSplit;
    impl SplitTimeSource for FixedSplit {
        fn current_split_ts(&self) -> Timestamp {
            Timestamp::MAX
        }
    }

    fn env(name: &str) -> (Arc<BufferPool>, Arc<Wal>, PathBuf, PathBuf) {
        let mut db = std::env::temp_dir();
        db.push(format!("immortal-ptt-{name}-{}.db", std::process::id()));
        let mut wal_path = std::env::temp_dir();
        wal_path.push(format!("immortal-ptt-{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wal_path);
        let (disk, _) = DiskManager::open(&db).unwrap();
        let wal = Arc::new(Wal::open(&wal_path).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 64));
        (pool, wal, db, wal_path)
    }

    fn ts(t: u64, sn: u32) -> Timestamp {
        Timestamp::new(t * 20, sn)
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        let (pool, wal, db, wp) = env("roundtrip");
        let ptt = Ptt::create(pool, wal, Arc::new(FixedSplit)).unwrap();
        ptt.insert(Tid(10), ts(5, 3), NULL_LSN).unwrap();
        ptt.insert(Tid(11), ts(5, 4), NULL_LSN).unwrap();
        assert_eq!(ptt.lookup(Tid(10)).unwrap(), Some(ts(5, 3)));
        assert_eq!(ptt.lookup(Tid(99)).unwrap(), None);
        assert_eq!(ptt.len().unwrap(), 2);
        ptt.delete(Tid(10)).unwrap();
        assert_eq!(ptt.lookup(Tid(10)).unwrap(), None);
        assert_eq!(ptt.len().unwrap(), 1);
        // Idempotent delete.
        ptt.delete(Tid(10)).unwrap();
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wp);
    }

    #[test]
    fn entries_ascend_by_tid() {
        let (pool, wal, db, wp) = env("ascend");
        let ptt = Ptt::create(pool, wal, Arc::new(FixedSplit)).unwrap();
        for tid in [5u64, 1, 9, 3, 7] {
            ptt.insert(Tid(tid), ts(tid, 0), NULL_LSN).unwrap();
        }
        let entries = ptt.entries().unwrap();
        let tids: Vec<u64> = entries.iter().map(|(t, _)| t.0).collect();
        assert_eq!(tids, vec![1, 3, 5, 7, 9]);
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wp);
    }

    #[test]
    fn scales_past_one_page() {
        let (pool, wal, db, wp) = env("scale");
        let ptt = Ptt::create(pool, wal, Arc::new(FixedSplit)).unwrap();
        for tid in 1..=2000u64 {
            ptt.insert(Tid(tid), ts(tid, 0), NULL_LSN).unwrap();
        }
        assert_eq!(ptt.len().unwrap(), 2000);
        assert_eq!(ptt.lookup(Tid(1500)).unwrap(), Some(ts(1500, 0)));
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wp);
    }
}
