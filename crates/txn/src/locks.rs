//! Multi-granularity lock manager with wait-for-graph deadlock detection.
//!
//! Two granularities: a table (tree) and a key within it. Serializable
//! transactions use two-phase locking — IS + S(key) on point reads,
//! IX + X(key) on writes, S(table) on scans (phantom protection);
//! snapshot-isolation transactions take IX + X(key) on writes only, reads
//! go to versions. Locks are held to transaction end.
//!
//! A blocked request first checks the wait-for graph for a cycle (the
//! requester aborts as the victim) and otherwise waits with a timeout
//! backstop.
//!
//! The lock table is split into [`LOCK_SHARDS`] independently-latched
//! shards (fibonacci-hashed by target) so concurrent transactions
//! touching different keys do not serialize on one mutex; contended
//! shard acquisitions are counted in `locks.shard_conflicts`. Deadlock
//! detection is the one cross-shard operation: the would-be waiter
//! releases its shard, takes every shard in index order, and walks the
//! combined wait-for graph.

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use immortaldb_common::{Error, Result, Tid, TreeId};
use immortaldb_obs::MetricsRegistry;

/// Lock modes with the standard multi-granularity compatibility matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    /// Intention shared (table level, under point reads).
    IntentionShared,
    /// Intention exclusive (table level, under writes).
    IntentionExclusive,
    /// Shared.
    Shared,
    /// Exclusive.
    Exclusive,
}

impl LockMode {
    /// Standard compatibility: IS/IS, IS/IX, IS/S yes; IX/IX yes; S/S yes;
    /// everything with X no; S/IX no.
    pub fn compatible(self, other: LockMode) -> bool {
        use LockMode::*;
        !matches!(
            (self, other),
            (Exclusive, _)
                | (_, Exclusive)
                | (Shared, IntentionExclusive)
                | (IntentionExclusive, Shared)
        )
    }
}

/// What a lock names: a whole table or one key in it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LockTarget {
    Table(TreeId),
    Key(TreeId, Vec<u8>),
}

#[derive(Default)]
struct Granted {
    /// Modes held per transaction (a transaction may hold several).
    holders: HashMap<Tid, HashSet<LockMode>>,
}

impl Granted {
    fn is_free(&self) -> bool {
        self.holders.is_empty()
    }

    fn compatible(&self, tid: Tid, mode: LockMode) -> bool {
        self.holders
            .iter()
            .filter(|(t, _)| **t != tid)
            .all(|(_, modes)| modes.iter().all(|m| m.compatible(mode)))
    }

    fn grant(&mut self, tid: Tid, mode: LockMode) {
        self.holders.entry(tid).or_default().insert(mode);
    }

    fn blockers(&self, tid: Tid, mode: LockMode) -> Vec<Tid> {
        self.holders
            .iter()
            .filter(|(t, modes)| **t != tid && modes.iter().any(|m| !m.compatible(mode)))
            .map(|(t, _)| *t)
            .collect()
    }
}

#[derive(Default)]
struct LockTable {
    granted: HashMap<LockTarget, Granted>,
    /// What each blocked transaction is waiting for.
    waiting: HashMap<Tid, (LockTarget, LockMode)>,
    /// Targets held per transaction (for release-all).
    held: HashMap<Tid, HashSet<LockTarget>>,
}

/// Number of lock-table shards (power of two).
pub const LOCK_SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    table: Mutex<LockTable>,
    cond: Condvar,
}

/// The lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    timeout: Duration,
    metrics: MetricsRegistry,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(5))
    }
}

impl LockManager {
    /// Manager with a private metrics registry (tests, standalone use).
    pub fn new(timeout: Duration) -> LockManager {
        Self::with_metrics(timeout, MetricsRegistry::new())
    }

    /// Manager recording into a shared engine-wide registry.
    pub fn with_metrics(timeout: Duration, metrics: MetricsRegistry) -> LockManager {
        LockManager {
            shards: (0..LOCK_SHARDS).map(|_| Shard::default()).collect(),
            timeout,
            metrics,
        }
    }

    /// Shard index of a target: fibonacci-spread hash, top bits.
    fn shard_of(target: &LockTarget) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        target.hash(&mut h);
        (h.finish().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (LOCK_SHARDS - 1)
    }

    /// Walk the combined wait-for graph for a cycle through `tid`. Takes
    /// every shard in index order (the caller must hold none) so the
    /// graph is a consistent snapshot even when the cycle spans shards.
    fn detect_deadlock(&self, tid: Tid) -> bool {
        let guards: Vec<_> = self.shards.iter().map(|s| s.table.lock()).collect();
        let Some((target, mode)) = guards.iter().find_map(|g| g.waiting.get(&tid)) else {
            return false;
        };
        let blockers = |t: Tid, target: &LockTarget, mode: LockMode| -> Vec<Tid> {
            guards[Self::shard_of(target)]
                .granted
                .get(target)
                .map(|g| g.blockers(t, mode))
                .unwrap_or_default()
        };
        let mut stack = blockers(tid, target, *mode);
        let mut seen: HashSet<Tid> = HashSet::new();
        while let Some(t) = stack.pop() {
            if t == tid {
                return true;
            }
            if !seen.insert(t) {
                continue;
            }
            if let Some((wt, wm)) = guards.iter().find_map(|g| g.waiting.get(&t)) {
                stack.extend(blockers(t, wt, *wm));
            }
        }
        false
    }

    /// Acquire `mode` on `target` for `tid`, blocking if necessary.
    /// Returns [`Error::Deadlock`] (requester as victim) on a wait-for
    /// cycle or timeout.
    pub fn lock(&self, tid: Tid, target: LockTarget, mode: LockMode) -> Result<()> {
        let mut wait_start: Option<Instant> = None;
        let observe_wait = |start: Option<Instant>| {
            if let Some(t0) = start {
                self.metrics
                    .locks
                    .wait_ns
                    .observe(t0.elapsed().as_nanos() as u64);
            }
        };
        let shard = &self.shards[Self::shard_of(&target)];
        let mut table = match shard.table.try_lock() {
            Some(g) => g,
            None => {
                self.metrics.locks.shard_conflicts.inc();
                shard.table.lock()
            }
        };
        loop {
            let granted = table.granted.entry(target.clone()).or_default();
            if granted.compatible(tid, mode) {
                granted.grant(tid, mode);
                table.waiting.remove(&tid);
                table.held.entry(tid).or_default().insert(target);
                match mode {
                    LockMode::IntentionShared => self.metrics.locks.acquired_is.inc(),
                    LockMode::IntentionExclusive => self.metrics.locks.acquired_ix.inc(),
                    LockMode::Shared => self.metrics.locks.acquired_s.inc(),
                    LockMode::Exclusive => self.metrics.locks.acquired_x.inc(),
                }
                observe_wait(wait_start);
                return Ok(());
            }
            // Blocked. Publish the wait edge, then detect with the shard
            // released (detection takes every shard in index order).
            table.waiting.insert(tid, (target.clone(), mode));
            drop(table);
            if self.detect_deadlock(tid) {
                shard.table.lock().waiting.remove(&tid);
                self.metrics.locks.deadlocks.inc();
                observe_wait(wait_start);
                return Err(Error::Deadlock(tid));
            }
            table = shard.table.lock();
            // The holder may have released while we were detecting — the
            // loop head re-checks under the re-taken shard latch before
            // the condvar wait, so the wakeup cannot be lost.
            if table
                .granted
                .get(&target)
                .is_none_or(|g| g.compatible(tid, mode))
            {
                continue;
            }
            if wait_start.is_none() {
                wait_start = Some(Instant::now());
                self.metrics.locks.waits.inc();
            }
            let timed_out = shard.cond.wait_for(&mut table, self.timeout).timed_out();
            if timed_out {
                table.waiting.remove(&tid);
                self.metrics.locks.timeouts.inc();
                observe_wait(wait_start);
                return Err(Error::Deadlock(tid));
            }
        }
    }

    /// IS(table) + S(key): serializable point read.
    pub fn lock_read(&self, tid: Tid, tree: TreeId, key: &[u8]) -> Result<()> {
        self.lock(tid, LockTarget::Table(tree), LockMode::IntentionShared)?;
        self.lock(tid, LockTarget::Key(tree, key.to_vec()), LockMode::Shared)
    }

    /// IX(table) + X(key): any write.
    pub fn lock_write(&self, tid: Tid, tree: TreeId, key: &[u8]) -> Result<()> {
        self.lock(tid, LockTarget::Table(tree), LockMode::IntentionExclusive)?;
        self.lock(
            tid,
            LockTarget::Key(tree, key.to_vec()),
            LockMode::Exclusive,
        )
    }

    /// S(table): serializable scan (phantom protection).
    pub fn lock_scan(&self, tid: Tid, tree: TreeId) -> Result<()> {
        self.lock(tid, LockTarget::Table(tree), LockMode::Shared)
    }

    /// Release every lock of `tid` and wake waiters (all shards: a
    /// transaction's locks spread across them).
    pub fn release_all(&self, tid: Tid) {
        for shard in &self.shards {
            let mut table = shard.table.lock();
            if let Some(targets) = table.held.remove(&tid) {
                for target in targets {
                    if let Some(g) = table.granted.get_mut(&target) {
                        g.holders.remove(&tid);
                        if g.is_free() {
                            table.granted.remove(&target);
                        }
                    }
                }
            }
            table.waiting.remove(&tid);
            drop(table);
            shard.cond.notify_all();
        }
    }

    /// Number of targets currently locked (tests/metrics).
    pub fn locked_targets(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.table.lock().granted.len())
            .sum()
    }

    /// Number of lock-table shards (diagnostics).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

/// Shared handle type used across the engine.
pub type SharedLockManager = Arc<LockManager>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    fn t(id: u64) -> Tid {
        Tid(id)
    }

    const TREE: TreeId = TreeId(42);

    fn key(k: &[u8]) -> LockTarget {
        LockTarget::Key(TREE, k.to_vec())
    }

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(IntentionShared.compatible(IntentionExclusive));
        assert!(IntentionExclusive.compatible(IntentionExclusive));
        assert!(IntentionShared.compatible(Shared));
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(IntentionExclusive));
        assert!(!Exclusive.compatible(IntentionShared));
        assert!(!Exclusive.compatible(Exclusive));
        assert!(!Shared.compatible(Exclusive));
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.lock(t(1), key(b"k"), LockMode::Shared).unwrap();
        lm.lock(t(2), key(b"k"), LockMode::Shared).unwrap();
        assert_eq!(lm.locked_targets(), 1);
        lm.release_all(t(1));
        lm.release_all(t(2));
        assert_eq!(lm.locked_targets(), 0);
    }

    #[test]
    fn writers_do_not_block_each_other_at_table_level() {
        let lm = LockManager::default();
        lm.lock_write(t(1), TREE, b"a").unwrap();
        lm.lock_write(t(2), TREE, b"b").unwrap(); // IX+IX compatible
        lm.release_all(t(1));
        lm.release_all(t(2));
    }

    #[test]
    fn scan_blocks_writers_and_vice_versa() {
        let lm = Arc::new(LockManager::new(Duration::from_millis(80)));
        lm.lock_scan(t(1), TREE).unwrap();
        // IX on the table is incompatible with the scan's S.
        assert!(matches!(
            lm.lock_write(t(2), TREE, b"k"),
            Err(Error::Deadlock(_))
        ));
        lm.release_all(t(1));
        lm.release_all(t(2));
        // And the other direction.
        lm.lock_write(t(3), TREE, b"k").unwrap();
        assert!(matches!(lm.lock_scan(t(4), TREE), Err(Error::Deadlock(_))));
        lm.release_all(t(3));
        lm.release_all(t(4));
    }

    #[test]
    fn point_read_coexists_with_writer_on_other_key() {
        let lm = LockManager::default();
        lm.lock_write(t(1), TREE, b"a").unwrap();
        lm.lock_read(t(2), TREE, b"b").unwrap(); // IS+IX at table, keys differ
        lm.release_all(t(1));
        lm.release_all(t(2));
    }

    #[test]
    fn exclusive_excludes_and_releases() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        lm.lock(t(1), key(b"k"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let acquired = Arc::new(AtomicBool::new(false));
        let acq2 = Arc::clone(&acquired);
        let h = thread::spawn(move || {
            lm2.lock(t(2), key(b"k"), LockMode::Exclusive).unwrap();
            acq2.store(true, Ordering::SeqCst);
            lm2.release_all(t(2));
        });
        thread::sleep(Duration::from_millis(50));
        assert!(!acquired.load(Ordering::SeqCst), "must block while held");
        lm.release_all(t(1));
        h.join().unwrap();
        assert!(acquired.load(Ordering::SeqCst));
    }

    #[test]
    fn reentrant_and_upgrade() {
        let lm = LockManager::default();
        lm.lock(t(1), key(b"k"), LockMode::Shared).unwrap();
        lm.lock(t(1), key(b"k"), LockMode::Shared).unwrap();
        lm.lock(t(1), key(b"k"), LockMode::Exclusive).unwrap();
        lm.lock(t(1), key(b"k"), LockMode::Shared).unwrap();
        lm.release_all(t(1));
        assert_eq!(lm.locked_targets(), 0);
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        lm.lock(t(1), key(b"a"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let h = thread::spawn(move || {
            lm2.lock(t(2), key(b"b"), LockMode::Exclusive).unwrap();
            let r = lm2.lock(t(2), key(b"a"), LockMode::Exclusive);
            lm2.release_all(t(2));
            r
        });
        thread::sleep(Duration::from_millis(100));
        let r1 = lm.lock(t(1), key(b"b"), LockMode::Exclusive);
        lm.release_all(t(1));
        let r2 = h.join().unwrap();
        let deadlocks =
            matches!(r1, Err(Error::Deadlock(_))) || matches!(r2, Err(Error::Deadlock(_)));
        assert!(deadlocks, "one transaction must be chosen as victim");
    }

    #[test]
    fn timeout_backstop() {
        let lm = Arc::new(LockManager::new(Duration::from_millis(80)));
        lm.lock(t(1), key(b"k"), LockMode::Exclusive).unwrap();
        let r = lm.lock(t(2), key(b"k"), LockMode::Exclusive);
        assert!(matches!(r, Err(Error::Deadlock(_))));
        lm.release_all(t(1));
    }

    #[test]
    fn shards_spread_targets_and_release_visits_all() {
        let lm = LockManager::default();
        for i in 0..64u32 {
            let k = format!("k{i}");
            lm.lock(t(1), key(k.as_bytes()), LockMode::Shared).unwrap();
        }
        assert_eq!(lm.locked_targets(), 64);
        let used: HashSet<usize> = (0..64u32)
            .map(|i| LockManager::shard_of(&key(format!("k{i}").as_bytes())))
            .collect();
        assert!(used.len() > 1, "hash must spread targets across shards");
        lm.release_all(t(1));
        assert_eq!(lm.locked_targets(), 0);
    }

    #[test]
    fn cross_shard_deadlock_detected() {
        // Force the two keys onto different shards so the wait-for cycle
        // spans them.
        let a = b"a".to_vec();
        let b = (0..1000u32)
            .map(|i| format!("x{i}").into_bytes())
            .find(|k| {
                LockManager::shard_of(&LockTarget::Key(TREE, k.clone()))
                    != LockManager::shard_of(&LockTarget::Key(TREE, a.clone()))
            })
            .expect("some key must hash to a different shard");
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        lm.lock(t(1), key(&a), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let (a2, b2) = (a.clone(), b.clone());
        let h = thread::spawn(move || {
            lm2.lock(t(2), key(&b2), LockMode::Exclusive).unwrap();
            let r = lm2.lock(t(2), key(&a2), LockMode::Exclusive);
            lm2.release_all(t(2));
            r
        });
        thread::sleep(Duration::from_millis(100));
        let r1 = lm.lock(t(1), key(&b), LockMode::Exclusive);
        lm.release_all(t(1));
        let r2 = h.join().unwrap();
        let deadlocks =
            matches!(r1, Err(Error::Deadlock(_))) || matches!(r2, Err(Error::Deadlock(_)));
        assert!(deadlocks, "cross-shard cycle must be detected");
    }

    #[test]
    fn different_targets_do_not_conflict() {
        let lm = LockManager::default();
        lm.lock(t(1), key(b"a"), LockMode::Exclusive).unwrap();
        lm.lock(t(2), key(b"b"), LockMode::Exclusive).unwrap();
        lm.lock(
            t(3),
            LockTarget::Key(TreeId(7), b"a".to_vec()),
            LockMode::Exclusive,
        )
        .unwrap();
        lm.release_all(t(1));
        lm.release_all(t(2));
        lm.release_all(t(3));
    }
}
