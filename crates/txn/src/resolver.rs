//! The timestamp resolver (stage IV of the protocol), the buffer-pool
//! flush hook, and incremental PTT garbage collection.
//!
//! Resolution order: VTT (fast, recent transactions) → PTT (disk lookup,
//! result cached back into the VTT with an *undefined* refcount so its
//! PTT entry survives — we can no longer tell when its stamping is done).

use std::sync::Arc;

use immortaldb_common::{Result, Tid, Timestamp};
use immortaldb_obs::MetricsRegistry;
use immortaldb_storage::buffer::FlushHook;
use immortaldb_storage::page::Page;
use immortaldb_storage::version;
use immortaldb_storage::wal::Wal;
use immortaldb_storage::TimestampResolver;

use crate::ptt::Ptt;
use crate::vtt::Vtt;

/// Resolver over VTT + PTT. Every storage-layer stamping trigger flows
/// through this.
pub struct TxnResolver {
    vtt: Arc<Vtt>,
    ptt: Arc<Ptt>,
    wal: Arc<Wal>,
    /// Shared with the WAL (and therefore the whole engine when the WAL
    /// was built with `Wal::with_metrics`).
    metrics: MetricsRegistry,
}

impl TxnResolver {
    pub fn new(vtt: Arc<Vtt>, ptt: Arc<Ptt>, wal: Arc<Wal>) -> TxnResolver {
        let metrics = wal.metrics().clone();
        TxnResolver {
            vtt,
            ptt,
            wal,
            metrics,
        }
    }

    pub fn vtt(&self) -> &Arc<Vtt> {
        &self.vtt
    }

    pub fn ptt(&self) -> &Arc<Ptt> {
        &self.ptt
    }

    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }
}

impl TimestampResolver for TxnResolver {
    fn resolve(&self, tid: Tid) -> Option<Timestamp> {
        match self.vtt.resolve(tid) {
            Some(state) => {
                self.metrics.ts.vtt_hits.inc();
                state // known: committed ts or active/aborted
            }
            None => {
                // VTT miss: consult the persistent table.
                self.metrics.ts.vtt_misses.inc();
                self.metrics.ts.ptt_lookups.inc();
                match self.ptt.lookup(tid) {
                    Ok(Some(ts)) => {
                        self.vtt.cache_from_ptt(tid, ts);
                        Some(ts)
                    }
                    Ok(None) => None,
                    // A lookup failure must not corrupt visibility: treat
                    // as unresolved (version stays TID-marked).
                    Err(_) => None,
                }
            }
        }
    }

    fn note_stamped(&self, tid: Tid, n: u32) {
        // A PTT-cached entry means the transaction's volatile state was
        // lost in a crash: these stamps are post-crash timestamp repair.
        if self.vtt.is_ptt_cached(tid) {
            self.metrics.recovery.versions_restamped.add(n as u64);
        }
        self.vtt.note_stamped(tid, n as u64, self.wal.end_lsn());
    }
}

/// Buffer-pool flush hook: "just before a cached page is flushed to disk,
/// we check whether the page contains any non-timestamped records from
/// committed transactions. If so, we timestamp them." (§2.2)
pub struct StampingFlushHook {
    resolver: Arc<TxnResolver>,
}

impl StampingFlushHook {
    pub fn new(resolver: Arc<TxnResolver>) -> StampingFlushHook {
        StampingFlushHook { resolver }
    }
}

impl FlushHook for StampingFlushHook {
    fn before_flush(&self, page: &mut Page) {
        if !page.is_versioned() {
            return;
        }
        if !matches!(
            page.page_type(),
            Ok(immortaldb_storage::page::PageType::Leaf)
        ) {
            return;
        }
        for (tid, n) in version::stamp_committed(page, self.resolver.as_ref()) {
            self.resolver.metrics().ts.stamps_flush.add(n as u64);
            self.resolver.note_stamped(tid, n);
        }
    }
}

/// Incremental PTT garbage collection (§2.2): after a checkpoint returns
/// the redo-scan-start LSN, delete the PTT entry of every transaction
/// whose timestamping completed *and* whose stamped pages are provably on
/// disk. Snapshot-transaction VTT entries are dropped as soon as their
/// count hits zero.
pub struct PttGc {
    vtt: Arc<Vtt>,
    ptt: Arc<Ptt>,
}

impl PttGc {
    pub fn new(vtt: Arc<Vtt>, ptt: Arc<Ptt>) -> PttGc {
        PttGc { vtt, ptt }
    }

    /// Run one GC pass; returns how many PTT entries were reclaimed.
    pub fn collect(&self, redo_scan_start: immortaldb_common::Lsn) -> Result<usize> {
        let mut reclaimed = 0usize;
        for (tid, in_ptt) in self.vtt.gc_candidates(redo_scan_start) {
            if in_ptt {
                self.ptt.delete(tid)?;
                reclaimed += 1;
            }
            self.vtt.remove(tid);
        }
        self.vtt.drop_completed_snapshot_entries();
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use immortaldb_btree::SplitTimeSource;
    use immortaldb_common::{Lsn, NULL_LSN};
    use immortaldb_storage::buffer::BufferPool;
    use immortaldb_storage::disk::DiskManager;
    use std::path::PathBuf;

    struct FixedSplit;
    impl SplitTimeSource for FixedSplit {
        fn current_split_ts(&self) -> Timestamp {
            Timestamp::MAX
        }
    }

    struct Env {
        pool: Arc<BufferPool>,
        wal: Arc<Wal>,
        vtt: Arc<Vtt>,
        ptt: Arc<Ptt>,
        db: PathBuf,
        wp: PathBuf,
    }

    fn env(name: &str) -> Env {
        let mut db = std::env::temp_dir();
        db.push(format!("immortal-res-{name}-{}.db", std::process::id()));
        let mut wp = std::env::temp_dir();
        wp.push(format!("immortal-res-{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wp);
        let (disk, _) = DiskManager::open(&db).unwrap();
        let wal = Arc::new(Wal::open(&wp).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 64));
        let vtt = Arc::new(Vtt::new());
        let ptt = Arc::new(
            Ptt::create(Arc::clone(&pool), Arc::clone(&wal), Arc::new(FixedSplit)).unwrap(),
        );
        Env {
            pool,
            wal,
            vtt,
            ptt,
            db,
            wp,
        }
    }

    impl Drop for Env {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.db);
            let _ = std::fs::remove_file(&self.wp);
        }
    }

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t * 20, 0)
    }

    #[test]
    fn resolve_prefers_vtt_then_falls_back_to_ptt() {
        let e = env("fallback");
        let r = TxnResolver::new(Arc::clone(&e.vtt), Arc::clone(&e.ptt), Arc::clone(&e.wal));
        // Unknown everywhere.
        assert_eq!(r.resolve(Tid(1)), None);
        // In PTT only (simulating post-crash state: VTT lost).
        e.ptt.insert(Tid(2), ts(7), NULL_LSN).unwrap();
        assert_eq!(r.resolve(Tid(2)), Some(ts(7)));
        // Now cached in the VTT.
        assert_eq!(e.vtt.resolve(Tid(2)), Some(Some(ts(7))));
        // Active transactions resolve to None even if a (stale) PTT probe
        // would be attempted.
        e.vtt.begin(Tid(3));
        assert_eq!(r.resolve(Tid(3)), None);
        let _ = e.pool; // keep alive
    }

    #[test]
    fn gc_reclaims_only_durably_stamped() {
        let e = env("gc");
        let r = TxnResolver::new(Arc::clone(&e.vtt), Arc::clone(&e.ptt), Arc::clone(&e.wal));
        // Txn 1: committed, 2 versions pending.
        e.vtt.begin(Tid(1));
        e.vtt.add_pending(Tid(1), 2);
        e.ptt.insert(Tid(1), ts(5), NULL_LSN).unwrap();
        e.vtt.commit(Tid(1), ts(5), true, e.wal.end_lsn());
        // Stamp both (simulating triggers).
        r.note_stamped(Tid(1), 2);
        let stable = e.wal.end_lsn();
        let gc = PttGc::new(Arc::clone(&e.vtt), Arc::clone(&e.ptt));
        // Redo scan start before the stable point: nothing reclaimable.
        assert_eq!(gc.collect(Lsn(stable.0 - 1)).unwrap(), 0);
        assert_eq!(e.ptt.len().unwrap(), 1);
        // Past it: reclaimed.
        assert_eq!(gc.collect(Lsn(stable.0 + 1)).unwrap(), 1);
        assert_eq!(e.ptt.len().unwrap(), 0);
        assert_eq!(e.vtt.state(Tid(1)), None);
    }

    #[test]
    fn gc_spares_ptt_cached_entries() {
        let e = env("gcspare");
        // Entry cached back from the PTT: refcount unknown -> immortal in
        // the PTT until a vacuum-style sweep (not this GC).
        e.ptt.insert(Tid(9), ts(4), NULL_LSN).unwrap();
        e.vtt.cache_from_ptt(Tid(9), ts(4));
        let gc = PttGc::new(Arc::clone(&e.vtt), Arc::clone(&e.ptt));
        assert_eq!(gc.collect(Lsn(u64::MAX)).unwrap(), 0);
        assert_eq!(e.ptt.len().unwrap(), 1);
    }

    #[test]
    fn flush_hook_stamps_committed_records() {
        use immortaldb_storage::page::{PageType, FLAG_VERSIONED};
        let e = env("hook");
        let r = Arc::new(TxnResolver::new(
            Arc::clone(&e.vtt),
            Arc::clone(&e.ptt),
            Arc::clone(&e.wal),
        ));
        e.pool
            .set_flush_hook(Arc::new(StampingFlushHook::new(Arc::clone(&r))));
        let frame = e.pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        {
            let mut g = frame.write();
            version::add_version(&mut g, b"k", b"v", false, Tid(5)).unwrap();
        }
        frame.mark_dirty(Lsn(0));
        e.vtt.begin(Tid(5));
        e.vtt.add_pending(Tid(5), 1);
        e.vtt.commit(Tid(5), ts(9), true, e.wal.end_lsn());
        let id = frame.page_id();
        drop(frame);
        e.pool.flush_all().unwrap();
        let p = e.pool.disk().read_page(id).unwrap();
        let off = p.slot(0);
        assert!(!p.rec_is_tid_marked(off));
        assert_eq!(p.rec_timestamp(off), ts(9));
        // Refcount decremented to zero.
        assert_eq!(e.vtt.pending(Tid(5)), Some(0));
    }
}
