//! The volatile timestamp table (VTT, §2.2).
//!
//! An in-memory hash table `TID → (state, RefCount, stable LSN)`. It
//! caches the recent — and hence likely to be used — entries of the
//! persistent table, and carries the *volatile reference counts*: how many
//! record versions of each transaction still hold a TID instead of a
//! timestamp. When a count reaches zero the current end-of-log LSN is
//! recorded; once a checkpoint pushes the redo-scan-start past that LSN,
//! every stamped page is provably on disk and the transaction's PTT entry
//! can be garbage collected — all without ever logging the stamping.

use std::collections::HashMap;

use parking_lot::Mutex;

use immortaldb_common::{Lsn, Tid, Timestamp};

/// Lifecycle state of a transaction as the VTT sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Stage I–III: running; its versions are invisible to others.
    Active,
    /// Committed with this timestamp; TID-marked versions resolve to it.
    Committed(Timestamp),
    /// Rolled back; its versions are being (or have been) popped.
    Aborted,
}

#[derive(Debug, Clone)]
struct VttEntry {
    state: TxnState,
    /// Number of record versions still TID-marked. `None` = "undefined":
    /// the entry was cached back from the PTT after the counter was lost
    /// (e.g. across a crash), so the PTT entry must be kept.
    refcount: Option<u64>,
    /// End-of-log LSN at the moment refcount hit zero.
    stable_lsn: Option<Lsn>,
    /// Whether a PTT entry exists (immortal-table writers only; snapshot
    /// transactions keep their timestamp in the VTT alone).
    in_ptt: bool,
}

/// The volatile timestamp table.
#[derive(Default)]
pub struct Vtt {
    entries: Mutex<HashMap<Tid, VttEntry>>,
}

impl Vtt {
    pub fn new() -> Vtt {
        Vtt::default()
    }

    /// Stage I: transaction begin.
    pub fn begin(&self, tid: Tid) {
        self.entries.lock().insert(
            tid,
            VttEntry {
                state: TxnState::Active,
                refcount: Some(0),
                stable_lsn: None,
                in_ptt: false,
            },
        );
    }

    /// Stage II: a version was marked with the TID.
    pub fn add_pending(&self, tid: Tid, n: u64) {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get_mut(&tid) {
            if let Some(rc) = e.refcount.as_mut() {
                *rc += n;
            }
        }
    }

    /// A version was popped during rollback before it was ever stamped.
    pub fn sub_pending(&self, tid: Tid, n: u64) {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get_mut(&tid) {
            if let Some(rc) = e.refcount.as_mut() {
                *rc = rc.saturating_sub(n);
            }
        }
    }

    /// Stage III: commit. `in_ptt` says whether a persistent entry was
    /// written (immortal tables). If the refcount is already zero (e.g. a
    /// read-only or snapshot transaction), the stable LSN is set at once.
    pub fn commit(&self, tid: Tid, ts: Timestamp, in_ptt: bool, end_lsn: Lsn) {
        let mut entries = self.entries.lock();
        let e = entries.entry(tid).or_insert(VttEntry {
            state: TxnState::Active,
            refcount: Some(0),
            stable_lsn: None,
            in_ptt,
        });
        e.state = TxnState::Committed(ts);
        e.in_ptt = in_ptt;
        if e.refcount == Some(0) {
            e.stable_lsn = Some(end_lsn);
        }
    }

    pub fn abort(&self, tid: Tid) {
        if let Some(e) = self.entries.lock().get_mut(&tid) {
            e.state = TxnState::Aborted;
        }
    }

    /// Remove an aborted transaction's entry once rollback completed.
    pub fn remove(&self, tid: Tid) {
        self.entries.lock().remove(&tid);
    }

    pub fn state(&self, tid: Tid) -> Option<TxnState> {
        self.entries.lock().get(&tid).map(|e| e.state)
    }

    /// Fast-path resolution. `None` = no entry (consult the PTT);
    /// `Some(None)` = known active/aborted (not committed);
    /// `Some(Some(ts))` = committed.
    pub fn resolve(&self, tid: Tid) -> Option<Option<Timestamp>> {
        self.entries.lock().get(&tid).map(|e| match e.state {
            TxnState::Committed(ts) => Some(ts),
            _ => None,
        })
    }

    /// Cache a PTT hit back into the VTT with an *undefined* refcount so
    /// its PTT entry is never garbage collected (we cannot know how many
    /// TID-marked versions remain).
    pub fn cache_from_ptt(&self, tid: Tid, ts: Timestamp) {
        self.entries.lock().entry(tid).or_insert(VttEntry {
            state: TxnState::Committed(ts),
            refcount: None,
            stable_lsn: None,
            in_ptt: true,
        });
    }

    /// Stage IV bookkeeping: `n` versions of `tid` were just stamped.
    /// `end_lsn` is the current end of log, recorded when the count hits
    /// zero.
    pub fn note_stamped(&self, tid: Tid, n: u64, end_lsn: Lsn) {
        let mut entries = self.entries.lock();
        if let Some(e) = entries.get_mut(&tid) {
            if let Some(rc) = e.refcount.as_mut() {
                *rc = rc.saturating_sub(n);
                if *rc == 0 && e.stable_lsn.is_none() {
                    e.stable_lsn = Some(end_lsn);
                }
            }
        }
    }

    /// Transactions whose timestamping is complete *and* provably durable:
    /// refcount zero and stable LSN at or before the redo-scan-start.
    /// (`stable_lsn` is the end-of-log position when the count hit zero —
    /// the LSN the *next* record would get — so equality means stamping
    /// completed before the record at `redo_scan_start` existed, and the
    /// checkpoint that produced that scan-start has flushed the stamped
    /// pages.) Returns `(tid, had PTT entry)` pairs; the caller deletes
    /// the PTT rows and then calls [`Self::remove`].
    pub fn gc_candidates(&self, redo_scan_start: Lsn) -> Vec<(Tid, bool)> {
        self.entries
            .lock()
            .iter()
            .filter(|(_, e)| {
                matches!(e.state, TxnState::Committed(_))
                    && e.refcount == Some(0)
                    && e.stable_lsn.map(|l| l <= redo_scan_start).unwrap_or(false)
            })
            .map(|(tid, e)| (*tid, e.in_ptt))
            .collect()
    }

    /// Snapshot transactions can be dropped as soon as their count hits
    /// zero (no PTT entry, no crash-survival requirement). Returns the
    /// dropped TIDs.
    pub fn drop_completed_snapshot_entries(&self) -> Vec<Tid> {
        let mut entries = self.entries.lock();
        let victims: Vec<Tid> = entries
            .iter()
            .filter(|(_, e)| {
                matches!(e.state, TxnState::Committed(_)) && !e.in_ptt && e.refcount == Some(0)
            })
            .map(|(t, _)| *t)
            .collect();
        for t in &victims {
            entries.remove(t);
        }
        victims
    }

    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Remaining unstamped versions for `tid` (tests / metrics).
    pub fn pending(&self, tid: Tid) -> Option<u64> {
        self.entries.lock().get(&tid).and_then(|e| e.refcount)
    }

    /// Whether `tid`'s entry was cached back from the PTT (undefined
    /// refcount). True exactly for transactions whose volatile state was
    /// lost in a crash — stamping one of their versions is post-crash
    /// timestamp *repair*.
    pub fn is_ptt_cached(&self, tid: Tid) -> bool {
        self.entries
            .lock()
            .get(&tid)
            .map(|e| e.refcount.is_none())
            .unwrap_or(false)
    }
}

impl Vtt {
    /// Test-only: debug dump of one entry.
    #[doc(hidden)]
    pub fn debug_entry(&self, tid: Tid) -> String {
        format!("{:?}", self.entries.lock().get(&tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(t: u64) -> Timestamp {
        Timestamp::new(t * 20, 0)
    }

    #[test]
    fn lifecycle_active_commit_resolve() {
        let vtt = Vtt::new();
        vtt.begin(Tid(1));
        assert_eq!(vtt.resolve(Tid(1)), Some(None)); // known, not committed
        assert_eq!(vtt.resolve(Tid(2)), None); // unknown -> PTT
        vtt.add_pending(Tid(1), 3);
        vtt.commit(Tid(1), ts(5), true, Lsn(100));
        assert_eq!(vtt.resolve(Tid(1)), Some(Some(ts(5))));
        assert_eq!(vtt.pending(Tid(1)), Some(3));
    }

    #[test]
    fn refcount_reaches_zero_records_stable_lsn() {
        let vtt = Vtt::new();
        vtt.begin(Tid(1));
        vtt.add_pending(Tid(1), 2);
        vtt.commit(Tid(1), ts(5), true, Lsn(100));
        vtt.note_stamped(Tid(1), 1, Lsn(200));
        assert!(
            vtt.gc_candidates(Lsn(10_000)).is_empty(),
            "count not yet zero"
        );
        vtt.note_stamped(Tid(1), 1, Lsn(300));
        // Stable at end-of-log 300: GC-able once the redo scan start
        // reaches it (equality = nothing logged since stamping finished).
        assert!(vtt.gc_candidates(Lsn(299)).is_empty());
        assert_eq!(vtt.gc_candidates(Lsn(300)), vec![(Tid(1), true)]);
    }

    #[test]
    fn zero_write_commit_is_immediately_stable() {
        let vtt = Vtt::new();
        vtt.begin(Tid(1));
        vtt.commit(Tid(1), ts(5), true, Lsn(50));
        assert_eq!(vtt.gc_candidates(Lsn(51)), vec![(Tid(1), true)]);
    }

    #[test]
    fn ptt_cached_entries_are_never_gc_candidates() {
        let vtt = Vtt::new();
        vtt.cache_from_ptt(Tid(7), ts(3));
        assert_eq!(vtt.resolve(Tid(7)), Some(Some(ts(3))));
        // Undefined refcount -> never collected.
        vtt.note_stamped(Tid(7), 100, Lsn(1));
        assert!(vtt.gc_candidates(Lsn(u64::MAX)).is_empty());
    }

    #[test]
    fn snapshot_entries_drop_at_zero() {
        let vtt = Vtt::new();
        vtt.begin(Tid(1));
        vtt.add_pending(Tid(1), 1);
        vtt.commit(Tid(1), ts(5), false, Lsn(10)); // snapshot: no PTT
        assert!(vtt.drop_completed_snapshot_entries().is_empty());
        vtt.note_stamped(Tid(1), 1, Lsn(20));
        assert_eq!(vtt.drop_completed_snapshot_entries(), vec![Tid(1)]);
        assert_eq!(vtt.resolve(Tid(1)), None);
    }

    #[test]
    fn abort_state_and_removal() {
        let vtt = Vtt::new();
        vtt.begin(Tid(1));
        vtt.abort(Tid(1));
        assert_eq!(vtt.state(Tid(1)), Some(TxnState::Aborted));
        assert_eq!(vtt.resolve(Tid(1)), Some(None));
        vtt.remove(Tid(1));
        assert_eq!(vtt.state(Tid(1)), None);
    }

    #[test]
    fn rollback_pending_adjustment() {
        let vtt = Vtt::new();
        vtt.begin(Tid(1));
        vtt.add_pending(Tid(1), 5);
        vtt.sub_pending(Tid(1), 2);
        assert_eq!(vtt.pending(Tid(1)), Some(3));
    }
}
