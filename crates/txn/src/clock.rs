//! The timestamp authority (§2.1).
//!
//! Immortal DB chooses a transaction's timestamp **as late as possible**
//! — at commit — so the timestamp can be made consistent with the
//! serialization order that is only known then. The authority serializes
//! issuance under a mutex: the clock time is quantized to 20 ms ticks
//! (the SQL Server date/time resolution) and a 4-byte sequence number
//! distinguishes up to 2^32 transactions per tick, "more than enough for
//! any conceivable transaction processing system".

use std::sync::Arc;

use parking_lot::Mutex;

use immortaldb_btree::SplitTimeSource;
use immortaldb_common::time::{quantize, SN_TID_MARK};
use immortaldb_common::{Clock, Timestamp, TICK_MS};

/// Issues commit timestamps that are strictly monotone and consistent
/// with commit order.
pub struct TimestampAuthority {
    clock: Arc<dyn Clock>,
    last: Mutex<Timestamp>,
}

impl TimestampAuthority {
    pub fn new(clock: Arc<dyn Clock>) -> TimestampAuthority {
        TimestampAuthority {
            clock,
            last: Mutex::new(Timestamp::ZERO),
        }
    }

    /// Restore the high-water mark after a restart (from the meta page)
    /// so new timestamps never collide with pre-crash ones even if the
    /// wall clock regressed.
    pub fn restore(&self, ts: Timestamp) {
        let mut last = self.last.lock();
        if ts > *last {
            *last = ts;
        }
    }

    /// Issue the commit timestamp for a transaction committing now.
    /// Strictly greater than every previously issued timestamp.
    pub fn issue_commit_ts(&self) -> Timestamp {
        let now = quantize(self.clock.now_ms());
        let mut last = self.last.lock();
        let ts = if now > last.ttime {
            Timestamp::new(now, 0)
        } else if last.sn + 1 < SN_TID_MARK {
            Timestamp::new(last.ttime, last.sn + 1)
        } else {
            // Sequence space of the tick exhausted (2^32 commits in 20 ms —
            // unreachable in practice, handled for completeness).
            Timestamp::new(last.ttime + TICK_MS, 0)
        };
        *last = ts;
        ts
    }

    /// The latest issued commit timestamp. A snapshot transaction reads
    /// AS OF this instant: everything committed so far, nothing later.
    pub fn latest(&self) -> Timestamp {
        *self.last.lock()
    }

    /// Raw clock access (for AS OF parsing and experiments).
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }
}

impl SplitTimeSource for TimestampAuthority {
    /// Split time for page time splits: strictly greater than every
    /// *committed* timestamp. In-flight transactions commit later with
    /// larger timestamps, which is consistent with their versions staying
    /// in the current page (case 4 of the split, time range
    /// `[split_ts, ∞)`).
    fn current_split_ts(&self) -> Timestamp {
        let now = quantize(self.clock.now_ms());
        let last = *self.last.lock();
        if now > last.ttime {
            Timestamp::new(now, 0)
        } else {
            Timestamp::new(last.ttime, last.sn + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use immortaldb_common::SimClock;

    #[test]
    fn issues_monotone_within_tick() {
        let clock = Arc::new(SimClock::new(1000));
        let auth = TimestampAuthority::new(clock);
        let a = auth.issue_commit_ts();
        let b = auth.issue_commit_ts();
        let c = auth.issue_commit_ts();
        assert!(a < b && b < c);
        assert_eq!(a.ttime, b.ttime);
        assert_eq!(b.sn, a.sn + 1);
    }

    #[test]
    fn new_tick_resets_sequence() {
        let clock = Arc::new(SimClock::new(1000));
        let auth = TimestampAuthority::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let a = auth.issue_commit_ts();
        clock.advance(TICK_MS);
        let b = auth.issue_commit_ts();
        assert!(b > a);
        assert_eq!(b.sn, 0);
        assert_eq!(b.ttime, a.ttime + TICK_MS);
    }

    #[test]
    fn survives_clock_regression_via_restore() {
        let clock = Arc::new(SimClock::new(10_000));
        let auth = TimestampAuthority::new(Arc::clone(&clock) as Arc<dyn Clock>);
        auth.restore(Timestamp::new(50_000, 7));
        let ts = auth.issue_commit_ts();
        assert!(ts > Timestamp::new(50_000, 7));
        assert_eq!(ts.ttime, 50_000); // stays in the restored tick
    }

    #[test]
    fn split_ts_exceeds_all_commits() {
        let clock = Arc::new(SimClock::new(1000));
        let auth = TimestampAuthority::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let a = auth.issue_commit_ts();
        let split = auth.current_split_ts();
        assert!(split > a);
        // A commit issued after the split is >= split.
        let b = auth.issue_commit_ts();
        assert!(b >= split);
    }

    #[test]
    fn latest_tracks_issue() {
        let clock = Arc::new(SimClock::new(1000));
        let auth = TimestampAuthority::new(clock);
        assert_eq!(auth.latest(), Timestamp::ZERO);
        let a = auth.issue_commit_ts();
        assert_eq!(auth.latest(), a);
    }
}
