//! Ablations for the design choices DESIGN.md §4 calls out.
//!
//! * **A1** eager vs lazy timestamping — the §2.2 argument: eager delays
//!   commit and logs every stamping; lazy pays one PTT write per txn.
//! * **A2** TSB-tree vs page-chain scan for AS OF queries (§7.2): see
//!   [`crate::ablations::tsb_index`].
//! * **A3** storage utilization vs key-split threshold *T* (§3.3's
//!   T·ln 2 claim).
//! * **A4** PTT growth with vs without incremental GC (§2.2).
//! * **A5** snapshot-read cost vs version age (§3.4: recent versions are
//!   found in the current page).

use std::sync::Arc;
use std::time::Instant;

use immortaldb::Value;
use immortaldb_mobgen::Generator;

use crate::harness::{print_table, time, BenchDb, Mode};

// ---------------------------------------------------------------------
// A1: eager vs lazy timestamping
// ---------------------------------------------------------------------

pub struct EagerLazyResult {
    pub txns: u32,
    pub records_per_txn: u32,
    pub lazy_s: f64,
    pub eager_s: f64,
    pub lazy_log_bytes: u64,
    pub eager_log_bytes: u64,
}

pub fn eager_vs_lazy(quick: bool) -> Vec<EagerLazyResult> {
    let txns: u32 = if quick { 1_000 } else { 4_000 };
    [1u32, 8, 32]
        .iter()
        .map(|&records_per_txn| {
            let objects = 500u32;
            let rounds = txns * records_per_txn / objects;
            let events = Generator::events_exact(0xA1, objects, rounds.max(1));

            let run = |mode: Mode| {
                let bench = BenchDb::new("a1", mode);
                let base = bench.db.log_bytes();
                let secs = time(|| {
                    for chunk in events.chunks(records_per_txn as usize) {
                        bench.apply_batch(chunk);
                    }
                });
                (secs, bench.db.log_bytes() - base)
            };
            let (lazy_s, lazy_log_bytes) = run(Mode::Immortal);
            let (eager_s, eager_log_bytes) = run(Mode::ImmortalEager);
            EagerLazyResult {
                txns: events.len() as u32 / records_per_txn,
                records_per_txn,
                lazy_s,
                eager_s,
                lazy_log_bytes,
                eager_log_bytes,
            }
        })
        .collect()
}

pub fn report_eager_vs_lazy(rows: &[EagerLazyResult]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.txns),
                format!("{}", r.records_per_txn),
                format!("{:.3}", r.lazy_s),
                format!("{:.3}", r.eager_s),
                format!("{:.1}", r.lazy_log_bytes as f64 / 1024.0),
                format!("{:.1}", r.eager_log_bytes as f64 / 1024.0),
                format!(
                    "{:+.1}%",
                    (r.eager_log_bytes as f64 / r.lazy_log_bytes as f64 - 1.0) * 100.0
                ),
            ]
        })
        .collect();
    print_table(
        "A1: eager vs lazy timestamping (same workload, per-record stamping \
         logged vs one PTT row per txn)",
        &[
            "txns",
            "rec/txn",
            "lazy (s)",
            "eager (s)",
            "lazy log KiB",
            "eager log KiB",
            "log overhead",
        ],
        &table,
    );
}

// ---------------------------------------------------------------------
// A3: utilization vs split threshold T
// ---------------------------------------------------------------------

pub struct UtilResult {
    pub threshold: f64,
    pub leaves: usize,
    pub slice_utilization: f64,
    pub history_pages: usize,
}

pub fn utilization_vs_threshold(quick: bool) -> Vec<UtilResult> {
    use immortaldb_btree::{BTree, SplitTimeSource};
    use immortaldb_common::{Tid, Timestamp, TreeId, NULL_LSN};
    use immortaldb_storage::buffer::BufferPool;
    use immortaldb_storage::disk::DiskManager;
    use immortaldb_storage::wal::Wal;
    use immortaldb_storage::TimestampResolver;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// Commit registry doubling as resolver + split-time source.
    #[derive(Default)]
    struct SimAuthority {
        committed: Mutex<HashMap<Tid, Timestamp>>,
        max: Mutex<Timestamp>,
    }
    impl SimAuthority {
        fn commit(&self, tid: Tid, ts: Timestamp) {
            self.committed.lock().insert(tid, ts);
            let mut m = self.max.lock();
            if ts > *m {
                *m = ts;
            }
        }
    }
    impl TimestampResolver for SimAuthority {
        fn resolve(&self, tid: Tid) -> Option<Timestamp> {
            self.committed.lock().get(&tid).copied()
        }
    }
    impl SplitTimeSource for SimAuthority {
        fn current_split_ts(&self) -> Timestamp {
            let m = *self.max.lock();
            Timestamp::new(m.ttime + 20, 0)
        }
    }

    // The threshold only matters when the *current* data grows: a pure
    // update workload lets time splits shed everything historical and no
    // key split is ever needed. Grow the key population every round (a
    // fleet gaining vehicles) while updating all existing keys.
    let keys0 = if quick { 100u64 } else { 200 };
    let rounds = if quick { 20u64 } else { 40 };
    [0.5f64, 0.6, 0.7, 0.8, 0.9]
        .iter()
        .map(|&threshold| {
            let dir = std::env::temp_dir().join(format!(
                "immortal-a3-{}-{}",
                std::process::id(),
                (threshold * 100.0) as u32
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let (disk, _) = DiskManager::open(dir.join("data.idb")).unwrap();
            let wal = Arc::new(Wal::open(dir.join("wal.log")).unwrap());
            let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 32 * 1024));
            let auth = Arc::new(SimAuthority::default());
            let mut tree = BTree::create(
                pool,
                wal,
                TreeId(100),
                true,
                Arc::clone(&auth) as Arc<dyn SplitTimeSource>,
            )
            .unwrap();
            tree.set_split_threshold(threshold);
            let value = vec![7u8; 64];
            let mut tid = 0u64;
            let mut tick = 0u64;
            let commit = |auth: &Arc<SimAuthority>, tid: u64, tick: u64| {
                auth.commit(Tid(tid), Timestamp::new(tick * 20, 0));
            };
            let mut population = 0u64;
            for round in 0..=rounds {
                // Growth: 10% new keys per round.
                let grow = if round == 0 {
                    keys0
                } else {
                    (population / 10).max(5)
                };
                for _ in 0..grow {
                    tid += 1;
                    tick += 1;
                    tree.insert(
                        Tid(tid),
                        NULL_LSN,
                        &immortaldb_common::codec::key_from_u64(population),
                        &value,
                        auth.as_ref(),
                    )
                    .unwrap();
                    commit(&auth, tid, tick);
                    population += 1;
                }
                for k in 0..population {
                    tid += 1;
                    tick += 1;
                    tree.update(
                        Tid(tid),
                        NULL_LSN,
                        &immortaldb_common::codec::key_from_u64(k),
                        &value,
                        auth.as_ref(),
                    )
                    .unwrap();
                    commit(&auth, tid, tick);
                }
            }
            let stats = tree.storage_stats().unwrap();
            let _ = std::fs::remove_dir_all(&dir);
            UtilResult {
                threshold,
                leaves: stats.current_leaves,
                slice_utilization: stats.current_slice_utilization,
                history_pages: stats.history_pages,
            }
        })
        .collect()
}

pub fn report_utilization(rows: &[UtilResult]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.threshold),
                format!("{}", r.leaves),
                format!("{:.3}", r.slice_utilization),
                format!("{:.3}", r.threshold * std::f64::consts::LN_2),
                format!("{}", r.history_pages),
            ]
        })
        .collect();
    print_table(
        "A3: current-slice utilization vs key-split threshold T \
         (paper: expected ~ T*ln2)",
        &[
            "T",
            "current leaves",
            "measured util",
            "T*ln2",
            "history pages",
        ],
        &table,
    );
}

// ---------------------------------------------------------------------
// A2: TSB-tree vs page-chain traversal for AS OF point reads
// ---------------------------------------------------------------------

pub struct TsbResult {
    /// `(percent of history, chain-scan us/read, TSB us/read)`.
    pub points: Vec<(u32, f64, f64)>,
}

/// §7.2's prediction: with the TSB-tree, AS OF performance becomes
/// independent of how far back the query reaches, because the index
/// descends directly to the right historical page instead of walking the
/// time-split page chain from the current page.
pub fn tsb_index(quick: bool) -> TsbResult {
    use immortaldb_btree::{BTree, SplitTimeSource};
    use immortaldb_common::{Tid, Timestamp, TreeId, NULL_LSN};
    use immortaldb_storage::buffer::BufferPool;
    use immortaldb_storage::disk::DiskManager;
    use immortaldb_storage::wal::Wal;
    use immortaldb_storage::TimestampResolver;
    use immortaldb_tsb::TsbTree;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    #[derive(Default)]
    struct SimAuthority {
        committed: Mutex<HashMap<Tid, Timestamp>>,
        max: Mutex<Timestamp>,
    }
    impl SimAuthority {
        fn commit(&self, tid: Tid, ts: Timestamp) {
            self.committed.lock().insert(tid, ts);
            let mut m = self.max.lock();
            if ts > *m {
                *m = ts;
            }
        }
    }
    impl TimestampResolver for SimAuthority {
        fn resolve(&self, tid: Tid) -> Option<Timestamp> {
            self.committed.lock().get(&tid).copied()
        }
    }
    impl SplitTimeSource for SimAuthority {
        fn current_split_ts(&self) -> Timestamp {
            let m = *self.max.lock();
            Timestamp::new(m.ttime + 20, 0)
        }
    }

    let dir = std::env::temp_dir().join(format!("immortal-a2-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let (disk, _) = DiskManager::open(dir.join("data.idb")).unwrap();
    let wal = Arc::new(Wal::open(dir.join("wal.log")).unwrap());
    // Small pool: historical pages must not be resident (the regime where
    // chain walks hurt).
    let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 96));
    let auth = Arc::new(SimAuthority::default());
    let btree = BTree::create(
        Arc::clone(&pool),
        Arc::clone(&wal),
        TreeId(60),
        true,
        Arc::clone(&auth) as Arc<dyn SplitTimeSource>,
    )
    .unwrap();
    let tsb = TsbTree::create(
        Arc::clone(&pool),
        Arc::clone(&wal),
        TreeId(61),
        Arc::clone(&auth) as Arc<dyn SplitTimeSource>,
    )
    .unwrap();

    // Identical workload into both trees: `keys` keys, `rounds` updates.
    let keys = if quick { 100u64 } else { 200 };
    let rounds = if quick { 60u64 } else { 150 };
    let value = vec![5u8; 100];
    let mut tid = 0u64;
    let mut tick = 0u64;
    for k in 0..keys {
        tid += 1;
        tick += 1;
        let kb = immortaldb_common::codec::key_from_u64(k);
        btree
            .insert(Tid(tid), NULL_LSN, &kb, &value, auth.as_ref())
            .unwrap();
        tsb.insert(Tid(tid), NULL_LSN, &kb, &value, auth.as_ref())
            .unwrap();
        auth.commit(Tid(tid), Timestamp::new(tick * 20, 0));
    }
    let mut marks: Vec<(u32, Timestamp)> = vec![(0, Timestamp::new(tick * 20, 1))];
    for r in 1..=rounds {
        for k in 0..keys {
            tid += 1;
            tick += 1;
            let kb = immortaldb_common::codec::key_from_u64(k);
            btree
                .update(Tid(tid), NULL_LSN, &kb, &value, auth.as_ref())
                .unwrap();
            tsb.update(Tid(tid), NULL_LSN, &kb, &value, auth.as_ref())
                .unwrap();
            auth.commit(Tid(tid), Timestamp::new(tick * 20, 0));
        }
        if r * 10 % rounds == 0 {
            marks.push(((r * 100 / rounds) as u32, Timestamp::new(tick * 20, 1)));
        }
    }

    let probes = keys.min(100);
    type Probe<'a> = &'a dyn Fn(&[u8], Timestamp) -> Option<Vec<u8>>;
    let measure = |f: Probe, at: Timestamp| -> f64 {
        let t0 = Instant::now();
        for k in 0..probes {
            let kb = immortaldb_common::codec::key_from_u64(k);
            let _ = f(&kb, at);
        }
        t0.elapsed().as_secs_f64() * 1e6 / probes as f64
    };
    let mut points = Vec::new();
    for (pct, at) in &marks {
        let chain_us = measure(
            &|k, t| btree.get_as_of(k, t, None, auth.as_ref()).unwrap(),
            *at,
        );
        let tsb_us = measure(
            &|k, t| tsb.get_as_of(k, t, None, auth.as_ref()).unwrap(),
            *at,
        );
        points.push((*pct, chain_us, tsb_us));
    }
    let _ = std::fs::remove_dir_all(&dir);
    TsbResult { points }
}

pub fn report_tsb(r: &TsbResult) {
    let table: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|(pct, chain, tsb)| {
            vec![
                format!("{pct}%"),
                format!("{chain:.1}"),
                format!("{tsb:.1}"),
                format!("{:.1}x", chain / tsb),
            ]
        })
        .collect();
    print_table(
        "A2: AS OF point reads — page-chain scan vs TSB-tree index \
         (0% = oldest history; paper §7.2 predicts the TSB column is flat)",
        &["% of history", "chain us/read", "TSB us/read", "speedup"],
        &table,
    );
}

// ---------------------------------------------------------------------
// A4: PTT growth with vs without incremental GC
// ---------------------------------------------------------------------

pub struct PttGcResult {
    /// `(transactions so far, PTT entries without GC, PTT entries with
    /// periodic checkpoints+GC)`.
    pub samples: Vec<(u32, usize, usize)>,
}

pub fn ptt_gc(quick: bool) -> PttGcResult {
    let total: u32 = if quick { 2_000 } else { 10_000 };
    let sample_every = total / 10;
    let events = Generator::events_exact(0xA4, 500, total / 500);

    let run = |gc: bool| -> Vec<usize> {
        let bench = BenchDb::new("a4", Mode::Immortal);
        let mut sizes = Vec::new();
        for (i, e) in events.iter().take(total as usize).enumerate() {
            bench.apply_event(e);
            let n = i as u32 + 1;
            if gc && n.is_multiple_of((sample_every / 2).max(1)) {
                // Touch the records so stamping happens, then checkpoint.
                bench.db.checkpoint().expect("checkpoint");
            }
            if n.is_multiple_of(sample_every) {
                sizes.push(bench.db.ptt_len().expect("ptt len"));
            }
        }
        sizes
    };
    let no_gc = run(false);
    let with_gc = run(true);
    PttGcResult {
        samples: no_gc
            .iter()
            .zip(&with_gc)
            .enumerate()
            .map(|(i, (a, b))| ((i as u32 + 1) * sample_every, *a, *b))
            .collect(),
    }
}

pub fn report_ptt_gc(r: &PttGcResult) {
    let table: Vec<Vec<String>> = r
        .samples
        .iter()
        .map(|(n, a, b)| vec![format!("{n}"), format!("{a}"), format!("{b}")])
        .collect();
    print_table(
        "A4: persistent timestamp table size (entries) with vs without \
         incremental GC",
        &["txns", "no GC", "checkpoint + GC"],
        &table,
    );
}

// ---------------------------------------------------------------------
// A5: snapshot read cost vs version age
// ---------------------------------------------------------------------

pub struct SnapshotReadResult {
    /// `(versions back in time, avg point-read microseconds)`.
    pub points: Vec<(u32, f64)>,
}

pub fn snapshot_reads(quick: bool) -> SnapshotReadResult {
    let keys: u32 = if quick { 200 } else { 500 };
    let rounds: u32 = if quick { 24 } else { 72 };
    let bench = BenchDb::new("a5", Mode::Immortal);
    let events = Generator::events_exact(0xA5, keys, rounds);
    // Capture a watermark after each update round.
    let mut marks = Vec::new();
    for (i, e) in events.iter().enumerate() {
        bench.apply_event(e);
        if i >= keys as usize && (i + 1 - keys as usize).is_multiple_of(keys as usize) {
            marks.push(bench.db.latest_ts());
        }
    }
    // Read 100 keys at "now", and at snapshots N rounds back.
    let depths: Vec<u32> = [0u32, 1, 2, 4, 8, 16, 32, 64]
        .into_iter()
        .filter(|d| *d < rounds)
        .collect();
    let mut points = Vec::new();
    for &back in &depths {
        let ts = marks[marks.len() - 1 - back as usize];
        let mut txn = bench.db.begin_as_of_ts(ts);
        let probes = 100u32.min(keys);
        let t0 = Instant::now();
        for k in 0..probes {
            let _ = bench
                .db
                .get_row(&mut txn, "MovingObjects", &Value::Int(k as i32))
                .expect("read");
        }
        let us = t0.elapsed().as_secs_f64() * 1e6 / probes as f64;
        bench.db.commit(&mut txn).unwrap();
        points.push((back, us));
    }
    SnapshotReadResult { points }
}

pub fn report_snapshot_reads(r: &SnapshotReadResult) {
    let table: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|(back, us)| vec![format!("{back}"), format!("{us:.1}")])
        .collect();
    print_table(
        "A5: point-read latency vs snapshot age (versions back): recent \
         versions live in the current page, older ones behind the history chain",
        &["rounds back", "avg us/read"],
        &table,
    );
}
