//! **Figure 5** — Transaction overhead in Immortal DB.
//!
//! The paper: up to 32,000 transactions (500 inserts, the rest updates,
//! one record per transaction — the worst case, since every transaction
//! pays its own persistent-timestamp-table write), executed against an
//! immortal table and a traditional table. At 32K transactions the paper
//! measures ≈9.6 ms/txn conventional + ≈1.1 ms immortal overhead ≈ 11 %.
//!
//! We sweep the same transaction counts and report total seconds, per-
//! transaction averages and the overhead percentage. Absolute times are
//! hardware-dependent; the shape to check is a modest, roughly constant
//! per-transaction overhead.

use immortaldb_mobgen::Generator;
use immortaldb_obs::MetricsSnapshot;

use crate::harness::{print_table, time, BenchDb, Mode};

pub struct Fig5Row {
    pub txns: u32,
    pub conventional_s: f64,
    pub immortal_s: f64,
}

/// One durability regime's sweep plus the engine metrics captured from
/// the final (largest) immortal run — buffer hit rate, fsync latency
/// histogram, per-trigger stamp counts.
pub struct Fig5Run {
    pub rows: Vec<Fig5Row>,
    pub metrics: Option<MetricsSnapshot>,
}

/// Run the sweep under the given commit durability. `quick` limits the
/// sweep to 8K transactions.
pub fn run(quick: bool, durability: immortaldb::Durability) -> Fig5Run {
    let objects = 500u32;
    let counts: &[u32] = if quick {
        &[1_000, 2_000, 4_000, 8_000]
    } else {
        &[1_000, 2_000, 4_000, 8_000, 16_000, 32_000]
    };
    // I/O latency on a shared machine drifts over tens of seconds, which
    // would corrupt an A-then-B comparison. Run the two modes as
    // interleaved PAIRS (both sides see the same noise window) and report
    // the pair whose overhead ratio is the median.
    let reps = match durability {
        immortaldb::Durability::Fsync => 5,
        immortaldb::Durability::Buffered => 3,
    };
    let mut rows = Vec::new();
    // Engine metrics from the most recent immortal run; after the sweep
    // this holds the largest count's final repetition.
    let mut metrics: Option<MetricsSnapshot> = None;
    for &total in counts {
        let updates_per_object = (total - objects) / objects;
        let events = Generator::events_exact(0xF165, objects, updates_per_object);
        debug_assert_eq!(events.len() as u32, objects + objects * updates_per_object);

        let mut run_once = |mode: Mode, tag: &str| -> f64 {
            let dbx = BenchDb::new_with(tag, mode, durability);
            let secs = time(|| {
                for e in &events {
                    dbx.apply_event(e);
                }
            });
            if mode == Mode::Immortal {
                metrics = Some(dbx.db.metrics_snapshot());
            }
            secs
        };
        let mut pairs: Vec<(f64, f64)> = (0..reps)
            .map(|_| {
                (
                    run_once(Mode::Conventional, "fig5-conv"),
                    run_once(Mode::Immortal, "fig5-imm"),
                )
            })
            .collect();
        pairs.sort_by(|a, b| (a.1 / a.0).partial_cmp(&(b.1 / b.0)).unwrap());
        let (conventional_s, immortal_s) = pairs[pairs.len() / 2];
        rows.push(Fig5Row {
            txns: total,
            conventional_s,
            immortal_s,
        });
    }
    Fig5Run { rows, metrics }
}

/// Serialize one regime's rows as a JSON array (no trailing newline).
pub fn rows_json(rows: &[Fig5Row]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"txns\":{},\"conventional_s\":{:.6},\"immortal_s\":{:.6},\
                 \"overhead_pct\":{:.3}}}",
                r.txns,
                r.conventional_s,
                r.immortal_s,
                (r.immortal_s / r.conventional_s - 1.0) * 100.0
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

pub fn report(regime: &str, rows: &[Fig5Row]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let overhead = (r.immortal_s / r.conventional_s - 1.0) * 100.0;
            vec![
                format!("{}", r.txns),
                format!("{:.3}", r.conventional_s),
                format!("{:.3}", r.immortal_s),
                format!("{:.1}", r.conventional_s / r.txns as f64 * 1e6),
                format!("{:.1}", r.immortal_s / r.txns as f64 * 1e6),
                format!("{:+.1}%", overhead),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Figure 5 [{regime}]: transaction overhead \
             (500 inserts, rest single-record updates)"
        ),
        &[
            "txns",
            "conventional (s)",
            "immortal (s)",
            "conv us/txn",
            "imm us/txn",
            "overhead",
        ],
        &table,
    );
    if let Some(last) = rows.last() {
        let overhead = (last.immortal_s / last.conventional_s - 1.0) * 100.0;
        println!(
            "paper @32K (disk-bound): conventional 9.6 ms/txn, immortal +1.1 ms \
             (+11%); measured [{regime}] @{}: {:+.1}%",
            last.txns, overhead
        );
    }
}

/// The paper's lowest-overhead data point: all records in one transaction
/// ("indistinguishable from non-timestamped updates"). Returns
/// `(conventional seconds, immortal seconds)` for `total` records.
pub fn run_single_txn_case(total: u32) -> (f64, f64) {
    let objects = 500u32;
    let events = Generator::events_exact(0xF165, objects, (total - objects) / objects);
    let conv = BenchDb::new("fig5b-conv", Mode::Conventional);
    let conv_s = time(|| conv.apply_batch(&events));
    drop(conv);
    let imm = BenchDb::new("fig5b-imm", Mode::Immortal);
    let imm_s = time(|| imm.apply_batch(&events));
    (conv_s, imm_s)
}
