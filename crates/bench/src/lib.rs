//! Benchmark harness reproducing the Immortal DB paper's evaluation
//! (Figures 5 and 6) plus the ablations catalogued in DESIGN.md §4.
//!
//! The binary (`cargo run -p immortaldb-bench --release -- all`) prints
//! each experiment as the table/series the paper reports; EXPERIMENTS.md
//! records paper-vs-measured.

pub mod ablations;
pub mod connections;
pub mod fig5;
pub mod fig6;
pub mod group_commit;
pub mod harness;
pub mod history;
pub mod netbench;
pub mod read_scaling;
pub mod replbench;
pub mod temporal;

pub use harness::{BenchDb, Mode};
