//! Shared benchmark plumbing: database fixtures, workload application,
//! timing and table printing.

use std::path::PathBuf;
use std::time::Instant;

use immortaldb::{Database, DbConfig, Isolation, TimestampingMode, Value};
use immortaldb_mobgen::{Event, Op};

/// Which storage/timestamping configuration a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Transaction-time table with lazy timestamping (the paper's system).
    Immortal,
    /// Conventional table in the same engine (the paper's baseline).
    Conventional,
    /// Transaction-time table with the eager-timestamping baseline.
    ImmortalEager,
}

/// A scratch database in a temp directory, dropped on exit.
pub struct BenchDb {
    pub db: Database,
    dir: PathBuf,
}

impl BenchDb {
    pub fn new(tag: &str, mode: Mode) -> BenchDb {
        Self::new_with(tag, mode, immortaldb::Durability::Buffered)
    }

    /// `durability` selects the commit regime: `Buffered` exposes raw CPU
    /// costs, `Fsync` reproduces the paper's I/O-bound per-transaction
    /// times.
    pub fn new_with(tag: &str, mode: Mode, durability: immortaldb::Durability) -> BenchDb {
        Self::new_sized(tag, mode, durability, 16 * 1024)
    }

    /// Full control, including the buffer-pool size (a small pool
    /// reproduces the paper's memory-pressure regime where historical
    /// pages are not resident).
    pub fn new_sized(
        tag: &str,
        mode: Mode,
        durability: immortaldb::Durability,
        pool_pages: usize,
    ) -> BenchDb {
        let dir = std::env::temp_dir().join(format!(
            "immortal-bench-{tag}-{}-{}",
            std::process::id(),
            fastrand_suffix()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let timestamping = match mode {
            Mode::ImmortalEager => TimestampingMode::Eager,
            _ => TimestampingMode::Lazy,
        };
        let db = Database::open(
            DbConfig::new(&dir)
                .pool_pages(pool_pages)
                .durability(durability)
                .timestamping(timestamping),
        )
        .expect("open bench db");
        let ddl = match mode {
            Mode::Immortal | Mode::ImmortalEager => {
                "CREATE IMMORTAL TABLE MovingObjects \
                 (Oid INT PRIMARY KEY, LocationX INT, LocationY INT)"
            }
            Mode::Conventional => {
                "CREATE TABLE MovingObjects \
                 (Oid INT PRIMARY KEY, LocationX INT, LocationY INT)"
            }
        };
        let mut s = immortaldb::Session::new(&db);
        s.execute(ddl).expect("create table");
        BenchDb { db, dir }
    }

    /// Apply one event as its own transaction (the paper's worst case:
    /// one record per transaction).
    pub fn apply_event(&self, e: &Event) {
        let mut txn = self.db.begin(Isolation::Serializable);
        match e.op {
            Op::Insert { oid, x, y } => {
                self.db
                    .insert_row(
                        &mut txn,
                        "MovingObjects",
                        vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
                    )
                    .expect("insert");
            }
            Op::Update { oid, x, y } => {
                self.db
                    .update_row(
                        &mut txn,
                        "MovingObjects",
                        vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
                    )
                    .expect("update");
            }
        }
        self.db.commit(&mut txn).expect("commit");
    }

    /// Apply a batch of events inside a single transaction (the paper's
    /// lowest-overhead case).
    pub fn apply_batch(&self, events: &[Event]) {
        let mut txn = self.db.begin(Isolation::Serializable);
        for e in events {
            match e.op {
                Op::Insert { oid, x, y } => self
                    .db
                    .insert_row(
                        &mut txn,
                        "MovingObjects",
                        vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
                    )
                    .expect("insert"),
                Op::Update { oid, x, y } => self
                    .db
                    .update_row(
                        &mut txn,
                        "MovingObjects",
                        vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)],
                    )
                    .expect("update"),
            }
        }
        self.db.commit(&mut txn).expect("commit");
    }
}

impl Drop for BenchDb {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn fastrand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64
}

/// Time a closure, returning seconds.
pub fn time<F: FnOnce()>(f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// Print a header + aligned rows (simple fixed-width columns).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map(|c| c.len()).unwrap_or(0))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for r in rows {
        println!("{}", fmt_row(r));
    }
}
