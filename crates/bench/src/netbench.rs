//! Multi-client commit throughput over the wire protocol.
//!
//! N TCP clients drive one `immortaldb-net` server: each client issues
//! autocommit single-row INSERTs (disjoint keys — pure commit-path
//! contention) with a sprinkling of AS OF historical reads, the mix a
//! transaction-time server actually sees. Measured per configuration:
//! commit throughput, client-observed p50/p99 commit latency, and the
//! WAL's group-commit batching — the point of the experiment being that
//! the leader/follower log-force barrier batches commits *across
//! connections*, so multi-client throughput scales even though every
//! commit is fsync-durable.

use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use immortaldb::{Database, DbConfig, Durability, GroupCommitConfig, Session, Value};
use immortaldb_net::{Client, Server, ServerConfig};

use crate::harness::print_table;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct NetRow {
    pub clients: usize,
    pub grouped: bool,
    pub commits: u64,
    pub asof_reads: u64,
    pub secs: f64,
    /// Client-observed commit (autocommit INSERT round-trip) latency.
    pub p50_us: u64,
    pub p99_us: u64,
    /// fsyncs issued during the measured window.
    pub fsyncs: u64,
    /// Group batches synced (0 when grouping is disabled).
    pub batches: u64,
    pub mean_batch: f64,
    /// `wal.group_commits` as reported by SHOW STATS *over the wire* —
    /// the batching is observable by any client.
    pub group_commits_over_wire: i64,
}

impl NetRow {
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.secs
    }
}

/// Autocommit writes kept in flight per connection (see the pipelining
/// comment in `run_one`); latency is still measured per request, send to
/// reply.
const PIPELINE_DEPTH: usize = 4;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("immortal-bench-net-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn run_one(clients: usize, commits_per_client: u64, grouped: bool) -> NetRow {
    let dir = scratch_dir(&format!("{clients}-{grouped}"));
    let db = Arc::new(
        Database::open(
            DbConfig::new(&dir)
                .pool_pages(4 * 1024)
                .durability(Durability::Fsync)
                .group_commit(GroupCommitConfig {
                    enabled: grouped,
                    ..GroupCommitConfig::default()
                }),
        )
        .expect("open bench db"),
    );
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE Commits (Id INT PRIMARY KEY, V INT)")
            .expect("create table");
    }
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::new("127.0.0.1:0").workers(clients.max(1)),
    )
    .expect("start server");
    let addr = server.local_addr();

    let m = db.metrics().clone();
    let fsyncs0 = m.wal.fsyncs.get();
    let batches0 = m.wal.group_commits.get();
    let batch_sum0 = m.wal.batch_size.snapshot().sum;

    // Connect everyone before the clock starts.
    let mut conns: Vec<Client> = (0..clients)
        .map(|_| Client::connect(addr).expect("connect"))
        .collect();

    let start = std::sync::Barrier::new(clients + 1);
    let mut latencies: Vec<u64> = Vec::new();
    let mut asof_total = 0u64;
    let secs;
    {
        let start = &start;
        let (results, elapsed): (Vec<(Vec<u64>, u64)>, f64) = std::thread::scope(|scope| {
            let handles: Vec<_> = conns
                .drain(..)
                .enumerate()
                .map(|(w, mut c)| {
                    scope.spawn(move || {
                        let mut lat = Vec::with_capacity(commits_per_client as usize);
                        let mut asof = 0u64;
                        // Keep a few writes in flight: the reply of one
                        // commit overlaps the next request, so the worker
                        // stays at the group-commit barrier instead of
                        // idling a client round trip between commits.
                        let mut sent: std::collections::VecDeque<Instant> =
                            std::collections::VecDeque::new();
                        start.wait();
                        for i in 0..commits_per_client {
                            let id = (w as u64 * commits_per_client + i) as i32;
                            c.send_query(&format!("INSERT INTO Commits VALUES ({id}, {w})"))
                                .expect("send insert");
                            sent.push_back(Instant::now());
                            while sent.len() >= PIPELINE_DEPTH {
                                c.recv_response().expect("insert reply");
                                lat.push(sent.pop_front().unwrap().elapsed().as_micros() as u64);
                            }
                            // Every 8th op, drain the pipeline and read
                            // the recent past AS OF "now" (clamped to
                            // the visibility horizon).
                            if i % 8 == 7 {
                                while let Some(t) = sent.pop_front() {
                                    c.recv_response().expect("insert reply");
                                    lat.push(t.elapsed().as_micros() as u64);
                                }
                                c.begin_as_of_ms(now_ms()).expect("begin as of");
                                c.query(&format!("SELECT V FROM Commits WHERE Id = {id}"))
                                    .expect("as of read");
                                c.commit().expect("close as of");
                                asof += 1;
                            }
                        }
                        while let Some(t) = sent.pop_front() {
                            c.recv_response().expect("insert reply");
                            lat.push(t.elapsed().as_micros() as u64);
                        }
                        (lat, asof)
                    })
                })
                .collect();
            start.wait();
            let t0 = Instant::now();
            let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
            (results, t0.elapsed().as_secs_f64())
        });
        secs = elapsed;
        for (lat, asof) in results {
            latencies.extend(lat);
            asof_total += asof;
        }
    }

    let commits = latencies.len() as u64;
    let fsyncs = m.wal.fsyncs.get() - fsyncs0;
    let batches = m.wal.group_commits.get() - batches0;
    let batch_sum = m.wal.batch_size.snapshot().sum - batch_sum0;
    let mean_batch = if batches > 0 {
        batch_sum as f64 / batches as f64
    } else {
        1.0
    };

    // The batching must be visible over the wire, not just in-process.
    let mut admin = Client::connect(addr).expect("connect admin");
    let stats = admin.query("SHOW STATS").expect("show stats");
    let group_commits_over_wire = stats
        .rows
        .iter()
        .find(|r| r[0] == Value::Varchar("wal.group_commits".into()))
        .map(|r| match r[1] {
            Value::BigInt(v) => v,
            _ => -1,
        })
        .unwrap_or(-1);
    drop(admin);

    latencies.sort_unstable();
    let p50_us = percentile(&latencies, 0.50);
    let p99_us = percentile(&latencies, 0.99);

    server.shutdown().expect("shutdown");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    NetRow {
        clients,
        grouped,
        commits,
        asof_reads: asof_total,
        secs,
        p50_us,
        p99_us,
        fsyncs,
        batches,
        mean_batch,
        group_commits_over_wire,
    }
}

/// Run the full client sweep, grouped and per-commit fsync.
pub fn run(quick: bool) -> Vec<NetRow> {
    let per_client: u64 = if quick { 200 } else { 1500 };
    let mut rows = Vec::new();
    for &clients in &[1usize, 4, 8, 16] {
        for grouped in [false, true] {
            rows.push(run_one(clients, per_client, grouped));
        }
    }
    rows
}

pub fn report(rows: &[NetRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.clients.to_string(),
                if r.grouped { "grouped" } else { "per-commit" }.to_string(),
                r.commits.to_string(),
                format!("{:.0}", r.throughput()),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
                r.fsyncs.to_string(),
                format!("{:.1}", r.mean_batch),
            ]
        })
        .collect();
    print_table(
        "net — wire-protocol commit throughput (fsync durability)",
        &[
            "clients",
            "mode",
            "commits",
            "commits/s",
            "p50 us",
            "p99 us",
            "fsyncs",
            "mean batch",
        ],
        &table,
    );
    let one = rows.iter().find(|r| r.clients == 1 && r.grouped);
    for &c in &[4usize, 8, 16] {
        let grp = rows.iter().find(|r| r.clients == c && r.grouped);
        if let (Some(base), Some(g)) = (one, grp) {
            println!(
                "  {c:>2} clients (grouped): {:.0} commits/s = {:.2}x of 1 client",
                g.throughput(),
                g.throughput() / base.throughput()
            );
        }
    }
}

pub fn rows_json(rows: &[NetRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"clients\":{},\"grouped\":{},\"commits\":{},\"asof_reads\":{},\
                 \"secs\":{:.6},\"commits_per_sec\":{:.1},\"p50_us\":{},\"p99_us\":{},\
                 \"fsyncs\":{},\"group_commits\":{},\"mean_batch\":{:.2},\
                 \"group_commits_over_wire\":{}}}",
                r.clients,
                r.grouped,
                r.commits,
                r.asof_reads,
                r.secs,
                r.throughput(),
                r.p50_us,
                r.p99_us,
                r.fsyncs,
                r.batches,
                r.mean_batch,
                r.group_commits_over_wire
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}
