//! Read fan-out across WAL-shipped replicas.
//!
//! One primary takes a steady trickle of autocommit UPDATEs while
//! readers issue `BEGIN AS OF now` point-in-time scans. The sweep is
//! the classic fan-out experiment: a fixed pool of readers is attached
//! to *each* read endpoint — the primary alone (0 replicas, the
//! baseline every read-scaling claim is measured against), then 1 and
//! 2 WAL-shipped replicas. Each replica serves reads from its own
//! buffer pool against its own shipped log, so every endpoint added
//! admits another full reader pool without touching the primary's
//! write path; aggregate read throughput should grow with the endpoint
//! count until the machine itself saturates.
//!
//! Caveat: the whole topology runs in one process, so on a single-core
//! host every node time-shares the same CPU and the sweep measures
//! topology overhead instead of scaling — interpret the ratio together
//! with the core count (EXPERIMENTS.md records both).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use immortaldb::{Database, DbConfig, Durability, Session};
use immortaldb_net::{Client, Server, ServerConfig};
use immortaldb_repl::{Replica, ReplicaConfig};

use crate::harness::print_table;

const ROWS: i64 = 256;

/// One measured fan-out configuration.
#[derive(Debug, Clone)]
pub struct ReplRow {
    pub replicas: usize,
    /// Total readers (a fixed pool per read endpoint).
    pub readers: usize,
    pub reads: u64,
    pub secs: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    /// Writes the primary absorbed during the measured window.
    pub writes: u64,
}

impl ReplRow {
    pub fn throughput(&self) -> f64 {
        self.reads as f64 / self.secs
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("immortal-bench-repl-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis() as u64
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn run_one(replicas: usize, readers_per_endpoint: usize, reads_per_reader: u64) -> ReplRow {
    let dir = scratch_dir(&format!("{replicas}r"));
    let db = Arc::new(
        Database::open(
            DbConfig::new(&dir)
                .pool_pages(4 * 1024)
                .durability(Durability::Buffered),
        )
        .expect("open bench db"),
    );
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE kv (k INT PRIMARY KEY, v INT)")
            .expect("create table");
        s.execute("BEGIN TRAN").expect("begin seed");
        for k in 0..ROWS {
            s.execute(&format!("INSERT INTO kv VALUES ({k}, 0)"))
                .expect("seed row");
        }
        s.execute("COMMIT").expect("commit seed");
    }
    // Primary workers: one per potential local reader, plus the writer
    // connection and one WAL-ship stream per replica.
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::new("127.0.0.1:0").workers(readers_per_endpoint + replicas + 2),
    )
    .expect("start primary server");
    let primary_addr = server.local_addr().to_string();

    let mut followers = Vec::new();
    let mut endpoints = Vec::new();
    for i in 0..replicas {
        let r = Replica::start(ReplicaConfig::new(
            scratch_dir(&format!("{replicas}r-replica{i}")),
            primary_addr.clone(),
        ))
        .expect("start replica");
        let srv = Server::start(
            Arc::clone(r.db()),
            ServerConfig::new("127.0.0.1:0").workers(readers_per_endpoint),
        )
        .expect("start replica server");
        endpoints.push(srv.local_addr().to_string());
        followers.push((r, srv));
    }
    if endpoints.is_empty() {
        endpoints.push(primary_addr.clone());
    }
    let readers = readers_per_endpoint * endpoints.len();

    // Background writer: the replicas must be *applying* while serving,
    // not following an idle log.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let addr = primary_addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("writer connect");
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = i as i64 % ROWS;
                c.query(&format!("UPDATE kv SET v = {i} WHERE k = {k}"))
                    .expect("writer update");
                i += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        })
    };

    // Connect the per-endpoint reader pools before the clock starts.
    let mut conns: Vec<Client> = (0..readers)
        .map(|r| Client::connect(&endpoints[r % endpoints.len()]).expect("reader connect"))
        .collect();
    let start = std::sync::Barrier::new(readers + 1);
    let (results, secs): (Vec<Vec<u64>>, f64) = std::thread::scope(|scope| {
        let start = &start;
        let handles: Vec<_> = conns
            .drain(..)
            .enumerate()
            .map(|(w, mut c)| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(reads_per_reader as usize);
                    start.wait();
                    for i in 0..reads_per_reader {
                        let k = (w as u64 * 31 + i) as i64 % ROWS;
                        let t0 = Instant::now();
                        c.begin_as_of_ms(now_ms()).expect("begin as of");
                        // A full historical scan plus a point read: enough
                        // server-side work per request that the endpoint's
                        // capacity — not the client round trip — is what
                        // the sweep measures.
                        c.query("SELECT * FROM kv").expect("as of scan");
                        c.query(&format!("SELECT * FROM kv WHERE k = {k}"))
                            .expect("as of read");
                        c.commit().expect("close as of");
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        let results = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (results, t0.elapsed().as_secs_f64())
    });

    stop.store(true, Ordering::Relaxed);
    let writes = writer.join().expect("writer join");

    let mut latencies: Vec<u64> = results.into_iter().flatten().collect();
    latencies.sort_unstable();
    let reads = latencies.len() as u64;
    let p50_us = percentile(&latencies, 0.50);
    let p99_us = percentile(&latencies, 0.99);

    for (r, srv) in followers {
        srv.shutdown().expect("replica server shutdown");
        r.stop();
    }
    server.shutdown().expect("primary shutdown");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    ReplRow {
        replicas,
        readers,
        reads,
        secs,
        p50_us,
        p99_us,
        writes,
    }
}

/// Sweep the read fan-out: a fixed reader pool per endpoint, against
/// the primary alone, then 1 and 2 replicas, with the same write
/// trickle throughout.
pub fn run(quick: bool) -> Vec<ReplRow> {
    let readers_per_endpoint = 3usize;
    let per_reader: u64 = if quick { 150 } else { 1000 };
    [0usize, 1, 2]
        .iter()
        .map(|&replicas| run_one(replicas, readers_per_endpoint, per_reader))
        .collect()
}

pub fn report(rows: &[ReplRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.replicas.to_string(),
                r.readers.to_string(),
                r.reads.to_string(),
                format!("{:.0}", r.throughput()),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
                r.writes.to_string(),
            ]
        })
        .collect();
    print_table(
        "repl — AS OF read fan-out across WAL-shipped replicas",
        &[
            "replicas",
            "readers",
            "reads",
            "reads/s",
            "p50 us",
            "p99 us",
            "writes absorbed",
        ],
        &table,
    );
    if let (Some(one), Some(two)) = (
        rows.iter().find(|r| r.replicas == 1),
        rows.iter().find(|r| r.replicas == 2),
    ) {
        println!(
            "  2 replicas: {:.0} reads/s = {:.2}x of 1 replica",
            two.throughput(),
            two.throughput() / one.throughput()
        );
    }
}

pub fn rows_json(rows: &[ReplRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"replicas\":{},\"readers\":{},\"reads\":{},\"secs\":{:.6},\
                 \"reads_per_sec\":{:.1},\"p50_us\":{},\"p99_us\":{},\"writes\":{}}}",
                r.replicas,
                r.readers,
                r.reads,
                r.secs,
                r.throughput(),
                r.p50_us,
                r.p99_us,
                r.writes
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}
