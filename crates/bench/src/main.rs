//! Benchmark driver: regenerates every figure of the paper's evaluation
//! plus the ablations.
//!
//! ```text
//! immortaldb-bench [--quick] [fig5|fig6|gc|net|connections|repl|temporal|history|read-scaling|a1|a2|a3|a4|a5|all]
//! ```
//!
//! Figure runs additionally write machine-readable `BENCH_<figure>.json`
//! artifacts (rows plus an engine metrics snapshot) to the working
//! directory.

use immortaldb_bench::{
    ablations, connections, fig5, fig6, group_commit, history, netbench, read_scaling, replbench,
    temporal,
};
use immortaldb_obs::MetricsSnapshot;

/// Write a `BENCH_*.json` artifact, reporting rather than aborting on
/// failure (benchmarks should still print their tables on a read-only FS).
fn write_artifact(path: &str, body: &str) {
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn metrics_json(m: &Option<MetricsSnapshot>) -> String {
    m.as_ref()
        .map(|s| s.to_json())
        .unwrap_or_else(|| "null".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };
    let wants = |name: &str| what.iter().any(|w| *w == name || *w == "all");

    println!(
        "Immortal DB benchmark harness ({} mode)",
        if quick { "quick" } else { "full" }
    );

    if wants("fig5") {
        // Two regimes: the paper's times were disk-bound (fsync on every
        // commit); the buffered run exposes the raw CPU-path overhead.
        let fsync = fig5::run(quick, immortaldb::Durability::Fsync);
        fig5::report("fsync/commit — paper's regime", &fsync.rows);
        let buffered = fig5::run(quick, immortaldb::Durability::Buffered);
        fig5::report("buffered — CPU-bound", &buffered.rows);
        let (conv_s, imm_s) = fig5::run_single_txn_case(if quick { 8_000 } else { 32_000 });
        println!(
            "lowest-overhead case (all records in ONE txn): conventional {conv_s:.3}s, \
             immortal {imm_s:.3}s ({:+.1}%) — paper: \"indistinguishable\"",
            (imm_s / conv_s - 1.0) * 100.0
        );
        let body = format!(
            "{{\"figure\":\"fig5\",\"quick\":{quick},\
             \"fsync\":{{\"rows\":{},\"metrics\":{}}},\
             \"buffered\":{{\"rows\":{},\"metrics\":{}}},\
             \"single_txn\":{{\"conventional_s\":{conv_s:.6},\"immortal_s\":{imm_s:.6}}}}}\n",
            fig5::rows_json(&fsync.rows),
            metrics_json(&fsync.metrics),
            fig5::rows_json(&buffered.rows),
            metrics_json(&buffered.metrics),
        );
        write_artifact("BENCH_fig5.json", &body);
    }
    if wants("fig6") {
        let series = fig6::run(quick);
        fig6::report(&series);
        let items: Vec<String> = series.iter().map(fig6::series_json).collect();
        let body = format!(
            "{{\"figure\":\"fig6\",\"quick\":{quick},\"series\":[{}]}}\n",
            items.join(",")
        );
        write_artifact("BENCH_fig6.json", &body);
    }
    if wants("gc") || wants("group_commit") {
        let rows = group_commit::run(quick);
        group_commit::report(&rows);
        let body = format!(
            "{{\"figure\":\"group_commit\",\"quick\":{quick},\"rows\":{}}}\n",
            group_commit::rows_json(&rows)
        );
        write_artifact("BENCH_group_commit.json", &body);
    }
    if wants("net") || wants("server") {
        let rows = netbench::run(quick);
        netbench::report(&rows);
        let body = format!(
            "{{\"figure\":\"server\",\"quick\":{quick},\"rows\":{}}}\n",
            netbench::rows_json(&rows)
        );
        write_artifact("BENCH_server.json", &body);
    }
    if wants("connections") {
        let rows = connections::run(quick);
        connections::report(&rows);
        let tax = connections::idle_tax(quick);
        connections::report_idle_tax(&tax);
        let body = format!(
            "{{\"figure\":\"connections\",\"quick\":{quick},\"rows\":{},\"idle_tax\":{}}}\n",
            connections::rows_json(&rows),
            connections::idle_tax_json(&tax)
        );
        write_artifact("BENCH_connections.json", &body);
    }
    if wants("repl") {
        let rows = replbench::run(quick);
        replbench::report(&rows);
        let body = format!(
            "{{\"figure\":\"repl\",\"quick\":{quick},\"rows\":{}}}\n",
            replbench::rows_json(&rows)
        );
        write_artifact("BENCH_repl.json", &body);
    }
    if wants("temporal") {
        let r = temporal::run(quick);
        temporal::report(&r);
        write_artifact("BENCH_temporal.json", &temporal::result_json(&r, quick));
    }
    if wants("history") {
        let r = history::run(quick);
        history::report(&r);
        write_artifact("BENCH_history.json", &history::result_json(&r, quick));
    }
    if wants("read-scaling") || wants("read_scaling") {
        let r = read_scaling::run(quick);
        read_scaling::report(&r);
        write_artifact(
            "BENCH_read_scaling.json",
            &read_scaling::result_json(&r, quick),
        );
    }
    if wants("a1") {
        let rows = ablations::eager_vs_lazy(quick);
        ablations::report_eager_vs_lazy(&rows);
    }
    if wants("a2") {
        let r = ablations::tsb_index(quick);
        ablations::report_tsb(&r);
    }
    if wants("a3") {
        let rows = ablations::utilization_vs_threshold(quick);
        ablations::report_utilization(&rows);
    }
    if wants("a4") {
        let r = ablations::ptt_gc(quick);
        ablations::report_ptt_gc(&r);
    }
    if wants("a5") {
        let r = ablations::snapshot_reads(quick);
        ablations::report_snapshot_reads(&r);
    }
}
