//! Benchmark driver: regenerates every figure of the paper's evaluation
//! plus the ablations.
//!
//! ```text
//! immortaldb-bench [--quick] [fig5|fig6|a1|a2|a3|a4|a5|all]
//! ```

use immortaldb_bench::{ablations, fig5, fig6};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let what: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let what = if what.is_empty() { vec!["all"] } else { what };
    let wants = |name: &str| what.iter().any(|w| *w == name || *w == "all");

    println!(
        "Immortal DB benchmark harness ({} mode)",
        if quick { "quick" } else { "full" }
    );

    if wants("fig5") {
        // Two regimes: the paper's times were disk-bound (fsync on every
        // commit); the buffered run exposes the raw CPU-path overhead.
        let rows = fig5::run(quick, immortaldb::Durability::Fsync);
        fig5::report("fsync/commit — paper's regime", &rows);
        let rows = fig5::run(quick, immortaldb::Durability::Buffered);
        fig5::report("buffered — CPU-bound", &rows);
        let (conv_s, imm_s) = fig5::run_single_txn_case(if quick { 8_000 } else { 32_000 });
        println!(
            "lowest-overhead case (all records in ONE txn): conventional {conv_s:.3}s, \
             immortal {imm_s:.3}s ({:+.1}%) — paper: \"indistinguishable\"",
            (imm_s / conv_s - 1.0) * 100.0
        );
    }
    if wants("fig6") {
        let series = fig6::run(quick);
        fig6::report(&series);
    }
    if wants("a1") {
        let rows = ablations::eager_vs_lazy(quick);
        ablations::report_eager_vs_lazy(&rows);
    }
    if wants("a2") {
        let r = ablations::tsb_index(quick);
        ablations::report_tsb(&r);
    }
    if wants("a3") {
        let rows = ablations::utilization_vs_threshold(quick);
        ablations::report_utilization(&rows);
    }
    if wants("a4") {
        let r = ablations::ptt_gc(quick);
        ablations::report_ptt_gc(&r);
    }
    if wants("a5") {
        let r = ablations::snapshot_reads(quick);
        ablations::report_snapshot_reads(&r);
    }
}
