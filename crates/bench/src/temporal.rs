//! **Temporal sweep** — the `VERSIONS BETWEEN` range walk vs naive
//! per-timestamp `AS OF` replay, on a deep-history TSB table.
//!
//! Fig. 6-style load: a modest key population updated 100+ times per
//! object under a simulated clock that gives every commit its own 20 ms
//! tick, so "replay every distinct commit time" and "replay every tick"
//! coincide. Enumerating every version inside a time window then has two
//! implementations:
//!
//! * the subsystem's way: **one** TSB range walk
//!   ([`immortaldb::Database::versions_between`]) that prunes key-time
//!   rectangles against the window and visits each page once;
//! * the naive way: a full-table `AS OF` scan at every commit tick in
//!   the window (the only way to see every version through point-in-time
//!   reads).
//!
//! The artifact records page fetches for both; the walk must come out
//! ≥5x cheaper.

use std::sync::Arc;

use immortaldb::{Database, DbConfig, Durability, Isolation, Session, SimClock, Timestamp, Value};
use immortaldb_mobgen::{Generator, Op};
use immortaldb_obs::MetricsSnapshot;

use crate::harness::print_table;

pub struct TemporalResult {
    pub objects: u32,
    pub updates_per_object: u32,
    /// Commits covered by the measured window.
    pub window_commits: usize,
    /// Versions the range walk returned for the window.
    pub versions: usize,
    /// Buffer-pool page fetches: one range walk vs per-tick AS OF replay.
    pub walk_fetches: u64,
    pub replay_fetches: u64,
    /// Distinct pages the TSB walk visited (`tsb.range_scan_pages`).
    pub walk_pages: u64,
    pub walk_ms: f64,
    pub replay_ms: f64,
    pub metrics: MetricsSnapshot,
}

impl TemporalResult {
    pub fn fetch_ratio(&self) -> f64 {
        self.replay_fetches as f64 / (self.walk_fetches.max(1)) as f64
    }
}

pub fn run(quick: bool) -> TemporalResult {
    let (objects, updates_per_object) = if quick { (100, 100) } else { (200, 120) };
    let dir = std::env::temp_dir().join(format!(
        "immortal-bench-temporal-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Small pool (512 KiB): historical pages are not resident, every
    // page the two strategies touch is a real fetch. SimClock advances
    // one tick per commit so commit times are dense and distinct.
    let clock = Arc::new(SimClock::new(1_000_000));
    let db = Database::open(
        DbConfig::new(&dir)
            .pool_pages(64)
            .durability(Durability::Buffered)
            .clock(clock.clone()),
    )
    .expect("open bench db");
    let mut s = Session::new(&db);
    s.execute(
        "CREATE IMMORTAL TABLE MovingObjects \
         (Oid INT PRIMARY KEY, LocationX INT, LocationY INT) USING TSB",
    )
    .expect("create table");

    // Load phase, recording every commit timestamp.
    let events = Generator::events_exact(0x7E3A, objects, updates_per_object);
    let mut commit_ts: Vec<Timestamp> = Vec::with_capacity(events.len());
    for e in &events {
        let mut txn = db.begin(Isolation::Serializable);
        let (oid, x, y) = match e.op {
            Op::Insert { oid, x, y } | Op::Update { oid, x, y } => (oid, x, y),
        };
        let row = vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)];
        match e.op {
            Op::Insert { .. } => db
                .insert_row(&mut txn, "MovingObjects", row)
                .expect("insert"),
            Op::Update { .. } => db
                .update_row(&mut txn, "MovingObjects", row)
                .expect("update"),
        }
        commit_ts.push(db.commit(&mut txn).expect("commit"));
        clock.advance(20);
    }

    // Measured window: the middle ~2% of history — deep enough that its
    // pages are long since evicted, small enough that per-tick replay
    // stays tractable.
    let window = (commit_ts.len() / 50).max(100).min(commit_ts.len());
    let start = (commit_ts.len() - window) / 2;
    let ticks = &commit_ts[start..start + window];
    let lo = Timestamp::new(ticks[0].ttime, 0);
    let hi = Timestamp::as_of_clock(ticks[window - 1].ttime);

    let m = db.metrics();

    // One range walk over the window.
    let f0 = m.buffer.fetches.get();
    let p0 = m.temporal.range_scan_pages.get();
    let t0 = std::time::Instant::now();
    let versions = db
        .versions_between("MovingObjects", lo, hi)
        .expect("range walk");
    let walk_ms = t0.elapsed().as_secs_f64() * 1e3;
    let walk_fetches = m.buffer.fetches.get() - f0;
    let walk_pages = m.temporal.range_scan_pages.get() - p0;

    // Naive replay: a full-table AS OF scan at every commit tick in the
    // window — the only way point-in-time reads can observe every
    // version the walk returned.
    let f1 = m.buffer.fetches.get();
    let t1 = std::time::Instant::now();
    for ts in ticks {
        let mut txn = db.begin_as_of_ts(*ts);
        let _ = db.scan_rows(&mut txn, "MovingObjects").expect("as of scan");
        db.commit(&mut txn).expect("commit");
    }
    let replay_ms = t1.elapsed().as_secs_f64() * 1e3;
    let replay_fetches = m.buffer.fetches.get() - f1;

    let result = TemporalResult {
        objects,
        updates_per_object,
        window_commits: window,
        versions: versions.len(),
        walk_fetches,
        replay_fetches,
        walk_pages,
        walk_ms,
        replay_ms,
        metrics: db.metrics_snapshot(),
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

pub fn report(r: &TemporalResult) {
    let rows = vec![
        vec![
            "VERSIONS BETWEEN range walk".to_string(),
            format!("{}", r.walk_fetches),
            format!("{:.2}", r.walk_ms),
        ],
        vec![
            format!("AS OF replay x{}", r.window_commits),
            format!("{}", r.replay_fetches),
            format!("{:.2}", r.replay_ms),
        ],
    ];
    print_table(
        &format!(
            "Temporal sweep: {} objects x {} updates, {}-commit window, {} versions",
            r.objects, r.updates_per_object, r.window_commits, r.versions
        ),
        &["strategy", "page fetches", "ms"],
        &rows,
    );
    println!(
        "range walk visited {} distinct TSB pages; replay fetched {:.1}x more pages \
         (acceptance floor: 5x)",
        r.walk_pages,
        r.fetch_ratio()
    );
}

pub fn result_json(r: &TemporalResult, quick: bool) -> String {
    format!(
        "{{\"figure\":\"temporal\",\"quick\":{quick},\"objects\":{},\
         \"updates_per_object\":{},\"window_commits\":{},\"versions\":{},\
         \"walk_fetches\":{},\"replay_fetches\":{},\"walk_pages\":{},\
         \"fetch_ratio\":{:.2},\"walk_ms\":{:.4},\"replay_ms\":{:.4},\
         \"metrics\":{}}}\n",
        r.objects,
        r.updates_per_object,
        r.window_commits,
        r.versions,
        r.walk_fetches,
        r.replay_fetches,
        r.walk_pages,
        r.fetch_ratio(),
        r.walk_ms,
        r.replay_ms,
        r.metrics.to_json()
    )
}
