//! **Figure 6** — The effect of insertions/updates on AS OF queries.
//!
//! The paper: 36,000 update transactions over 500/1000/2000/4000 inserted
//! records (so each record has 72/36/18/9 versions), then full-table-scan
//! AS OF queries at increasing depths of history. Expected shape:
//!
//! * near the present, configurations with *fewer* records answer faster
//!   (fewer rows to return);
//! * deep in the past the advantage reverses — more updates per record
//!   mean longer version chains and longer time-split page chains to walk.
//!
//! We capture the engine's commit-timestamp watermark after every 10 % of
//! the updates and scan AS OF each watermark.

use immortaldb::Timestamp;
use immortaldb_mobgen::{Generator, Op};
use immortaldb_obs::MetricsSnapshot;

use crate::harness::{print_table, BenchDb, Mode};

pub struct Fig6Config {
    pub inserts: u32,
    pub updates_per_object: u32,
}

pub struct Fig6Series {
    pub config: Fig6Config,
    /// `(percent of history, scan milliseconds, rows returned)` — percent
    /// counts from the start: 10 % = early history (deep in the page
    /// chains), 100 % = now.
    pub points: Vec<(u32, f64, usize)>,
    /// Engine metrics after the load + all AS OF scans (history-chain
    /// hops, version chain lengths, buffer behaviour under pressure).
    pub metrics: MetricsSnapshot,
}

pub const CONFIGS: [Fig6Config; 4] = [
    Fig6Config {
        inserts: 500,
        updates_per_object: 72,
    },
    Fig6Config {
        inserts: 1000,
        updates_per_object: 36,
    },
    Fig6Config {
        inserts: 2000,
        updates_per_object: 18,
    },
    Fig6Config {
        inserts: 4000,
        updates_per_object: 9,
    },
];

pub fn run(quick: bool) -> Vec<Fig6Series> {
    let scale = if quick { 2 } else { 1 };
    CONFIGS
        .iter()
        .map(|c| {
            run_config(Fig6Config {
                inserts: c.inserts / scale,
                updates_per_object: c.updates_per_object,
            })
        })
        .collect()
}

fn run_config(config: Fig6Config) -> Fig6Series {
    // A deliberately small buffer pool (512 KiB): like the paper's 256 MB
    // testbed, historical pages do not stay resident, so AS OF scans pay
    // real I/O for every time-split chain page they traverse.
    let bench = BenchDb::new_sized("fig6", Mode::Immortal, immortaldb::Durability::Buffered, 64);
    let events = Generator::events_exact(0xF160, config.inserts, config.updates_per_object);
    let total_updates = (config.inserts * config.updates_per_object) as usize;

    // Load, capturing the commit watermark right after the insert phase
    // (0% = the oldest queryable state) and after every 10% of updates.
    let mut watermarks: Vec<(u32, Timestamp)> = Vec::new();
    let mut updates_done = 0usize;
    let mut next_mark = 1u32;
    for e in &events {
        bench.apply_event(e);
        match e.op {
            Op::Insert { .. } => {}
            Op::Update { .. } => {
                if updates_done == 0 {
                    // Not yet recorded: state just after all inserts. The
                    // first update already ran; use its predecessor tick.
                    watermarks.push((0, bench.db.latest_ts()));
                }
                updates_done += 1;
                while next_mark <= 10 && updates_done * 10 >= total_updates * next_mark as usize {
                    watermarks.push((next_mark * 10, bench.db.latest_ts()));
                    next_mark += 1;
                }
            }
        }
    }

    // Full-scan AS OF at each watermark (warm one scan first).
    let mut txn = bench.db.begin_as_of_ts(bench.db.latest_ts());
    let _ = bench.db.scan_rows(&mut txn, "MovingObjects").unwrap();
    bench.db.commit(&mut txn).unwrap();

    let mut points = Vec::new();
    for (pct, ts) in watermarks {
        let mut txn = bench.db.begin_as_of_ts(ts);
        let t0 = std::time::Instant::now();
        let rows = bench.db.scan_rows(&mut txn, "MovingObjects").unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        bench.db.commit(&mut txn).unwrap();
        points.push((pct, ms, rows.len()));
    }
    let metrics = bench.db.metrics_snapshot();
    Fig6Series {
        config,
        points,
        metrics,
    }
}

/// Serialize one series as a JSON object (no trailing newline).
pub fn series_json(s: &Fig6Series) -> String {
    let points: Vec<String> = s
        .points
        .iter()
        .map(|(pct, ms, rows)| format!("{{\"pct\":{pct},\"scan_ms\":{ms:.4},\"rows\":{rows}}}"))
        .collect();
    format!(
        "{{\"inserts\":{},\"updates_per_object\":{},\"points\":[{}],\"metrics\":{}}}",
        s.config.inserts,
        s.config.updates_per_object,
        points.join(","),
        s.metrics.to_json()
    )
}

pub fn report(series: &[Fig6Series]) {
    let headers: Vec<String> = std::iter::once("% of history".to_string())
        .chain(
            series
                .iter()
                .map(|s| format!("{}x{} (ms)", s.config.inserts, s.config.updates_per_object)),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let npoints = series.iter().map(|s| s.points.len()).min().unwrap_or(0);
    let rows: Vec<Vec<String>> = (0..npoints)
        .map(|i| {
            std::iter::once(format!("{}%", series[0].points[i].0))
                .chain(series.iter().map(|s| format!("{:.2}", s.points[i].1)))
                .collect()
        })
        .collect();
    print_table(
        "Figure 6: full-scan AS OF latency vs depth of history \
         (0% = just after the inserts, 100% = now)",
        &header_refs,
        &rows,
    );
    println!(
        "expected shape: at 100% fewer-inserts configs are fastest (fewer rows); \
         deep in history the ordering reverses (longer version/page chains)."
    );
}
