//! **Read-scaling sweep** — aggregate read throughput at 1/2/4/8 reader
//! threads over a deep-history table, answering the ROADMAP's orphaned
//! sharding experiment with the landed design: sharded buffer-pool frame
//! table, miss singleflight, and optimistic page latching on the read
//! path.
//!
//! The workload is the paper's ideal case for latch-free reading: a
//! fully loaded history (every object updated dozens of times), then a
//! read-only phase mixing current-time point reads (snapshot isolation,
//! lock-free) with `AS OF` point reads replayed at random commit
//! timestamps from the load phase. The pool is sized so the working set
//! is resident — the sweep measures latch/shard contention, not disk.
//!
//! The artifact (`BENCH_read_scaling.json`) records reads/s per thread
//! count, speedup vs one reader, and the new concurrency counters
//! (`latch.optimistic_reads`, `latch.optimistic_retries`,
//! `buffer.shard_conflicts`, `buffer.singleflight_waits`). CI enforces a
//! conservative ≥1.5x floor at 4 readers only on multi-core runners —
//! on a single hardware thread the sweep degenerates to time-slicing
//! (the original experiment's mistake was reading that as a regression).

use std::sync::Arc;

use immortaldb::{Database, DbConfig, Durability, Isolation, Session, SimClock, Timestamp, Value};
use immortaldb_mobgen::{Generator, Op};
use immortaldb_obs::MetricsSnapshot;

use crate::harness::print_table;

/// One thread-count point of the sweep.
pub struct ScaleRow {
    pub readers: usize,
    pub total_reads: u64,
    pub elapsed_s: f64,
    pub reads_per_s: f64,
    /// Aggregate throughput relative to the 1-reader row.
    pub speedup: f64,
    /// Deltas of the concurrency counters across this row's run.
    pub optimistic_reads: u64,
    pub optimistic_retries: u64,
    pub pessimistic_fallbacks: u64,
    pub shard_conflicts: u64,
    pub singleflight_waits: u64,
}

pub struct ScalingResult {
    pub objects: u32,
    pub updates_per_object: u32,
    pub ops_per_reader: u64,
    pub shards: usize,
    pub cores: usize,
    pub rows: Vec<ScaleRow>,
    pub metrics: MetricsSnapshot,
}

/// Point reads per AS OF transaction; current-time reads reuse one
/// snapshot transaction per thread. Amortizes `Database::begin`'s global
/// snapshot-table lock so the sweep measures the page-read path.
const BATCH: usize = 64;

pub fn run(quick: bool) -> ScalingResult {
    let (objects, updates_per_object) = if quick { (64u32, 40u32) } else { (128, 80) };
    let ops_per_reader: u64 = if quick { 4_000 } else { 24_000 };
    let dir = std::env::temp_dir().join(format!(
        "immortal-bench-readscale-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Pool large enough that the whole history stays resident: the sweep
    // isolates latch and shard-table behaviour, not disk bandwidth.
    let clock = Arc::new(SimClock::new(1_000_000));
    let db = Database::open(
        DbConfig::new(&dir)
            .pool_pages(8 * 1024)
            .durability(Durability::Buffered)
            .clock(clock.clone()),
    )
    .expect("open bench db");
    let mut s = Session::new(&db);
    s.execute(
        "CREATE IMMORTAL TABLE MovingObjects \
         (Oid INT PRIMARY KEY, LocationX INT, LocationY INT)",
    )
    .expect("create table");

    // Load phase: deep history with distinct commit timestamps.
    let events = Generator::events_exact(0x5CA1E, objects, updates_per_object);
    let mut commit_ts: Vec<Timestamp> = Vec::with_capacity(events.len());
    for e in &events {
        let mut txn = db.begin(Isolation::Serializable);
        let (oid, x, y) = match e.op {
            Op::Insert { oid, x, y } | Op::Update { oid, x, y } => (oid, x, y),
        };
        let row = vec![Value::Int(oid as i32), Value::Int(x), Value::Int(y)];
        match e.op {
            Op::Insert { .. } => db
                .insert_row(&mut txn, "MovingObjects", row)
                .expect("insert"),
            Op::Update { .. } => db
                .update_row(&mut txn, "MovingObjects", row)
                .expect("update"),
        }
        commit_ts.push(db.commit(&mut txn).expect("commit"));
        clock.advance(20);
    }

    let m = db.metrics();
    let mut rows: Vec<ScaleRow> = Vec::new();
    for readers in [1usize, 2, 4, 8] {
        let o0 = m.latch.optimistic_reads.get();
        let r0 = m.latch.optimistic_retries.get();
        let p0 = m.latch.pessimistic_fallbacks.get();
        let c0 = m.buffer.shard_conflicts.get();
        let w0 = m.buffer.singleflight_waits.get();
        let t0 = std::time::Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..readers {
                let db = &db;
                let commit_ts = &commit_ts;
                scope.spawn(move || {
                    reader_loop(db, commit_ts, objects, ops_per_reader, worker as u64);
                });
            }
        });
        let elapsed_s = t0.elapsed().as_secs_f64();
        let total_reads = ops_per_reader * readers as u64;
        let reads_per_s = total_reads as f64 / elapsed_s;
        let speedup = rows
            .first()
            .map(|base: &ScaleRow| reads_per_s / base.reads_per_s)
            .unwrap_or(1.0);
        rows.push(ScaleRow {
            readers,
            total_reads,
            elapsed_s,
            reads_per_s,
            speedup,
            optimistic_reads: m.latch.optimistic_reads.get() - o0,
            optimistic_retries: m.latch.optimistic_retries.get() - r0,
            pessimistic_fallbacks: m.latch.pessimistic_fallbacks.get() - p0,
            shard_conflicts: m.buffer.shard_conflicts.get() - c0,
            singleflight_waits: m.buffer.singleflight_waits.get() - w0,
        });
    }

    let result = ScalingResult {
        objects,
        updates_per_object,
        ops_per_reader,
        shards: db.pool_shards(),
        cores: std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1),
        rows,
        metrics: db.metrics_snapshot(),
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    result
}

/// One reader thread: alternating batches of current-time point reads
/// (snapshot isolation, latch-free `get_as_of` at the snapshot) and
/// AS OF replay at a random commit timestamp from the load phase.
fn reader_loop(db: &Database, commit_ts: &[Timestamp], objects: u32, ops: u64, seed: u64) {
    let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        // xorshift64*: cheap, deterministic per thread.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut cur = db.begin(Isolation::Snapshot);
    let mut done = 0u64;
    while done < ops {
        for _ in 0..BATCH.min((ops - done) as usize) {
            let oid = (next() % objects as u64) as i32;
            let _ = db
                .get_row(&mut cur, "MovingObjects", &Value::Int(oid))
                .expect("current read");
            done += 1;
        }
        if done >= ops {
            break;
        }
        let ts = commit_ts[(next() % commit_ts.len() as u64) as usize];
        let mut asof = db.begin_as_of_ts(ts);
        for _ in 0..BATCH.min((ops - done) as usize) {
            let oid = (next() % objects as u64) as i32;
            let _ = db
                .get_row(&mut asof, "MovingObjects", &Value::Int(oid))
                .expect("as of read");
            done += 1;
        }
        db.commit(&mut asof).expect("commit as of txn");
    }
    db.commit(&mut cur).expect("commit snapshot txn");
}

pub fn report(r: &ScalingResult) {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.readers),
                format!("{:.0}", row.reads_per_s),
                format!("{:.2}x", row.speedup),
                format!("{}", row.optimistic_reads),
                format!("{}", row.optimistic_retries),
                format!("{}", row.shard_conflicts),
            ]
        })
        .collect();
    print_table(
        &format!(
            "Read scaling: {} objects x {} updates, {} reads/thread, {} shards, {} cores",
            r.objects, r.updates_per_object, r.ops_per_reader, r.shards, r.cores
        ),
        &[
            "readers",
            "reads/s",
            "speedup",
            "opt reads",
            "opt retries",
            "shard conflicts",
        ],
        &rows,
    );
    if r.cores < 4 {
        println!(
            "note: only {} hardware thread(s) — speedup reflects time-slicing, \
             not the latch protocol; the CI floor applies on multi-core runners only",
            r.cores
        );
    }
}

pub fn rows_json(rows: &[ScaleRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"readers\":{},\"total_reads\":{},\"elapsed_s\":{:.6},\
                 \"reads_per_s\":{:.1},\"speedup\":{:.4},\
                 \"optimistic_reads\":{},\"optimistic_retries\":{},\
                 \"pessimistic_fallbacks\":{},\"shard_conflicts\":{},\
                 \"singleflight_waits\":{}}}",
                r.readers,
                r.total_reads,
                r.elapsed_s,
                r.reads_per_s,
                r.speedup,
                r.optimistic_reads,
                r.optimistic_retries,
                r.pessimistic_fallbacks,
                r.shard_conflicts,
                r.singleflight_waits
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

pub fn result_json(r: &ScalingResult, quick: bool) -> String {
    format!(
        "{{\"figure\":\"read_scaling\",\"quick\":{quick},\"objects\":{},\
         \"updates_per_object\":{},\"ops_per_reader\":{},\"shards\":{},\
         \"cores\":{},\"rows\":{},\"metrics\":{}}}\n",
        r.objects,
        r.updates_per_object,
        r.ops_per_reader,
        r.shards,
        r.cores,
        rows_json(&r.rows),
        r.metrics.to_json()
    )
}
