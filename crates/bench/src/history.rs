//! **History sweep** — bytes/version and deep `AS OF` latency before and
//! after a history-compaction pass, at several chain depths.
//!
//! Each depth builds a chain-indexed table whose keys are updated
//! `depth` times with a mostly-stable ~120-byte payload, with time-split
//! packing disabled so the version store holds full record images — the
//! engine's behaviour before delta chains existed. One
//! [`immortaldb::Database::compact_history`] pass then rewrites the
//! history pages as delta chains (anchor every 8 versions) and merges
//! single-referrer chain pages.
//!
//! The artifact records, per depth, the bytes/version of the version
//! store and the per-read latency of point-in-time lookups sampled
//! across the whole history, for both states. Acceptance (ISSUE 9): at
//! depth ≥ 100, compaction must cut bytes/version by ≥ 2x without an
//! AS OF latency regression.

use std::sync::Arc;

use immortaldb::{Database, DbConfig, Durability, Session, SimClock, Timestamp, Value};

use crate::harness::print_table;

pub struct DepthRow {
    pub depth: u32,
    pub keys: u32,
    /// Committed versions in the version store (history + current).
    pub versions: u64,
    pub baseline_bpv: f64,
    pub packed_bpv: f64,
    pub baseline_pages: u64,
    pub packed_pages: u64,
    pub pages_rewritten: u64,
    pub pages_freed: u64,
    pub baseline_asof_us: f64,
    pub packed_asof_us: f64,
}

impl DepthRow {
    pub fn reduction(&self) -> f64 {
        self.baseline_bpv / self.packed_bpv.max(f64::EPSILON)
    }

    pub fn latency_ratio(&self) -> f64 {
        self.packed_asof_us / self.baseline_asof_us.max(f64::EPSILON)
    }
}

pub struct HistoryResult {
    pub rows: Vec<DepthRow>,
}

fn payload(seq: u32, oid: u32) -> String {
    // Mostly-stable payload: only the leading counter changes between
    // versions, so consecutive versions share a long common suffix.
    format!("{seq:06}-{oid:02}-{}", "p".repeat(120))
}

/// Point-in-time reads sampled uniformly across the commit history;
/// returns mean µs/read.
fn asof_sweep(db: &Database, commits: &[(Timestamp, u32)], reads: usize) -> f64 {
    let t0 = std::time::Instant::now();
    for i in 0..reads {
        let (ts, oid) = commits[i * (commits.len() - 1) / (reads - 1).max(1)];
        let mut txn = db.begin_as_of_ts(ts);
        let row = db
            .get_row(&mut txn, "Hist", &Value::Int(oid as i32))
            .expect("as of read");
        db.rollback(&mut txn).expect("rollback");
        assert!(row.is_some(), "AS OF read at {ts:?} found nothing");
    }
    t0.elapsed().as_secs_f64() * 1e6 / reads as f64
}

fn run_depth(depth: u32, keys: u32, reads: usize) -> DepthRow {
    let dir = std::env::temp_dir().join(format!(
        "immortal-bench-history-{depth}-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .subsec_nanos()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Small pool: deep history does not stay resident, so both read
    // sweeps pay real page fetches.
    let clock = Arc::new(SimClock::new(1_000_000));
    let db = Database::open(
        DbConfig::new(&dir)
            .pool_pages(64)
            .durability(Durability::Buffered)
            .clock(clock.clone()),
    )
    .expect("open bench db");
    let mut s = Session::new(&db);
    s.execute("CREATE IMMORTAL TABLE Hist (Oid INT PRIMARY KEY, Seq INT, Pad VARCHAR(160))")
        .expect("create table");

    // Build with time-split packing off: history pages keep full record
    // images, exactly what the engine wrote before delta chains.
    let was = immortaldb_storage::version::set_history_packing(false);

    let mut txn = db.begin(immortaldb::Isolation::Serializable);
    let rows: Vec<Vec<Value>> = (0..keys)
        .map(|oid| {
            vec![
                Value::Int(oid as i32),
                Value::Int(0),
                Value::Varchar(payload(0, oid)),
            ]
        })
        .collect();
    db.insert_rows(&mut txn, "Hist", rows).expect("seed rows");
    let seed_ts = db.commit(&mut txn).expect("commit seed");
    clock.advance(20);

    let mut commits: Vec<(Timestamp, u32)> = (0..keys).map(|oid| (seed_ts, oid)).collect();
    for seq in 1..=depth {
        for oid in 0..keys {
            let mut txn = db.begin(immortaldb::Isolation::Serializable);
            db.update_row(
                &mut txn,
                "Hist",
                vec![
                    Value::Int(oid as i32),
                    Value::Int(seq as i32),
                    Value::Varchar(payload(seq, oid)),
                ],
            )
            .expect("update");
            commits.push((db.commit(&mut txn).expect("commit"), oid));
            clock.advance(20);
        }
    }
    // Stamp everything so the version store holds no TID-marked
    // records (compaction skips pages with in-flight versions).
    db.vacuum().expect("vacuum");
    immortaldb_storage::version::set_history_packing(was);

    let before = db.history_stats().expect("history stats");
    let baseline_asof_us = asof_sweep(&db, &commits, reads);

    let stats = db.compact_history().expect("compact");

    let after = db.history_stats().expect("history stats");
    let packed_asof_us = asof_sweep(&db, &commits, reads);

    let row = DepthRow {
        depth,
        keys,
        versions: after.versions,
        baseline_bpv: before.bytes_per_version(),
        packed_bpv: after.bytes_per_version(),
        baseline_pages: before.history_pages,
        packed_pages: after.history_pages,
        pages_rewritten: stats.pages_rewritten,
        pages_freed: stats.pages_freed,
        baseline_asof_us,
        packed_asof_us,
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

pub fn run(quick: bool) -> HistoryResult {
    let depths: &[u32] = if quick { &[10, 100] } else { &[10, 100, 500] };
    let keys = if quick { 6 } else { 8 };
    let reads = if quick { 60 } else { 120 };
    let rows = depths.iter().map(|&d| run_depth(d, keys, reads)).collect();
    HistoryResult { rows }
}

pub fn report(r: &HistoryResult) {
    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|d| {
            vec![
                format!("{}", d.depth),
                format!("{}", d.versions),
                format!("{:.1}", d.baseline_bpv),
                format!("{:.1}", d.packed_bpv),
                format!("{:.2}x", d.reduction()),
                format!("{} -> {}", d.baseline_pages, d.packed_pages),
                format!("{:.1}", d.baseline_asof_us),
                format!("{:.1}", d.packed_asof_us),
            ]
        })
        .collect();
    print_table(
        "History sweep: version-store size and deep AS OF reads, before/after compaction",
        &[
            "depth",
            "versions",
            "bytes/ver",
            "packed b/v",
            "reduction",
            "hist pages",
            "as-of us",
            "packed us",
        ],
        &rows,
    );
    for d in &r.rows {
        println!(
            "depth {:>4}: {} pages rewritten, {} freed; latency ratio {:.2} \
             (acceptance at depth>=100: reduction >= 2x, no AS OF regression)",
            d.depth,
            d.pages_rewritten,
            d.pages_freed,
            d.latency_ratio()
        );
    }
}

pub fn result_json(r: &HistoryResult, quick: bool) -> String {
    let rows: Vec<String> = r
        .rows
        .iter()
        .map(|d| {
            format!(
                "{{\"depth\":{},\"keys\":{},\"versions\":{},\
                 \"baseline_bpv\":{:.2},\"packed_bpv\":{:.2},\"reduction\":{:.2},\
                 \"baseline_pages\":{},\"packed_pages\":{},\
                 \"pages_rewritten\":{},\"pages_freed\":{},\
                 \"baseline_asof_us\":{:.2},\"packed_asof_us\":{:.2},\
                 \"latency_ratio\":{:.3}}}",
                d.depth,
                d.keys,
                d.versions,
                d.baseline_bpv,
                d.packed_bpv,
                d.reduction(),
                d.baseline_pages,
                d.packed_pages,
                d.pages_rewritten,
                d.pages_freed,
                d.baseline_asof_us,
                d.packed_asof_us,
                d.latency_ratio()
            )
        })
        .collect();
    format!(
        "{{\"figure\":\"history\",\"quick\":{quick},\"rows\":[{}]}}\n",
        rows.join(",")
    )
}
