//! Multi-threaded commit-throughput benchmark for the WAL group-commit
//! pipeline: N writer threads each committing single-row transactions,
//! grouped (leader/follower shared fsyncs) vs. per-commit fsync.
//!
//! The interesting number is commits/second at 8 writers: per-commit
//! fsync serializes the hottest path in the engine, while the barrier
//! amortizes one fsync over every committer that arrived during the
//! previous sync.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use immortaldb::{Database, DbConfig, Durability, GroupCommitConfig, Isolation, Session, Value};

use crate::harness::print_table;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct GcRow {
    pub writers: usize,
    pub grouped: bool,
    pub commits: u64,
    pub secs: f64,
    /// fsyncs issued during the measured window.
    pub fsyncs: u64,
    /// Group batches synced (0 when grouping is disabled).
    pub batches: u64,
    /// Mean committers per group batch (1.0 when grouping is disabled).
    pub mean_batch: f64,
}

impl GcRow {
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.secs
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("immortal-bench-gc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_one(writers: usize, commits_per_writer: u64, grouped: bool) -> GcRow {
    let dir = scratch_dir(&format!("{writers}-{grouped}"));
    let db = Database::open(
        DbConfig::new(&dir)
            .pool_pages(4 * 1024)
            .durability(Durability::Fsync)
            .group_commit(GroupCommitConfig {
                enabled: grouped,
                ..GroupCommitConfig::default()
            }),
    )
    .expect("open bench db");
    let mut s = Session::new(&db);
    s.execute("CREATE IMMORTAL TABLE Commits (Id INT PRIMARY KEY, V INT)")
        .expect("create table");

    let m = db.metrics().clone();
    let fsyncs0 = m.wal.fsyncs.get();
    let batches0 = m.wal.group_commits.get();
    let batch_sum0 = m.wal.batch_size.snapshot().sum;

    let db = Arc::new(db);
    let start = Barrier::new(writers + 1);
    let committed = AtomicU64::new(0);
    let t0;
    let secs;
    {
        let db = &db;
        let start = &start;
        let committed = &committed;
        t0 = std::thread::scope(|scope| {
            for w in 0..writers {
                scope.spawn(move || {
                    start.wait();
                    for i in 0..commits_per_writer {
                        // Disjoint keys per writer: pure commit-path
                        // contention, no lock conflicts.
                        let id = (w as u64 * commits_per_writer + i) as i32;
                        let mut txn = db.begin(Isolation::Serializable);
                        db.insert_row(
                            &mut txn,
                            "Commits",
                            vec![Value::Int(id), Value::Int(w as i32)],
                        )
                        .expect("insert");
                        db.commit(&mut txn).expect("commit");
                        committed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            start.wait();
            Instant::now()
        });
        secs = t0.elapsed().as_secs_f64();
    }

    let commits = committed.load(Ordering::Relaxed);
    let fsyncs = m.wal.fsyncs.get() - fsyncs0;
    let batches = m.wal.group_commits.get() - batches0;
    let batch_sum = m.wal.batch_size.snapshot().sum - batch_sum0;
    let mean_batch = if batches > 0 {
        batch_sum as f64 / batches as f64
    } else {
        1.0
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    GcRow {
        writers,
        grouped,
        commits,
        secs,
        fsyncs,
        batches,
        mean_batch,
    }
}

/// Run the full writer sweep, grouped and per-commit.
pub fn run(quick: bool) -> Vec<GcRow> {
    let per_writer: u64 = if quick { 150 } else { 500 };
    let mut rows = Vec::new();
    for &writers in &[1usize, 4, 8, 16] {
        for grouped in [false, true] {
            rows.push(run_one(writers, per_writer, grouped));
        }
    }
    rows
}

pub fn report(rows: &[GcRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.writers.to_string(),
                if r.grouped { "grouped" } else { "per-commit" }.to_string(),
                r.commits.to_string(),
                format!("{:.0}", r.throughput()),
                r.fsyncs.to_string(),
                format!("{:.1}", r.mean_batch),
            ]
        })
        .collect();
    print_table(
        "group commit — commit throughput (fsync durability)",
        &[
            "writers",
            "mode",
            "commits",
            "commits/s",
            "fsyncs",
            "mean batch",
        ],
        &table,
    );
    for &w in &[1usize, 4, 8, 16] {
        let per = rows.iter().find(|r| r.writers == w && !r.grouped);
        let grp = rows.iter().find(|r| r.writers == w && r.grouped);
        if let (Some(p), Some(g)) = (per, grp) {
            println!(
                "  {w:>2} writers: {:.0} -> {:.0} commits/s ({:.2}x)",
                p.throughput(),
                g.throughput(),
                g.throughput() / p.throughput()
            );
        }
    }
}

pub fn rows_json(rows: &[GcRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"writers\":{},\"grouped\":{},\"commits\":{},\"secs\":{:.6},\
                 \"commits_per_sec\":{:.1},\"fsyncs\":{},\"group_commits\":{},\
                 \"mean_batch\":{:.2}}}",
                r.writers,
                r.grouped,
                r.commits,
                r.secs,
                r.throughput(),
                r.fsyncs,
                r.batches,
                r.mean_batch
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}
