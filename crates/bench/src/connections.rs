//! Connection scaling: thread-per-connection vs the readiness reactor.
//!
//! For each fleet size (64 / 256 / 1024 connections, ≥90% idle) both
//! serving models hold the whole fleet while the active minority drives
//! autocommit commits. Measured per configuration:
//!
//! * **process threads** while the fleet is parked — the headline
//!   number. Thread-per-connection must hold one worker thread per open
//!   connection (its `workers` knob *is* its connection capacity), so
//!   its thread count tracks the fleet; the reactor holds every fleet on
//!   the same fixed budget (one event loop + `REACTOR_WORKERS` cores).
//! * resident memory with the fleet parked (thread stacks are the
//!   dominant per-connection cost of the baseline),
//! * commit throughput and client-observed p50/p99 from the active
//!   clients — idle fleets must not tax the hot path in either model.
//!
//! Client-side load threads are identical across models, so the
//! thread/RSS deltas between rows isolate the server's share.

use std::sync::Arc;
use std::time::Instant;

use immortaldb::{Database, DbConfig, Durability, EventTap, Sentinel, Session};
use immortaldb_net::{Client, Server, ServerConfig, ServerModel};

use crate::harness::print_table;

/// Execution cores for the reactor model — fixed across fleet sizes.
const REACTOR_WORKERS: usize = 4;

/// One measured configuration.
#[derive(Debug, Clone)]
pub struct ConnRow {
    pub model: &'static str,
    pub conns: usize,
    pub active: usize,
    /// `Threads:` from /proc/self/status with the fleet parked
    /// (0 where procfs is unavailable).
    pub threads: u64,
    /// `VmRSS:` (KiB) with the fleet parked.
    pub rss_kib: u64,
    pub commits: u64,
    pub secs: f64,
    pub p50_us: u64,
    pub p99_us: u64,
}

impl ConnRow {
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.secs
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("immortal-bench-conns-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn proc_status(field: &str) -> u64 {
    let Ok(text) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    text.lines()
        .find_map(|l| l.strip_prefix(field))
        .and_then(|rest| rest.trim_start_matches(':').split_whitespace().next())
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    sorted_us[((sorted_us.len() - 1) as f64 * p).round() as usize]
}

fn run_one(model: ServerModel, conns: usize, commits_per_active: u64) -> ConnRow {
    let (name, cfg) = match model {
        ServerModel::Reactor => (
            "reactor",
            ServerConfig::new("127.0.0.1:0")
                .workers(REACTOR_WORKERS)
                .max_connections(conns + 16),
        ),
        ServerModel::ThreadPerConn => (
            // The baseline can only hold a connection by parking a
            // worker thread on it, so its pool must cover the fleet.
            "thread-per-conn",
            ServerConfig::new("127.0.0.1:0")
                .model(ServerModel::ThreadPerConn)
                .workers(conns + 16)
                .accept_queue(16),
        ),
    };
    let active = (conns / 16).max(2); // ≤ 6.25% active, ≥ 90% idle
    let dir = scratch_dir(&format!("{name}-{conns}"));
    let db = Arc::new(
        Database::open(
            DbConfig::new(&dir)
                .pool_pages(4 * 1024)
                .durability(Durability::Fsync),
        )
        .expect("open bench db"),
    );
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE Conns (Id INT PRIMARY KEY, V INT)")
            .expect("create table");
    }
    let server = Server::start(Arc::clone(&db), cfg).expect("start server");
    let addr = server.local_addr();

    // Park the idle fleet, then sample what holding it costs.
    let idle: Vec<Client> = (0..conns - active)
        .map(|_| Client::connect(addr).expect("connect idle"))
        .collect();
    let threads = proc_status("Threads");
    let rss_kib = proc_status("VmRSS");

    // Commit load from the active minority.
    let start = std::sync::Barrier::new(active + 1);
    let (results, secs) = std::thread::scope(|scope| {
        let start = &start;
        let handles: Vec<_> = (0..active)
            .map(|w| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect active");
                    let mut lat = Vec::with_capacity(commits_per_active as usize);
                    start.wait();
                    for i in 0..commits_per_active {
                        let id = (w as u64 * commits_per_active + i) as i32;
                        let t0 = Instant::now();
                        c.query_with_backoff(&format!("INSERT INTO Conns VALUES ({id}, {w})"), 64)
                            .expect("insert");
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        let results: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (results, t0.elapsed().as_secs_f64())
    });

    let mut latencies: Vec<u64> = results.into_iter().flatten().collect();
    let commits = latencies.len() as u64;
    latencies.sort_unstable();
    let row = ConnRow {
        model: name,
        conns,
        active,
        threads,
        rss_kib,
        commits,
        secs,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
    };

    drop(idle);
    server.shutdown().expect("shutdown");
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

/// The idle-fleet-tax experiment (the PR's acceptance numbers): the
/// reactor serving 8 active commit clients, measured alone, with a
/// 1016-connection idle fleet parked beside them, and with the fleet
/// AND the isolation sentinel armed. The fleet must not tax the hot
/// path (within 10%) and the sentinel must cost < 5%.
#[derive(Debug, Clone)]
pub struct IdleTaxRow {
    pub label: &'static str,
    pub idle: usize,
    pub sentinel: bool,
    pub commits: u64,
    pub secs: f64,
    pub p50_us: u64,
    pub p99_us: u64,
    /// Sentinel totals for the armed row (0 otherwise).
    pub events_checked: u64,
    pub violations: u64,
}

impl IdleTaxRow {
    pub fn throughput(&self) -> f64 {
        self.commits as f64 / self.secs
    }
}

const TAX_ACTIVE: usize = 8;

fn run_tax(label: &'static str, idle: usize, arm: bool, commits_per_active: u64) -> IdleTaxRow {
    let dir = scratch_dir(&format!("tax-{idle}-{arm}"));
    let tap = arm.then(|| EventTap::new(1 << 18));
    let mut db_cfg = DbConfig::new(&dir)
        .pool_pages(4 * 1024)
        .durability(Durability::Fsync);
    if let Some(tap) = &tap {
        db_cfg = db_cfg.sentinel(Arc::clone(tap));
    }
    let db = Arc::new(Database::open(db_cfg).expect("open bench db"));
    let sentinel = tap.map(|tap| Sentinel::spawn(tap, db.metrics().clone()));
    {
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE Conns (Id INT PRIMARY KEY, V INT)")
            .expect("create table");
    }
    let server = Server::start(
        Arc::clone(&db),
        ServerConfig::new("127.0.0.1:0")
            .workers(REACTOR_WORKERS)
            .max_connections(idle + TAX_ACTIVE + 16),
    )
    .expect("start server");
    let addr = server.local_addr();

    let fleet: Vec<Client> = (0..idle)
        .map(|_| Client::connect(addr).expect("connect idle"))
        .collect();

    let start = std::sync::Barrier::new(TAX_ACTIVE + 1);
    let (results, secs) = std::thread::scope(|scope| {
        let start = &start;
        let handles: Vec<_> = (0..TAX_ACTIVE)
            .map(|w| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect active");
                    let mut lat = Vec::with_capacity(commits_per_active as usize);
                    start.wait();
                    for i in 0..commits_per_active {
                        let id = (w as u64 * commits_per_active + i) as i32;
                        let t0 = Instant::now();
                        c.query_with_backoff(&format!("INSERT INTO Conns VALUES ({id}, {w})"), 64)
                            .expect("insert");
                        lat.push(t0.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        start.wait();
        let t0 = Instant::now();
        let results: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        (results, t0.elapsed().as_secs_f64())
    });

    let mut latencies: Vec<u64> = results.into_iter().flatten().collect();
    let commits = latencies.len() as u64;
    latencies.sort_unstable();
    let (p50_us, p99_us) = (percentile(&latencies, 0.50), percentile(&latencies, 0.99));

    drop(fleet);
    server.shutdown().expect("shutdown");
    let (events_checked, violations) = match sentinel {
        Some(s) => {
            let r = s.stop();
            (r.events, r.violation_count)
        }
        None => (0, 0),
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    IdleTaxRow {
        label,
        idle,
        sentinel: arm,
        commits,
        secs,
        p50_us,
        p99_us,
        events_checked,
        violations,
    }
}

pub fn idle_tax(quick: bool) -> Vec<IdleTaxRow> {
    let per_active: u64 = if quick { 400 } else { 2000 };
    // Interleaved rounds, best-of-N per configuration: single runs on a
    // shared host carry +/- 25% noise and the host drifts over a sweep,
    // so configs run round-robin (drift hits all three equally) and the
    // best round approximates each configuration's capability.
    let reps = if quick { 2 } else { 3 };
    let configs: [(&'static str, usize, bool); 3] = [
        ("8 clients alone", 0, false),
        ("+1016 idle conns", 1016, false),
        ("+1016 idle, sentinel armed", 1016, true),
    ];
    let mut best: Vec<Option<IdleTaxRow>> = vec![None, None, None];
    for _ in 0..reps {
        for (i, &(label, idle, arm)) in configs.iter().enumerate() {
            let row = run_tax(label, idle, arm, per_active);
            if best[i]
                .as_ref()
                .map(|b| row.throughput() > b.throughput())
                .unwrap_or(true)
            {
                best[i] = Some(row);
            }
        }
    }
    best.into_iter().map(|r| r.expect("one rep ran")).collect()
}

pub fn report_idle_tax(rows: &[IdleTaxRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.idle.to_string(),
                if r.sentinel { "yes" } else { "no" }.to_string(),
                format!("{:.0}", r.throughput()),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
                r.events_checked.to_string(),
                r.violations.to_string(),
            ]
        })
        .collect();
    print_table(
        "connections — idle-fleet tax on the reactor hot path (8 active clients)",
        &[
            "configuration",
            "idle",
            "sentinel",
            "commits/s",
            "p50 us",
            "p99 us",
            "checked",
            "violations",
        ],
        &table,
    );
    if let [base, fleet, armed] = rows {
        println!(
            "  idle-fleet tax: {:.1}% (acceptance: within 10%); sentinel overhead: {:.1}% \
             (acceptance: < 5%)",
            (1.0 - fleet.throughput() / base.throughput()) * 100.0,
            (1.0 - armed.throughput() / fleet.throughput()) * 100.0,
        );
    }
}

pub fn idle_tax_json(rows: &[IdleTaxRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"label\":\"{}\",\"idle\":{},\"sentinel\":{},\"commits\":{},\
                 \"secs\":{:.6},\"commits_per_sec\":{:.1},\"p50_us\":{},\"p99_us\":{},\
                 \"events_checked\":{},\"violations\":{}}}",
                r.label,
                r.idle,
                r.sentinel,
                r.commits,
                r.secs,
                r.throughput(),
                r.p50_us,
                r.p99_us,
                r.events_checked,
                r.violations
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

/// The fleet sweep, both models.
pub fn run(quick: bool) -> Vec<ConnRow> {
    let per_active: u64 = if quick { 150 } else { 600 };
    let mut rows = Vec::new();
    for &conns in &[64usize, 256, 1024] {
        for model in [ServerModel::ThreadPerConn, ServerModel::Reactor] {
            rows.push(run_one(model, conns, per_active));
        }
    }
    rows
}

pub fn report(rows: &[ConnRow]) {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.to_string(),
                r.conns.to_string(),
                r.active.to_string(),
                r.threads.to_string(),
                format!("{:.0}", r.rss_kib as f64 / 1024.0),
                format!("{:.0}", r.throughput()),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
            ]
        })
        .collect();
    print_table(
        "connections — fleet scaling, thread-per-conn vs reactor",
        &[
            "model",
            "conns",
            "active",
            "threads",
            "RSS MiB",
            "commits/s",
            "p50 us",
            "p99 us",
        ],
        &table,
    );
    for &conns in &[64usize, 256, 1024] {
        let tpc = rows
            .iter()
            .find(|r| r.model == "thread-per-conn" && r.conns == conns);
        let rea = rows
            .iter()
            .find(|r| r.model == "reactor" && r.conns == conns);
        if let (Some(t), Some(r)) = (tpc, rea) {
            println!(
                "  {conns:>4} conns: {} vs {} threads ({:.0}x fewer), throughput {:.2}x of baseline",
                t.threads,
                r.threads,
                t.threads as f64 / (r.threads.max(1)) as f64,
                r.throughput() / t.throughput().max(1e-9),
            );
        }
    }
}

pub fn rows_json(rows: &[ConnRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"model\":\"{}\",\"conns\":{},\"active\":{},\"threads\":{},\
                 \"rss_kib\":{},\"commits\":{},\"secs\":{:.6},\"commits_per_sec\":{:.1},\
                 \"p50_us\":{},\"p99_us\":{}}}",
                r.model,
                r.conns,
                r.active,
                r.threads,
                r.rss_kib,
                r.commits,
                r.secs,
                r.throughput(),
                r.p50_us,
                r.p99_us
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}
