//! Criterion microbenchmarks: single-operation costs of the engine's
//! hot paths (conventional vs immortal inserts/updates, current vs AS OF
//! reads, lazy vs eager commit).

use criterion::{criterion_group, criterion_main, Criterion};
use immortaldb::{Isolation, Value};
use immortaldb_bench::{BenchDb, Mode};
use immortaldb_mobgen::Generator;

fn bench_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_record_txn");
    group.sample_size(20);

    for (name, mode) in [
        ("conventional_update", Mode::Conventional),
        ("immortal_update_lazy", Mode::Immortal),
        ("immortal_update_eager", Mode::ImmortalEager),
    ] {
        let bench = BenchDb::new("micro-w", mode);
        let events = Generator::events_exact(1, 100, 1);
        for e in &events {
            bench.apply_event(e);
        }
        let mut x = 0i32;
        group.bench_function(name, |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                let mut txn = bench.db.begin(Isolation::Serializable);
                bench
                    .db
                    .update_row(
                        &mut txn,
                        "MovingObjects",
                        vec![Value::Int((x % 100).abs()), Value::Int(x), Value::Int(0)],
                    )
                    .unwrap();
                bench.db.commit(&mut txn).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("point_read");
    group.sample_size(30);

    let bench = BenchDb::new("micro-r", Mode::Immortal);
    // 200 keys, 40 versions each.
    let events = Generator::events_exact(2, 200, 40);
    let mut early = None;
    for (i, e) in events.iter().enumerate() {
        bench.apply_event(e);
        if i == 200 * 5 {
            early = Some(bench.db.latest_ts());
        }
    }
    let early = early.unwrap();
    let now = bench.db.latest_ts();

    group.bench_function("current", |b| {
        let mut txn = bench.db.begin(Isolation::Snapshot);
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % 200;
            bench
                .db
                .get_row(&mut txn, "MovingObjects", &Value::Int(k))
                .unwrap()
        });
        bench.db.commit(&mut txn).unwrap();
    });
    group.bench_function("as_of_recent", |b| {
        let mut txn = bench.db.begin_as_of_ts(now);
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % 200;
            bench
                .db
                .get_row(&mut txn, "MovingObjects", &Value::Int(k))
                .unwrap()
        });
        bench.db.commit(&mut txn).unwrap();
    });
    group.bench_function("as_of_deep_history", |b| {
        let mut txn = bench.db.begin_as_of_ts(early);
        let mut k = 0;
        b.iter(|| {
            k = (k + 1) % 200;
            bench
                .db
                .get_row(&mut txn, "MovingObjects", &Value::Int(k))
                .unwrap()
        });
        bench.db.commit(&mut txn).unwrap();
    });
    group.finish();
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_scan");
    group.sample_size(10);
    let bench = BenchDb::new("micro-s", Mode::Immortal);
    let events = Generator::events_exact(3, 500, 18);
    let mut early = None;
    for (i, e) in events.iter().enumerate() {
        bench.apply_event(e);
        if i == 500 * 3 {
            early = Some(bench.db.latest_ts());
        }
    }
    let early = early.unwrap();
    group.bench_function("scan_current", |b| {
        b.iter(|| {
            let mut txn = bench.db.begin(Isolation::Snapshot);
            let rows = bench.db.scan_rows(&mut txn, "MovingObjects").unwrap();
            bench.db.commit(&mut txn).unwrap();
            rows.len()
        })
    });
    group.bench_function("scan_as_of_history", |b| {
        b.iter(|| {
            let mut txn = bench.db.begin_as_of_ts(early);
            let rows = bench.db.scan_rows(&mut txn, "MovingObjects").unwrap();
            bench.db.commit(&mut txn).unwrap();
            rows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_writes, bench_reads, bench_scans);
criterion_main!(benches);
