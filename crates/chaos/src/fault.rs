//! Deterministic fault-injecting VFS.
//!
//! [`FaultVfs`] wraps any [`Vfs`] and injects, from a single seed:
//!
//! * **torn writes** — a crashing write persists only a short prefix of
//!   its buffer, modelling a page write interrupted mid-sector;
//! * **fsync errors** — `sync` fails at a configurable rate while the
//!   preceding writes survive (the bytes reached the OS, the barrier
//!   didn't);
//! * **transient read errors** — `read_exact_at` fails at a configurable
//!   rate without corrupting anything;
//! * **crash cut-points** — after a chosen operation the whole "file
//!   system" goes offline: every subsequent operation fails until
//!   [`FaultState::clear_crash`], modelling a process kill. Bytes written
//!   before the cut survive; buffered engine state does not.
//!
//! All scheduling is deterministic per seed (the harness is
//! single-threaded), every injected fault is counted, and the counters
//! are mirrored into a shared [`MetricsRegistry`] (`faults.*`) so one
//! `SHOW STATS` snapshot covers the engine and the fault layer.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use immortaldb_common::{Error, Result};
use immortaldb_obs::MetricsRegistry;
use immortaldb_storage::vfs::{Vfs, VfsFile};

/// `crash_at` value meaning "no cut-point armed".
const DISARMED: u64 = u64::MAX;

/// How many bytes of a torn write actually reach the file. Short enough
/// that any page whose body changed fails CRC verification afterwards,
/// and any multi-frame WAL flush is cut mid-record.
pub const TEAR_PREFIX: usize = 128;

fn offline() -> Error {
    Error::Io(std::io::Error::other(
        "simulated crash: file system offline",
    ))
}

/// Shared mutable state of a [`FaultVfs`]: the operation counter, the
/// armed cut-point, the error rates and the fault counters. The harness
/// keeps a handle to arm crashes and read counters while the engine owns
/// the VFS.
pub struct FaultState {
    /// Mutating operations performed (writes, syncs, atomic file writes).
    ops: AtomicU64,
    /// Crash when `ops` reaches this value.
    crash_at: AtomicU64,
    /// Crash on the next write whose path contains this substring
    /// (e.g. `"data.idb"` to target a data-page write).
    crash_on_path: Mutex<Option<String>>,
    /// Whether the crashing write is torn (prefix persisted) or lost.
    tear_on_crash: AtomicBool,
    crashed: AtomicBool,
    /// Rate-based faults only fire while enabled (the harness disables
    /// them across recovery so reopening is deterministic).
    enabled: AtomicBool,
    read_error_rate: Mutex<f64>,
    fsync_error_rate: Mutex<f64>,
    rng: Mutex<StdRng>,
    pub torn_writes: AtomicU64,
    pub fsync_errors: AtomicU64,
    pub read_errors: AtomicU64,
    pub crashes: AtomicU64,
    metrics: Mutex<Option<MetricsRegistry>>,
}

impl FaultState {
    fn new(seed: u64) -> FaultState {
        FaultState {
            ops: AtomicU64::new(0),
            crash_at: AtomicU64::new(DISARMED),
            crash_on_path: Mutex::new(None),
            tear_on_crash: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            enabled: AtomicBool::new(true),
            read_error_rate: Mutex::new(0.0),
            fsync_error_rate: Mutex::new(0.0),
            rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17)),
            torn_writes: AtomicU64::new(0),
            fsync_errors: AtomicU64::new(0),
            read_errors: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            metrics: Mutex::new(None),
        }
    }

    /// Mirror fault counters into `metrics.faults.*`.
    pub fn set_metrics(&self, metrics: MetricsRegistry) {
        *self.metrics.lock() = Some(metrics);
    }

    /// Probability that a read / fsync fails (while enabled).
    pub fn set_error_rates(&self, read: f64, fsync: f64) {
        *self.read_error_rate.lock() = read;
        *self.fsync_error_rate.lock() = fsync;
    }

    /// Enable rate-based faults and armed cut-points.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Disable all fault injection (pass-through), e.g. during recovery.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Mutating operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Crash once `delta` more mutating operations have happened.
    pub fn arm_crash_in(&self, delta: u64, tear: bool) {
        self.crash_at.store(
            self.op_count().saturating_add(delta.max(1)),
            Ordering::SeqCst,
        );
        self.tear_on_crash.store(tear, Ordering::SeqCst);
    }

    /// Crash on the next write to a file whose path contains `substr`
    /// (`"data.idb"` targets a data-page write; `"wal"` a log write).
    pub fn arm_crash_on_write_to(&self, substr: &str, tear: bool) {
        *self.crash_on_path.lock() = Some(substr.to_string());
        self.tear_on_crash.store(tear, Ordering::SeqCst);
    }

    /// Trip the crash immediately (a plain process kill, no torn write).
    pub fn force_crash(&self) {
        self.trip();
    }

    /// Whether a crash has tripped and the VFS is offline.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Bring the "file system" back online (before reopening the engine);
    /// disarms any pending cut-point.
    pub fn clear_crash(&self) {
        self.crashed.store(false, Ordering::SeqCst);
        self.crash_at.store(DISARMED, Ordering::SeqCst);
        *self.crash_on_path.lock() = None;
        self.tear_on_crash.store(false, Ordering::SeqCst);
    }

    fn trip(&self) {
        if !self.crashed.swap(true, Ordering::SeqCst) {
            self.crashes.fetch_add(1, Ordering::SeqCst);
            if let Some(m) = self.metrics.lock().as_ref() {
                m.faults.crashes.inc();
            }
        }
    }

    fn count_torn(&self) {
        self.torn_writes.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = self.metrics.lock().as_ref() {
            m.faults.torn_writes.inc();
        }
    }

    fn count_fsync_error(&self) {
        self.fsync_errors.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = self.metrics.lock().as_ref() {
            m.faults.fsync_errors.inc();
        }
    }

    fn count_read_error(&self) {
        self.read_errors.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = self.metrics.lock().as_ref() {
            m.faults.read_errors.inc();
        }
    }

    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Count one mutating op; true if it is the armed cut-point.
    fn tick_crashes(&self) -> bool {
        let op = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
        self.enabled() && op >= self.crash_at.load(Ordering::SeqCst)
    }

    fn path_triggers_crash(&self, path: &Path) -> bool {
        if !self.enabled() {
            return false;
        }
        let guard = self.crash_on_path.lock();
        match guard.as_ref() {
            Some(sub) => path.to_string_lossy().contains(sub.as_str()),
            None => false,
        }
    }

    fn draw_read_error(&self) -> bool {
        if !self.enabled() {
            return false;
        }
        let rate = *self.read_error_rate.lock();
        rate > 0.0 && self.rng.lock().gen_bool(rate)
    }

    fn draw_fsync_error(&self) -> bool {
        if !self.enabled() {
            return false;
        }
        let rate = *self.fsync_error_rate.lock();
        rate > 0.0 && self.rng.lock().gen_bool(rate)
    }
}

/// A [`Vfs`] that injects deterministic faults around an inner VFS.
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<FaultState>,
}

impl FaultVfs {
    pub fn new(inner: Arc<dyn Vfs>, seed: u64) -> FaultVfs {
        FaultVfs {
            inner,
            state: Arc::new(FaultState::new(seed)),
        }
    }

    /// Wrap the production `std::fs` VFS.
    pub fn wrap_std(seed: u64) -> FaultVfs {
        FaultVfs::new(immortaldb_storage::vfs::std_fs(), seed)
    }

    /// Control handle shared with the harness.
    pub fn state(&self) -> Arc<FaultState> {
        Arc::clone(&self.state)
    }
}

struct FaultFile {
    inner: Arc<dyn VfsFile>,
    path: PathBuf,
    state: Arc<FaultState>,
}

impl FaultFile {
    /// Persist only [`TEAR_PREFIX`] bytes of the crashing write.
    fn tear(&self, data: &[u8], offset: u64) {
        let cut = TEAR_PREFIX.min(data.len().saturating_sub(1)).max(1);
        let _ = self.inner.write_all_at(&data[..cut], offset);
        self.state.count_torn();
    }
}

impl VfsFile for FaultFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        if self.state.crashed() {
            return Err(offline());
        }
        if self.state.draw_read_error() {
            self.state.count_read_error();
            return Err(Error::Io(std::io::Error::other(
                "injected transient read error",
            )));
        }
        self.inner.read_exact_at(buf, offset)
    }

    fn write_all_at(&self, data: &[u8], offset: u64) -> Result<()> {
        if self.state.crashed() {
            return Err(offline());
        }
        let cut_point = self.state.tick_crashes();
        let path_hit = self.state.path_triggers_crash(&self.path);
        if cut_point || path_hit {
            self.state.trip();
            if self.state.tear_on_crash.load(Ordering::SeqCst) {
                self.tear(data, offset);
            }
            return Err(offline());
        }
        self.inner.write_all_at(data, offset)
    }

    fn sync(&self) -> Result<()> {
        if self.state.crashed() {
            return Err(offline());
        }
        if self.state.tick_crashes() {
            self.state.trip();
            return Err(offline());
        }
        if self.state.draw_fsync_error() {
            self.state.count_fsync_error();
            return Err(Error::Io(std::io::Error::other("injected fsync failure")));
        }
        self.inner.sync()
    }

    fn len(&self) -> Result<u64> {
        if self.state.crashed() {
            return Err(offline());
        }
        self.inner.len()
    }

    fn set_len(&self, len: u64) -> Result<()> {
        if self.state.crashed() {
            return Err(offline());
        }
        self.inner.set_len(len)
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>> {
        if self.state.crashed() {
            return Err(offline());
        }
        Ok(Arc::new(FaultFile {
            inner: self.inner.open(path)?,
            path: path.to_path_buf(),
            state: Arc::clone(&self.state),
        }))
    }

    fn read_file(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        if self.state.crashed() {
            return Err(offline());
        }
        self.inner.read_file(path)
    }

    fn write_file_atomic(&self, path: &Path, data: &[u8]) -> Result<()> {
        if self.state.crashed() {
            return Err(offline());
        }
        // Atomic replace crashes whole (temp file + rename): the old
        // content survives, never a prefix.
        if self.state.tick_crashes() || self.state.path_triggers_crash(path) {
            self.state.trip();
            return Err(offline());
        }
        self.inner.write_file_atomic(path, data)
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        if self.state.crashed() {
            return Err(offline());
        }
        self.inner.remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("immortal-fault-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn rate_faults_fire_and_are_counted() {
        let path = tmp("rates");
        let vfs = FaultVfs::wrap_std(7);
        let state = vfs.state();
        state.set_error_rates(1.0, 1.0);
        let f = vfs.open(&path).unwrap();
        f.write_all_at(b"payload", 0).unwrap();
        let mut buf = [0u8; 7];
        assert!(f.read_exact_at(&mut buf, 0).is_err());
        assert!(f.sync().is_err());
        assert_eq!(state.read_errors.load(Ordering::SeqCst), 1);
        assert_eq!(state.fsync_errors.load(Ordering::SeqCst), 1);
        // Faults off: everything works again, nothing was corrupted.
        state.set_error_rates(0.0, 0.0);
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"payload");
        f.sync().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn cut_point_crash_takes_fs_offline_until_cleared() {
        let path = tmp("cut");
        let vfs = FaultVfs::wrap_std(7);
        let state = vfs.state();
        let f = vfs.open(&path).unwrap();
        f.write_all_at(b"before", 0).unwrap();
        state.arm_crash_in(2, false);
        f.write_all_at(b"x", 6).unwrap(); // op 2 of 3: still fine
        assert!(f.write_all_at(b"lost", 7).is_err()); // cut-point
        assert!(state.crashed());
        assert_eq!(state.crashes.load(Ordering::SeqCst), 1);
        // Everything fails while offline.
        let mut buf = [0u8; 6];
        assert!(f.read_exact_at(&mut buf, 0).is_err());
        assert!(f.sync().is_err());
        assert!(vfs.open(&path).is_err());
        // Back online: pre-crash bytes survived, the lost write did not.
        state.clear_crash();
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"before");
        assert_eq!(f.len().unwrap(), 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_persists_only_a_prefix() {
        let path = tmp("tear");
        let vfs = FaultVfs::wrap_std(7);
        let state = vfs.state();
        let f = vfs.open(&path).unwrap();
        f.write_all_at(&vec![0xAAu8; 8192], 0).unwrap();
        state.arm_crash_on_write_to("fault-tear", true);
        assert!(f.write_all_at(&vec![0xBBu8; 8192], 0).is_err());
        assert_eq!(state.torn_writes.load(Ordering::SeqCst), 1);
        state.clear_crash();
        let mut buf = vec![0u8; 8192];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert!(buf[..TEAR_PREFIX].iter().all(|&b| b == 0xBB));
        assert!(buf[TEAR_PREFIX..].iter().all(|&b| b == 0xAA));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn determinism_per_seed() {
        let runs: Vec<Vec<bool>> = (0..2)
            .map(|_| {
                let vfs = FaultVfs::wrap_std(1234);
                let state = vfs.state();
                state.set_error_rates(0.3, 0.0);
                let path = tmp("det");
                let f = vfs.open(&path).unwrap();
                f.write_all_at(b"abcdef", 0).unwrap();
                let mut buf = [0u8; 6];
                (0..64)
                    .map(|_| f.read_exact_at(&mut buf, 0).is_err())
                    .collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert!(runs[0].iter().any(|&e| e), "rate 0.3 over 64 draws");
        assert!(!runs[0].iter().all(|&e| e));
    }
}
