//! Crash-recovery torture harness CLI.
//!
//! ```text
//! cargo run -p immortaldb-chaos --bin torture -- --seed 42 --ops 2000 --crashes 25
//! cargo run -p immortaldb-chaos --bin torture -- --threads 4 --seed 42 --rounds 6
//! ```
//!
//! With `--threads N` the harness switches to the multi-writer mode:
//! N concurrent committers share group-commit batches and every crash
//! cuts mid-batch. Exits non-zero if any recovery invariant was
//! violated.

use std::process::ExitCode;

use immortaldb_chaos::{run, run_mt, MtTortureConfig, TortureConfig};

const USAGE: &str = "\
torture — deterministic crash-recovery torture harness for Immortal DB

USAGE:
    torture [OPTIONS]

OPTIONS:
    --seed <u64>              RNG seed for workload and fault schedule [default: 42]
    --ops <n>                 transactions to attempt [default: 500]
    --crashes <n>             scheduled crash/recover episodes [default: 5]
    --keys <n>                distinct primary keys in play [default: 24]
    --pool-pages <n>          buffer pool capacity in pages [default: 16]
    --read-error-rate <f64>   transient read fault probability [default: 0.001]
    --fsync-error-rate <f64>  fsync fault probability [default: 0.002]
    --no-page-images          disable page-image logging (also disables torn writes)
    --verbose                 narrate episodes as they happen

MULTI-WRITER MODE (group-commit batches crashed mid-flight):
    --threads <n>             concurrent writer threads; selects this mode
    --rounds <n>              crash/recover rounds [default: 6]
    --txns-per-round <n>      commit attempts per thread per round [default: 60]
    --keys-per-thread <n>     keys owned by each writer [default: 4]

    -h, --help                print this help
";

fn parse<T: std::str::FromStr>(flag: &str, val: Option<String>) -> Result<T, String> {
    let raw = val.ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: invalid value {raw:?}"))
}

enum Mode {
    Single(TortureConfig),
    Multi(MtTortureConfig),
}

fn parse_args() -> Result<Option<Mode>, String> {
    let mut args = std::env::args().skip(1);
    let mut cfg = TortureConfig::new(42);
    let mut mt = MtTortureConfig::new(42);
    let mut threads: Option<usize> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                cfg.seed = parse("--seed", args.next())?;
                mt.seed = cfg.seed;
            }
            "--ops" => cfg.ops = parse("--ops", args.next())?,
            "--crashes" => cfg.crashes = parse("--crashes", args.next())?,
            "--keys" => cfg.keys = parse("--keys", args.next())?,
            "--pool-pages" => cfg.pool_pages = parse("--pool-pages", args.next())?,
            "--read-error-rate" => cfg.read_error_rate = parse("--read-error-rate", args.next())?,
            "--fsync-error-rate" => {
                cfg.fsync_error_rate = parse("--fsync-error-rate", args.next())?
            }
            "--no-page-images" => cfg.page_image_logging = false,
            "--verbose" => {
                cfg.verbose = true;
                mt.verbose = true;
            }
            "--threads" => threads = Some(parse("--threads", args.next())?),
            "--rounds" => mt.rounds = parse("--rounds", args.next())?,
            "--txns-per-round" => mt.txns_per_round = parse("--txns-per-round", args.next())?,
            "--keys-per-thread" => mt.keys_per_thread = parse("--keys-per-thread", args.next())?,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    match threads {
        Some(n) if n >= 1 => {
            mt.threads = n;
            Ok(Some(Mode::Multi(mt)))
        }
        Some(_) => Err("--threads must be at least 1".into()),
        None => Ok(Some(Mode::Single(cfg))),
    }
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(Some(mode)) => mode,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let (passed, violations) = match mode {
        Mode::Single(cfg) => {
            println!(
                "torture: seed={} ops={} crashes={} keys={} pool_pages={} page_images={}",
                cfg.seed, cfg.ops, cfg.crashes, cfg.keys, cfg.pool_pages, cfg.page_image_logging
            );
            let report = run(cfg);
            println!("{report}");
            (report.passed(), report.violations.len())
        }
        Mode::Multi(cfg) => {
            println!(
                "torture (multi-writer): seed={} threads={} rounds={} txns_per_round={} \
                 keys_per_thread={}",
                cfg.seed, cfg.threads, cfg.rounds, cfg.txns_per_round, cfg.keys_per_thread
            );
            let report = run_mt(cfg);
            println!("{report}");
            (report.passed(), report.violations.len())
        }
    };
    if passed {
        println!("RESULT: PASS (zero invariant violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!("RESULT: FAIL ({violations} invariant violations)");
        ExitCode::FAILURE
    }
}
