//! Crash-recovery torture harness CLI.
//!
//! ```text
//! cargo run -p immortaldb-chaos --bin torture -- --seed 42 --ops 2000 --crashes 25
//! ```
//!
//! Exits non-zero if any recovery invariant was violated.

use std::process::ExitCode;

use immortaldb_chaos::{run, TortureConfig};

const USAGE: &str = "\
torture — deterministic crash-recovery torture harness for Immortal DB

USAGE:
    torture [OPTIONS]

OPTIONS:
    --seed <u64>              RNG seed for workload and fault schedule [default: 42]
    --ops <n>                 transactions to attempt [default: 500]
    --crashes <n>             scheduled crash/recover episodes [default: 5]
    --keys <n>                distinct primary keys in play [default: 24]
    --pool-pages <n>          buffer pool capacity in pages [default: 16]
    --read-error-rate <f64>   transient read fault probability [default: 0.001]
    --fsync-error-rate <f64>  fsync fault probability [default: 0.002]
    --no-page-images          disable page-image logging (also disables torn writes)
    --verbose                 narrate episodes as they happen
    -h, --help                print this help
";

fn parse<T: std::str::FromStr>(flag: &str, val: Option<String>) -> Result<T, String> {
    let raw = val.ok_or_else(|| format!("{flag} requires a value"))?;
    raw.parse()
        .map_err(|_| format!("{flag}: invalid value {raw:?}"))
}

fn parse_args() -> Result<Option<TortureConfig>, String> {
    let mut args = std::env::args().skip(1);
    let mut cfg = TortureConfig::new(42);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => cfg.seed = parse("--seed", args.next())?,
            "--ops" => cfg.ops = parse("--ops", args.next())?,
            "--crashes" => cfg.crashes = parse("--crashes", args.next())?,
            "--keys" => cfg.keys = parse("--keys", args.next())?,
            "--pool-pages" => cfg.pool_pages = parse("--pool-pages", args.next())?,
            "--read-error-rate" => cfg.read_error_rate = parse("--read-error-rate", args.next())?,
            "--fsync-error-rate" => {
                cfg.fsync_error_rate = parse("--fsync-error-rate", args.next())?
            }
            "--no-page-images" => cfg.page_image_logging = false,
            "--verbose" => cfg.verbose = true,
            "-h" | "--help" => return Ok(None),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Some(cfg))
}

fn main() -> ExitCode {
    let cfg = match parse_args() {
        Ok(Some(cfg)) => cfg,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    println!(
        "torture: seed={} ops={} crashes={} keys={} pool_pages={} page_images={}",
        cfg.seed, cfg.ops, cfg.crashes, cfg.keys, cfg.pool_pages, cfg.page_image_logging
    );
    let report = run(cfg);
    println!("{report}");
    if report.passed() {
        println!("RESULT: PASS (zero invariant violations)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "RESULT: FAIL ({} invariant violations)",
            report.violations.len()
        );
        ExitCode::FAILURE
    }
}
