//! Multi-writer crash torture: crash cut-points in the middle of a
//! group-commit batch.
//!
//! `N` writer threads hammer disjoint key ranges of one table through
//! the leader/follower commit pipeline while the fault layer arms a
//! crash a few I/O operations ahead — so the file system dies while a
//! batch fsync is in flight and some committers have been acknowledged
//! but others are still parked on the barrier. After each crash the
//! engine is reopened (full ARIES recovery) and the harness asserts the
//! two promises group commit must keep under fire:
//!
//! * **acked ⇒ durable** — every commit whose `commit()` call returned
//!   `Ok(ts)` before the crash is present after recovery: each of its
//!   keys has a version at exactly `ts` carrying the committed value;
//! * **unacked ⇒ all-or-nothing** — a commit that was submitted but
//!   never acknowledged (its `commit()` returned an error, e.g. the
//!   batch leader's fsync died) may have won or lost the race to the
//!   log, but never partially: either every key it wrote has a version
//!   with its (globally unique) value at one shared timestamp, or none
//!   does. Writes of transactions that never reached `commit()` must
//!   all be gone.
//!
//! Keys are partitioned per thread so writers never conflict — every
//! interleaving is serializable and the shadow bookkeeping needs no
//! cross-thread ordering, while the *log* still interleaves all
//! writers' records inside shared batches (the interesting part).

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use immortaldb::{
    Clock, Database, DbConfig, Durability, Isolation, SimClock, TableKind, Timestamp, Value,
};
use immortaldb_obs::MetricsRegistry;
use immortaldb_storage::vfs::Vfs;

use crate::fault::{FaultState, FaultVfs};

const TABLE: &str = "mt_torture_kv";

/// Multi-writer torture parameters. The fault schedule is deterministic
/// per `seed`; the thread interleaving is not, so the checks are
/// property-based (they hold for every interleaving).
#[derive(Debug, Clone)]
pub struct MtTortureConfig {
    pub seed: u64,
    /// Concurrent writer threads (each owns a disjoint key range).
    pub threads: usize,
    /// Crash/recover rounds.
    pub rounds: u32,
    /// Commit attempts per thread per round.
    pub txns_per_round: u32,
    /// Keys owned by each thread.
    pub keys_per_thread: i32,
    /// Working directory; default is a per-seed temp dir.
    pub dir: Option<PathBuf>,
    pub verbose: bool,
}

impl MtTortureConfig {
    pub fn new(seed: u64) -> MtTortureConfig {
        MtTortureConfig {
            seed,
            threads: 4,
            rounds: 6,
            txns_per_round: 60,
            keys_per_thread: 4,
            dir: None,
            verbose: false,
        }
    }
}

/// What a multi-writer run did and found. `violations` empty = pass.
#[derive(Debug, Default, Clone)]
pub struct MtTortureReport {
    pub rounds: u64,
    pub crashes: u64,
    pub commits_acked: u64,
    pub commits_unacked: u64,
    pub unacked_survived: u64,
    pub must_abort: u64,
    pub violations: Vec<String>,
}

impl MtTortureReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for MtTortureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "rounds={} crashes={} acked={} unacked={} unacked_survived={} \
             must_abort={} violations={}",
            self.rounds,
            self.crashes,
            self.commits_acked,
            self.commits_unacked,
            self.unacked_survived,
            self.must_abort,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  VIOLATION: {v}")?;
        }
        Ok(())
    }
}

/// A commit the engine acknowledged before the crash.
struct Acked {
    keys: Vec<i32>,
    val: String,
    ts: Timestamp,
}

/// A commit submitted but never acknowledged (all-or-nothing), or a
/// transaction that died before `commit()` (must be fully absent).
struct Unresolved {
    keys: Vec<i32>,
    val: String,
    reached_commit: bool,
}

/// What one writer thread brings home from a round.
struct WriterResult {
    acked: Vec<Acked>,
    unresolved: Vec<Unresolved>,
}

/// Run the multi-writer torture workload; the returned report lists
/// every invariant violation found (none = the pipeline survived).
pub fn run_mt(cfg: MtTortureConfig) -> MtTortureReport {
    let dir = cfg.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "immortal-mt-torture-{}-{}",
            cfg.seed,
            std::process::id()
        ))
    });
    let _ = std::fs::remove_dir_all(&dir);

    let vfs = Arc::new(FaultVfs::wrap_std(cfg.seed));
    let state = vfs.state();
    let metrics = MetricsRegistry::new();
    state.set_metrics(metrics.clone());
    state.set_error_rates(0.0, 0.0); // crashes only: cut-points do the work
    state.disable();

    let mut h = MtHarness {
        rng: StdRng::seed_from_u64(cfg.seed ^ 0x6d74), // distinct stream from single-writer mode
        cfg,
        dir: dir.clone(),
        clock: Arc::new(SimClock::new(1_000_000)),
        metrics,
        vfs,
        state,
        expected: Vec::new(),
        report: MtTortureReport::default(),
    };
    h.drive();
    let _ = std::fs::remove_dir_all(&dir);
    h.report
}

struct MtHarness {
    cfg: MtTortureConfig,
    dir: PathBuf,
    clock: Arc<SimClock>,
    metrics: MetricsRegistry,
    vfs: Arc<FaultVfs>,
    state: Arc<FaultState>,
    rng: StdRng,
    /// Every commit known durable: carried across rounds so later audits
    /// can tell a resurrected old value from a genuinely new one.
    expected: Vec<Acked>,
    report: MtTortureReport,
}

impl MtHarness {
    fn open_db(&self) -> immortaldb::Result<Database> {
        let clock: Arc<dyn Clock> = self.clock.clone();
        let vfs: Arc<dyn Vfs> = self.vfs.clone();
        let mut config = DbConfig::new(&self.dir)
            .clock(clock)
            .pool_pages(32)
            .durability(Durability::Fsync)
            .vfs(vfs)
            .metrics(self.metrics.clone());
        config.lock_timeout = Duration::from_millis(250);
        Database::open(config)
    }

    fn violation(&mut self, msg: String) {
        if self.cfg.verbose {
            eprintln!("VIOLATION: {msg}");
        }
        self.report.violations.push(msg);
    }

    fn total_keys(&self) -> i32 {
        self.cfg.threads as i32 * self.cfg.keys_per_thread
    }

    fn drive(&mut self) {
        // Fault-free bootstrap: create the table and seed every key so
        // writers only ever update (a thread never needs to know whether
        // an indeterminate insert survived).
        let db = match self.open_db() {
            Ok(db) => db,
            Err(e) => {
                self.violation(format!("initial open failed: {e}"));
                return;
            }
        };
        if let Err(e) = db.create_table(TABLE, crate::kv_schema(), TableKind::Immortal) {
            self.violation(format!("create table failed: {e}"));
            return;
        }
        {
            let mut txn = db.begin(Isolation::Serializable);
            for key in 0..self.total_keys() {
                let row = vec![Value::Int(key), Value::Varchar("seed".into())];
                if let Err(e) = db.insert_row(&mut txn, TABLE, row) {
                    self.violation(format!("seeding key {key} failed: {e}"));
                    return;
                }
            }
            match db.commit(&mut txn) {
                Ok(ts) => self.expected.push(Acked {
                    keys: (0..self.total_keys()).collect(),
                    val: "seed".into(),
                    ts,
                }),
                Err(e) => {
                    self.violation(format!("seed commit failed: {e}"));
                    return;
                }
            }
        }

        let mut db = db;
        for round in 0..self.cfg.rounds {
            self.report.rounds += 1;
            db = match self.crash_round(db, round) {
                Some(db) => db,
                None => return, // recovery failed: fatal violation recorded
            };
        }
        self.state.disable();
        let _ = db.close();
    }

    /// One round: arm a crash a few mutating I/O ops ahead, let all
    /// writers run into it, recover, audit.
    fn crash_round(&mut self, db: Database, round: u32) -> Option<Database> {
        self.state.enable();
        // Small deltas cut early (often inside the first batches); larger
        // ones let the pipeline reach a steady state first.
        let delta = self.rng.gen_range(5..120u64);
        self.state.arm_crash_in(delta, false);

        let db = Arc::new(db);
        let results: Vec<WriterResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.cfg.threads)
                .map(|t| {
                    let db = Arc::clone(&db);
                    let clock = Arc::clone(&self.clock);
                    let state = Arc::clone(&self.state);
                    let base = t as i32 * self.cfg.keys_per_thread;
                    let span = self.cfg.keys_per_thread;
                    let quota = self.cfg.txns_per_round;
                    let seed = self.cfg.seed;
                    s.spawn(move || {
                        writer_thread(&db, &clock, &state, t, base, span, quota, seed, round)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let db = Arc::into_inner(db).expect("writers joined: sole owner");

        let crashed = self.state.crashed();
        if !crashed {
            // All writers finished before the cut-point tripped; force
            // the crash so every round still exercises recovery.
            self.state.force_crash();
        }
        self.report.crashes += 1;
        drop(db); // abandon cached pages and the WAL buffer
        self.state.disable();
        self.state.clear_crash();
        let db = match self.open_db() {
            Ok(db) => db,
            Err(e) => {
                self.violation(format!("round {round}: recovery failed: {e}"));
                return None;
            }
        };
        self.audit_round(&db, results, round);
        Some(db)
    }

    /// Post-recovery audit of one round's writer results.
    fn audit_round(&mut self, db: &Database, results: Vec<WriterResult>, round: u32) {
        // Gather the full history of every key once.
        let mut hist: Vec<Vec<(Timestamp, String)>> = Vec::new();
        for key in 0..self.total_keys() {
            match db.history_rows(TABLE, &Value::Int(key)) {
                Ok(h) => {
                    let mut versions = Vec::new();
                    let mut prev: Option<Timestamp> = None;
                    for (i, (ts, row)) in h.iter().enumerate() {
                        let Some(ts) = ts else {
                            self.violation(format!(
                                "round {round}: key {key} version {i} unstamped after recovery"
                            ));
                            continue;
                        };
                        if let Some(p) = prev {
                            if *ts >= p {
                                self.violation(format!(
                                    "round {round}: key {key} timestamps not strictly \
                                     descending"
                                ));
                            }
                        }
                        prev = Some(*ts);
                        let Some(row) = row else {
                            self.violation(format!(
                                "round {round}: key {key} has a deletion stub (none issued)"
                            ));
                            continue;
                        };
                        versions.push((*ts, row[1].to_string()));
                    }
                    hist.push(versions);
                }
                Err(e) => {
                    self.violation(format!("round {round}: history({key}) failed: {e}"));
                    hist.push(Vec::new());
                }
            }
        }
        let find = |key: i32, val: &str| -> Option<Timestamp> {
            hist[key as usize]
                .iter()
                .find(|(_, v)| v == val)
                .map(|(ts, _)| *ts)
        };

        for r in results {
            // Acked ⇒ durable, at exactly the acknowledged timestamp.
            for a in r.acked {
                self.report.commits_acked += 1;
                for &key in &a.keys {
                    match find(key, &a.val) {
                        Some(ts) if ts == a.ts => {}
                        Some(ts) => self.violation(format!(
                            "round {round}: acked commit {} on key {key} recovered at \
                             {ts:?}, acknowledged at {:?}",
                            a.val, a.ts
                        )),
                        None => self.violation(format!(
                            "round {round}: acked commit {} lost on key {key} \
                             (ts {:?})",
                            a.val, a.ts
                        )),
                    }
                }
                self.expected.push(a);
            }
            // Unacked ⇒ all-or-nothing at one shared timestamp; writes
            // that never reached commit() must be fully absent.
            for u in r.unresolved {
                let found: Vec<(i32, Option<Timestamp>)> =
                    u.keys.iter().map(|&k| (k, find(k, &u.val))).collect();
                let present = found.iter().filter(|(_, ts)| ts.is_some()).count();
                if !u.reached_commit {
                    self.report.must_abort += 1;
                    if present > 0 {
                        self.violation(format!(
                            "round {round}: {present} write(s) of uncommitted txn {} \
                             survived recovery",
                            u.val
                        ));
                    }
                    continue;
                }
                self.report.commits_unacked += 1;
                if present == 0 {
                    continue; // resolved as aborted: legal
                }
                if present != u.keys.len() {
                    self.violation(format!(
                        "round {round}: unacked commit {} atomicity broken — \
                         {present}/{} keys survived",
                        u.val,
                        u.keys.len()
                    ));
                    continue;
                }
                let ts0 = found[0].1.unwrap();
                if found.iter().any(|(_, ts)| *ts != Some(ts0)) {
                    self.violation(format!(
                        "round {round}: unacked commit {} recovered at differing \
                         timestamps: {found:?}",
                        u.val
                    ));
                    continue;
                }
                self.report.unacked_survived += 1;
                self.expected.push(Acked {
                    keys: u.keys,
                    val: u.val,
                    ts: ts0,
                });
            }
        }

        // No stowaways: every surviving version must be accounted for by
        // some known-durable commit (seed, acked, or resolved unacked).
        let known: HashSet<String> = self.expected.iter().map(|a| a.val.clone()).collect();
        for key in 0..self.total_keys() {
            for (ts, val) in hist[key as usize].clone() {
                if !known.contains(&val) {
                    self.violation(format!(
                        "round {round}: key {key} carries unaccounted version \
                         {val:?} at {ts:?}"
                    ));
                }
            }
        }
        if self.cfg.verbose {
            eprintln!(
                "round {round} recovered: acked={} unacked={} (survived {}) must_abort={}",
                self.report.commits_acked,
                self.report.commits_unacked,
                self.report.unacked_survived,
                self.report.must_abort
            );
        }
    }
}

/// One writer's round: update 1–3 of its own keys per transaction with
/// a globally unique value, commit, record the outcome. Stops at the
/// first sign of the crash (every later call would only error too).
#[allow(clippy::too_many_arguments)]
fn writer_thread(
    db: &Database,
    clock: &SimClock,
    state: &FaultState,
    t: usize,
    base: i32,
    span: i32,
    quota: u32,
    seed: u64,
    round: u32,
) -> WriterResult {
    let mut rng = StdRng::seed_from_u64(seed ^ (round as u64) << 16 ^ t as u64);
    let mut out = WriterResult {
        acked: Vec::new(),
        unresolved: Vec::new(),
    };
    for seq in 0..quota {
        if state.crashed() {
            break;
        }
        clock.advance(20);
        let val = format!("t{t}r{round}s{seq}");
        let n = rng.gen_range(1..span.min(3) + 1) as usize;
        let mut keys: Vec<i32> = (base..base + span).collect();
        // Ascending order within the thread's own range: no deadlocks.
        for i in 0..n {
            let j = rng.gen_range(i..keys.len());
            keys.swap(i, j);
        }
        keys.truncate(n);
        keys.sort_unstable();

        let mut txn = db.begin(Isolation::Serializable);
        let mut failed_early = false;
        for &key in &keys {
            let row = vec![Value::Int(key), Value::Varchar(val.clone())];
            if db.update_row(&mut txn, TABLE, row).is_err() {
                failed_early = true;
                break;
            }
        }
        if failed_early {
            // Crash (or lock timeout) before commit: whatever was staged
            // must be rolled back by recovery. A failed rollback here is
            // fine — the crash already owns the transaction's fate.
            let _ = db.rollback(&mut txn);
            out.unresolved.push(Unresolved {
                keys,
                val,
                reached_commit: false,
            });
            continue;
        }
        match db.commit(&mut txn) {
            Ok(ts) => out.acked.push(Acked { keys, val, ts }),
            Err(_) => out.unresolved.push(Unresolved {
                keys,
                val,
                reached_commit: true,
            }),
        }
    }
    out
}
