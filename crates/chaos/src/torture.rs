//! Crash-recovery torture harness.
//!
//! Drives a randomized multi-transaction workload against a real engine
//! whose every byte of I/O flows through a [`FaultVfs`], crashes it at
//! deterministic cut-points (plain kills, kills mid-transaction, torn
//! page writes, failed fsyncs), reopens it — running full ARIES
//! recovery — and asserts after every crash that:
//!
//! * every committed transaction's data is durable and every
//!   uncommitted ("loser") transaction is fully rolled back;
//! * each key's version history exactly matches a shadow model, with
//!   strictly descending timestamps and no unstamped committed version
//!   (post-crash timestamp repair through the PTT must converge);
//! * `AS OF` queries at sampled commit timestamps return the same rows
//!   before and after the crash;
//! * the persistent timestamp table contains no entry for a transaction
//!   known to have aborted.
//!
//! A transaction whose `commit()` call returned an error while the fault
//! layer was active is *indeterminate* — the commit record may or may
//! not have reached the log (exactly the real-world fsync-failure
//! ambiguity). The harness resolves it after recovery from the database
//! itself, requiring all-or-nothing: either every staged write is
//! present at one shared timestamp or none is.

use std::collections::{BTreeMap, HashSet};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use immortaldb::{
    Clock, Database, DbConfig, Durability, Isolation, SimClock, TableKind, Timestamp, Value,
};
use immortaldb_obs::MetricsRegistry;
use immortaldb_storage::vfs::Vfs;

use crate::fault::{FaultState, FaultVfs};

const TABLE: &str = "torture_kv";

/// Torture run parameters. Everything is deterministic per `seed`.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    pub seed: u64,
    /// Total workload operations (insert/update/delete) across the run.
    pub ops: u64,
    /// Crash/recover cycles spread across the run.
    pub crashes: u32,
    /// Key space size (small, so version chains grow deep).
    pub keys: i32,
    /// Buffer pool pages (small, so evictions flush mid-transaction and
    /// lazy timestamping happens on the flush path).
    pub pool_pages: usize,
    /// Probability a read fails transiently while faults are enabled.
    pub read_error_rate: f64,
    /// Probability an fsync fails while faults are enabled.
    pub fsync_error_rate: f64,
    /// Log full page images on write-back so torn page writes are
    /// repairable; torn-write crashes are only scheduled when on.
    pub page_image_logging: bool,
    /// Working directory; default is a per-seed temp dir.
    pub dir: Option<PathBuf>,
    pub verbose: bool,
}

impl TortureConfig {
    pub fn new(seed: u64) -> TortureConfig {
        TortureConfig {
            seed,
            ops: 500,
            crashes: 5,
            keys: 24,
            pool_pages: 16,
            read_error_rate: 0.001,
            fsync_error_rate: 0.002,
            page_image_logging: true,
            dir: None,
            verbose: false,
        }
    }
}

/// What a torture run did and found. `violations` empty = pass.
#[derive(Debug, Default, Clone)]
pub struct TortureReport {
    pub ops_done: u64,
    pub txns: u64,
    pub commits: u64,
    pub aborts: u64,
    pub indeterminate_commits: u64,
    pub crashes: u64,
    pub torn_writes: u64,
    pub fsync_errors: u64,
    pub read_errors: u64,
    pub crash_recoveries: u64,
    pub versions_restamped: u64,
    pub torn_pages_repaired: u64,
    pub violations: Vec<String>,
}

impl TortureReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for TortureReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "ops={} txns={} commits={} aborts={} indeterminate_commits={}",
            self.ops_done, self.txns, self.commits, self.aborts, self.indeterminate_commits
        )?;
        writeln!(
            f,
            "crashes={} recoveries={} torn_writes={} fsync_errors={} read_errors={}",
            self.crashes,
            self.crash_recoveries,
            self.torn_writes,
            self.fsync_errors,
            self.read_errors
        )?;
        write!(
            f,
            "versions_restamped={} torn_pages_repaired={} violations={}",
            self.versions_restamped,
            self.torn_pages_repaired,
            self.violations.len()
        )?;
        for v in &self.violations {
            write!(f, "\n  VIOLATION: {v}")?;
        }
        Ok(())
    }
}

/// Why a transaction's effects are unresolved at crash time.
enum PendingKind {
    /// Never reached commit: recovery must roll it back entirely.
    MustAbort,
    /// `commit()` returned an error: either outcome is legal, but it
    /// must be all-or-nothing.
    CommitAmbiguous,
}

struct Pending {
    tid: u64,
    staged: Vec<(i32, Option<String>)>,
    kind: PendingKind,
}

enum TxnEnd {
    Committed,
    Aborted,
    Crashed(Pending),
}

/// One version as the shadow model sees it: commit timestamp plus the
/// row's value (`None` = deletion stub).
type Version = (Timestamp, Option<String>);

struct Harness {
    cfg: TortureConfig,
    dir: PathBuf,
    clock: Arc<SimClock>,
    metrics: MetricsRegistry,
    vfs: Arc<FaultVfs>,
    state: Arc<FaultState>,
    rng: StdRng,
    /// Shadow model: per key, committed versions in commit order.
    model: BTreeMap<i32, Vec<Version>>,
    commit_ts: Vec<Timestamp>,
    aborted_tids: HashSet<u64>,
    val_seq: u64,
    report: TortureReport,
}

/// Run a torture workload; the returned report lists every invariant
/// violation found (none = the engine survived).
pub fn run(cfg: TortureConfig) -> TortureReport {
    let dir = cfg.dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "immortal-torture-{}-{}",
            cfg.seed,
            std::process::id()
        ))
    });
    let _ = std::fs::remove_dir_all(&dir);

    let vfs = Arc::new(FaultVfs::wrap_std(cfg.seed));
    let state = vfs.state();
    let metrics = MetricsRegistry::new();
    state.set_metrics(metrics.clone());
    state.set_error_rates(cfg.read_error_rate, cfg.fsync_error_rate);
    state.disable(); // initial open is fault-free

    let mut h = Harness {
        rng: StdRng::seed_from_u64(cfg.seed),
        cfg,
        dir: dir.clone(),
        clock: Arc::new(SimClock::new(1_000_000)),
        metrics,
        vfs,
        state,
        model: BTreeMap::new(),
        commit_ts: Vec::new(),
        aborted_tids: HashSet::new(),
        val_seq: 0,
        report: TortureReport::default(),
    };
    h.drive();
    let _ = std::fs::remove_dir_all(&dir);
    h.finish_report()
}

impl Harness {
    fn open_db(&self) -> immortaldb::Result<Database> {
        let clock: Arc<dyn Clock> = self.clock.clone();
        let vfs: Arc<dyn Vfs> = self.vfs.clone();
        let mut config = DbConfig::new(&self.dir)
            .clock(clock)
            .pool_pages(self.cfg.pool_pages)
            .durability(Durability::Fsync)
            .vfs(vfs)
            .page_image_logging(self.cfg.page_image_logging)
            .metrics(self.metrics.clone());
        config.lock_timeout = Duration::from_millis(250);
        Database::open(config)
    }

    fn violation(&mut self, msg: String) {
        if self.cfg.verbose {
            eprintln!("VIOLATION: {msg}");
        }
        self.report.violations.push(msg);
    }

    fn next_val(&mut self) -> String {
        self.val_seq += 1;
        format!("v{}", self.val_seq)
    }

    /// Committed-or-staged current value of a key.
    fn live<'a>(&'a self, staged: &'a [(i32, Option<String>)], key: i32) -> Option<&'a String> {
        if let Some((_, v)) = staged.iter().rev().find(|(k, _)| *k == key) {
            return v.as_ref();
        }
        self.model
            .get(&key)
            .and_then(|versions| versions.last())
            .and_then(|(_, v)| v.as_ref())
    }

    fn drive(&mut self) {
        let mut db = match self.open_db() {
            Ok(db) => db,
            Err(e) => {
                self.violation(format!("initial open failed: {e}"));
                return;
            }
        };
        if let Err(e) = db.create_table(TABLE, crate::kv_schema(), TableKind::Immortal) {
            self.violation(format!("create table failed: {e}"));
            return;
        }
        self.state.enable();

        let total = self.cfg.ops;
        let crashes = self.cfg.crashes as u64;
        let mut crashes_done: u64 = 0;
        while self.report.ops_done < total || crashes_done < crashes {
            // Crash boundaries are spread evenly over the op budget.
            let next_boundary = if crashes_done < crashes {
                (crashes_done + 1) * total / (crashes + 1)
            } else {
                u64::MAX
            };
            if self.report.ops_done >= next_boundary {
                crashes_done += 1;
                db = match self.crash_episode(db) {
                    Some(db) => db,
                    None => return, // recovery failed: fatal violation
                };
                continue;
            }
            let budget = total.saturating_sub(self.report.ops_done).max(1);
            match self.run_txn(&db, budget) {
                TxnEnd::Committed | TxnEnd::Aborted => {}
                TxnEnd::Crashed(pending) => {
                    // An injected fault escalated to a crash outside the
                    // planned schedule (e.g. a failed commit fsync).
                    db = match self.recover(db, Some(pending)) {
                        Some(db) => db,
                        None => return,
                    };
                }
            }
        }

        // Clean shutdown, fault-free reopen, final audit.
        self.state.disable();
        if let Err(e) = db.close() {
            self.violation(format!("clean close failed: {e}"));
        }
        drop(db);
        match self.open_db() {
            Ok(db) => self.check_invariants(&db, "final"),
            Err(e) => self.violation(format!("final reopen failed: {e}")),
        }
    }

    /// One randomized transaction: 1–4 ops on distinct keys, then commit
    /// or (10%) deliberate rollback. Any error while the fault layer
    /// reports a crash — or any rollback failure — ends in `Crashed`.
    fn run_txn(&mut self, db: &Database, budget: u64) -> TxnEnd {
        self.clock.advance(20); // one timestamp tick per transaction
        self.report.txns += 1;
        let mut txn = db.begin(Isolation::Serializable);
        let tid = txn.tid().0;
        let n_ops = (self.rng.gen_range(1..5u64)).min(budget);
        let mut staged: Vec<(i32, Option<String>)> = Vec::new();
        for _ in 0..n_ops {
            // Distinct keys per transaction keep the model one-version-
            // per-key-per-commit.
            let mut key = self.rng.gen_range(0..self.cfg.keys);
            let mut tries = 0;
            while staged.iter().any(|(k, _)| *k == key) && tries < 16 {
                key = self.rng.gen_range(0..self.cfg.keys);
                tries += 1;
            }
            if staged.iter().any(|(k, _)| *k == key) {
                break;
            }
            let exists = self.live(&staged, key).is_some();
            let (val, res) = if exists && self.rng.gen_bool(0.25) {
                (None, db.delete_row(&mut txn, TABLE, &Value::Int(key)))
            } else {
                let v = self.next_val();
                let row = vec![Value::Int(key), Value::Varchar(v.clone())];
                let r = if exists {
                    db.update_row(&mut txn, TABLE, row)
                } else {
                    db.insert_row(&mut txn, TABLE, row)
                };
                (Some(v), r)
            };
            self.report.ops_done += 1;
            match res {
                Ok(()) => staged.push((key, val)),
                Err(_) if self.state.crashed() => {
                    staged.push((key, val)); // attempted: must still be absent
                    return TxnEnd::Crashed(Pending {
                        tid,
                        staged,
                        kind: PendingKind::MustAbort,
                    });
                }
                Err(_) => {
                    // Transient fault (e.g. injected read error): the
                    // whole transaction rolls back. A failed rollback
                    // leaves unknown state — treat it as a crash.
                    staged.push((key, val));
                    return match db.rollback(&mut txn) {
                        Ok(()) => {
                            self.aborted_tids.insert(tid);
                            self.report.aborts += 1;
                            TxnEnd::Aborted
                        }
                        Err(_) => {
                            if !self.state.crashed() {
                                self.state.force_crash();
                            }
                            TxnEnd::Crashed(Pending {
                                tid,
                                staged,
                                kind: PendingKind::MustAbort,
                            })
                        }
                    };
                }
            }
        }
        if staged.is_empty() || self.rng.gen_bool(0.1) {
            return match db.rollback(&mut txn) {
                Ok(()) => {
                    self.aborted_tids.insert(tid);
                    self.report.aborts += 1;
                    TxnEnd::Aborted
                }
                Err(_) => {
                    if !self.state.crashed() {
                        self.state.force_crash();
                    }
                    TxnEnd::Crashed(Pending {
                        tid,
                        staged,
                        kind: PendingKind::MustAbort,
                    })
                }
            };
        }
        match db.commit(&mut txn) {
            Ok(ts) => {
                self.apply_commit(ts, &staged);
                self.report.commits += 1;
                TxnEnd::Committed
            }
            Err(_) => {
                // The commit record may or may not be durable (fsync
                // failure semantics). Crash now and let recovery decide.
                if !self.state.crashed() {
                    self.state.force_crash();
                }
                self.report.indeterminate_commits += 1;
                TxnEnd::Crashed(Pending {
                    tid,
                    staged,
                    kind: PendingKind::CommitAmbiguous,
                })
            }
        }
    }

    fn apply_commit(&mut self, ts: Timestamp, staged: &[(i32, Option<String>)]) {
        if let Some(&last) = self.commit_ts.last() {
            if ts <= last {
                self.violation(format!(
                    "commit timestamp not monotone: {ts:?} after {last:?}"
                ));
            }
        }
        self.commit_ts.push(ts);
        for (key, val) in staged {
            self.model.entry(*key).or_default().push((ts, val.clone()));
        }
    }

    /// A scheduled crash: pick a flavour, make the engine die, recover.
    fn crash_episode(&mut self, db: Database) -> Option<Database> {
        match self.rng.gen_range(0..3u32) {
            0 => {
                // Cut-point: the file system dies after a few more
                // mutating ops — whichever engine call is unlucky. Half
                // of them also tear the interrupted write.
                let tear = self.cfg.page_image_logging && self.rng.gen_bool(0.5);
                let delta = self.rng.gen_range(1..30u64);
                self.state.arm_crash_in(delta, tear);
                for _ in 0..60 {
                    let budget = self.cfg.ops.saturating_sub(self.report.ops_done).max(1);
                    match self.run_txn(&db, budget) {
                        TxnEnd::Crashed(p) => return self.recover(db, Some(p)),
                        TxnEnd::Committed | TxnEnd::Aborted => {
                            if self.state.crashed() {
                                // Tripped after the txn's bookkeeping
                                // completed; nothing is pending.
                                return self.recover(db, None);
                            }
                        }
                    }
                }
                self.state.force_crash();
                self.recover(db, None)
            }
            1 => {
                // Kill mid-transaction: stage some writes, optionally
                // force the log so recovery has a loser to undo, die.
                self.clock.advance(20);
                self.report.txns += 1;
                let mut txn = db.begin(Isolation::Serializable);
                let tid = txn.tid().0;
                let mut staged: Vec<(i32, Option<String>)> = Vec::new();
                for _ in 0..self.rng.gen_range(1..4u32) {
                    let key = self.rng.gen_range(0..self.cfg.keys);
                    if staged.iter().any(|(k, _)| *k == key) {
                        continue;
                    }
                    let v = self.next_val();
                    let row = vec![Value::Int(key), Value::Varchar(v.clone())];
                    let res = if self.live(&staged, key).is_some() {
                        db.update_row(&mut txn, TABLE, row)
                    } else {
                        db.insert_row(&mut txn, TABLE, row)
                    };
                    self.report.ops_done += 1;
                    match res {
                        Ok(()) => staged.push((key, Some(v))),
                        Err(_) => {
                            staged.push((key, Some(v)));
                            break;
                        }
                    }
                }
                if self.rng.gen_bool(0.5) {
                    let _ = db.force_log(); // loser records reach disk
                }
                drop(txn); // never committed nor rolled back
                self.state.force_crash();
                self.recover(
                    db,
                    Some(Pending {
                        tid,
                        staged,
                        kind: PendingKind::MustAbort,
                    }),
                )
            }
            _ => {
                // Plain kill at a transaction boundary.
                self.state.force_crash();
                self.recover(db, None)
            }
        }
    }

    /// Drop the dead engine, bring the file system back, run recovery,
    /// resolve any pending transaction, audit all invariants.
    fn recover(&mut self, db: Database, pending: Option<Pending>) -> Option<Database> {
        drop(db); // abandon every cached page and the WAL buffer
        self.report.crashes += 1;
        self.state.disable();
        self.state.clear_crash();
        let db = match self.open_db() {
            Ok(db) => db,
            Err(e) => {
                self.violation(format!("recovery after crash failed: {e}"));
                return None;
            }
        };
        if let Some(p) = pending {
            self.resolve_pending(&db, p);
        }
        self.check_invariants(&db, "post-crash");
        self.state.enable();
        if self.cfg.verbose {
            eprintln!(
                "crash {} recovered: ops={} commits={} aborts={}",
                self.report.crashes, self.report.ops_done, self.report.commits, self.report.aborts
            );
        }
        Some(db)
    }

    /// Per staged key, the versions recovery left that the model does not
    /// know about (at most one expected: the pending transaction's).
    fn new_versions(&mut self, db: &Database, key: i32) -> Option<Vec<Version>> {
        let hist = match db.history_rows(TABLE, &Value::Int(key)) {
            Ok(h) => h,
            Err(e) => {
                self.violation(format!("history({key}) failed during resolution: {e}"));
                return None;
            }
        };
        let known: HashSet<Timestamp> = self
            .model
            .get(&key)
            .map(|v| v.iter().map(|(ts, _)| *ts).collect())
            .unwrap_or_default();
        let mut out = Vec::new();
        for (ts, row) in hist {
            match ts {
                None => {
                    self.violation(format!("key {key}: unstamped version survived recovery"));
                    return None;
                }
                Some(ts) if !known.contains(&ts) => {
                    out.push((ts, row.map(|r| r[1].to_string())));
                }
                Some(_) => {}
            }
        }
        Some(out)
    }

    fn resolve_pending(&mut self, db: &Database, p: Pending) {
        let mut per_key: Vec<(i32, Option<String>, Vec<Version>)> = Vec::new();
        for (key, staged_val) in &p.staged {
            match self.new_versions(db, *key) {
                Some(new) => per_key.push((*key, staged_val.clone(), new)),
                None => return, // violation already recorded
            }
        }
        let survivors = per_key.iter().filter(|(_, _, n)| !n.is_empty()).count();
        match p.kind {
            PendingKind::MustAbort => {
                if survivors > 0 {
                    self.violation(format!(
                        "tid {}: {survivors} write(s) of an uncommitted transaction \
                         survived recovery",
                        p.tid
                    ));
                } else {
                    self.aborted_tids.insert(p.tid);
                }
            }
            PendingKind::CommitAmbiguous => {
                if survivors == 0 {
                    // Resolved as aborted. The commit record (and thus a
                    // PTT row) may still be durable with every update
                    // CLR-undone, so the tid is NOT added to the aborted
                    // set used for the PTT check.
                    return;
                }
                if survivors != per_key.len() {
                    self.violation(format!(
                        "tid {}: atomicity broken — {survivors}/{} writes survived",
                        p.tid,
                        per_key.len()
                    ));
                    return;
                }
                // Committed: all keys must share one timestamp and carry
                // the staged values.
                let ts = per_key[0].2[0].0;
                for (key, staged_val, new) in &per_key {
                    if new.len() != 1 || new[0].0 != ts {
                        self.violation(format!(
                            "tid {}: key {key} resolved to {new:?}, expected one \
                             version at {ts:?}",
                            p.tid
                        ));
                        return;
                    }
                    if &new[0].1 != staged_val {
                        self.violation(format!(
                            "tid {}: key {key} committed value {:?} != staged {:?}",
                            p.tid, new[0].1, staged_val
                        ));
                        return;
                    }
                }
                let staged: Vec<(i32, Option<String>)> =
                    per_key.into_iter().map(|(k, v, _)| (k, v)).collect();
                self.apply_commit(ts, &staged);
                self.report.commits += 1;
            }
        }
    }

    /// Full audit against the shadow model (fault layer disabled).
    fn check_invariants(&mut self, db: &Database, label: &str) {
        // Current state and complete history of every key.
        for key in 0..self.cfg.keys {
            let versions = self.model.get(&key).cloned().unwrap_or_default();
            let expect_current = versions.last().and_then(|(_, v)| v.clone());
            let mut txn = db.begin(Isolation::Serializable);
            match db.get_row(&mut txn, TABLE, &Value::Int(key)) {
                Ok(row) => {
                    let got = row.map(|r| r[1].to_string());
                    if got != expect_current {
                        self.violation(format!(
                            "[{label}] key {key}: current {got:?} != model \
                             {expect_current:?}"
                        ));
                    }
                }
                Err(e) => self.violation(format!("[{label}] get({key}) failed: {e}")),
            }
            let _ = db.rollback(&mut txn);
            match db.history_rows(TABLE, &Value::Int(key)) {
                Ok(hist) => {
                    if hist.len() != versions.len() {
                        self.violation(format!(
                            "[{label}] key {key}: history has {} versions, model {}",
                            hist.len(),
                            versions.len()
                        ));
                        continue;
                    }
                    let mut prev: Option<Timestamp> = None;
                    for (i, (ts, row)) in hist.iter().enumerate() {
                        let (want_ts, want_val) = &versions[versions.len() - 1 - i];
                        match ts {
                            None => self.violation(format!(
                                "[{label}] key {key}: version {i} is unstamped"
                            )),
                            Some(ts) => {
                                if let Some(p) = prev {
                                    if *ts >= p {
                                        self.violation(format!(
                                            "[{label}] key {key}: timestamps not \
                                             strictly descending"
                                        ));
                                    }
                                }
                                prev = Some(*ts);
                                if ts != want_ts {
                                    self.violation(format!(
                                        "[{label}] key {key}: version {i} ts {ts:?} \
                                         != model {want_ts:?}"
                                    ));
                                }
                            }
                        }
                        let got_val = row.as_ref().map(|r| r[1].to_string());
                        if &got_val != want_val {
                            self.violation(format!(
                                "[{label}] key {key}: version {i} value {got_val:?} \
                                 != model {want_val:?}"
                            ));
                        }
                    }
                }
                Err(e) => self.violation(format!("[{label}] history({key}) failed: {e}")),
            }
        }

        // AS OF queries at sampled commit timestamps reconstruct the
        // model state of that moment.
        if !self.commit_ts.is_empty() {
            for _ in 0..8usize {
                let ts = self.commit_ts[self.rng.gen_range(0..self.commit_ts.len())];
                let mut txn = db.begin_as_of_ts(ts);
                for key in 0..self.cfg.keys {
                    let expect = self
                        .model
                        .get(&key)
                        .map(|versions| {
                            versions
                                .iter()
                                .rev()
                                .find(|(vts, _)| *vts <= ts)
                                .and_then(|(_, v)| v.clone())
                        })
                        .unwrap_or(None);
                    match db.get_row(&mut txn, TABLE, &Value::Int(key)) {
                        Ok(row) => {
                            let got = row.map(|r| r[1].to_string());
                            if got != expect {
                                self.violation(format!(
                                    "[{label}] AS OF {ts:?} key {key}: {got:?} != \
                                     model {expect:?}"
                                ));
                            }
                        }
                        Err(e) => {
                            self.violation(format!("[{label}] AS OF {ts:?} get({key}) failed: {e}"))
                        }
                    }
                }
                let _ = db.rollback(&mut txn);
            }
        }

        // The PTT must not remember a transaction known to have aborted.
        match db.ptt_entries() {
            Ok(entries) => {
                for (tid, _) in entries {
                    if self.aborted_tids.contains(&tid.0) {
                        self.violation(format!(
                            "[{label}] PTT contains aborted transaction {tid:?}"
                        ));
                    }
                }
            }
            Err(e) => self.violation(format!("[{label}] PTT scan failed: {e}")),
        }
    }

    fn finish_report(mut self) -> TortureReport {
        let snap = self.metrics.snapshot();
        self.report.crash_recoveries = snap.get("recovery.crash_recoveries").unwrap_or(0);
        self.report.versions_restamped = snap.get("recovery.versions_restamped").unwrap_or(0);
        self.report.torn_pages_repaired = snap.get("recovery.torn_pages_repaired").unwrap_or(0);
        self.report.torn_writes = self
            .state
            .torn_writes
            .load(std::sync::atomic::Ordering::SeqCst);
        self.report.fsync_errors = self
            .state
            .fsync_errors
            .load(std::sync::atomic::Ordering::SeqCst);
        self.report.read_errors = self
            .state
            .read_errors
            .load(std::sync::atomic::Ordering::SeqCst);
        self.report
    }
}
