//! # immortaldb-chaos
//!
//! Deterministic fault injection and crash-recovery torture for the
//! Immortal DB engine.
//!
//! Two layers:
//!
//! * [`fault::FaultVfs`] — wraps the storage crate's [`Vfs`] seam and
//!   injects seeded, counted faults: torn page writes, truncated WAL
//!   appends, fsync failures, transient read errors and "crash after
//!   operation N" cut-points.
//! * [`torture`] — a randomized multi-transaction workload that crashes
//!   the engine at those cut-points, reopens it through full ARIES
//!   recovery and audits every invariant transaction-time support
//!   promises (durability, rollback, timestamp repair through the PTT,
//!   `AS OF` stability across crashes).
//! * [`mt`] — the multi-writer variant (`torture --threads N`): crashes
//!   land in the middle of group-commit batches and the audit asserts
//!   acked-implies-durable and all-or-nothing for unacknowledged
//!   commits.
//!
//! ```text
//! cargo run -p immortaldb-chaos --bin torture -- --seed 42 --ops 2000 --crashes 25
//! ```
//!
//! [`Vfs`]: immortaldb_storage::vfs::Vfs

pub mod fault;
pub mod mt;
pub mod torture;

pub use fault::{FaultState, FaultVfs};
pub use mt::{run_mt, MtTortureConfig, MtTortureReport};
pub use torture::{run, TortureConfig, TortureReport};

use immortaldb::{ColType, Column, Schema};

/// Schema shared by the torture harness and the deterministic chaos
/// tests: `k INT PRIMARY KEY, v VARCHAR(32)`.
pub fn kv_schema() -> Schema {
    Schema::new(
        vec![
            Column {
                name: "k".into(),
                ctype: ColType::Int,
            },
            Column {
                name: "v".into(),
                ctype: ColType::Varchar(32),
            },
        ],
        0,
    )
    .expect("static schema is valid")
}
