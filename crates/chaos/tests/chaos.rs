//! Deterministic chaos tests: crash recovery under injected faults.
//!
//! These complement the randomized torture harness with fixed scenarios
//! whose assertions pin down the two recovery mechanisms the paper's
//! design depends on: post-crash timestamp repair through the PTT, and
//! torn-page repair from logged full-page images.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use immortaldb::{Clock, Database, DbConfig, Durability, Isolation, SimClock, TableKind, Value};
use immortaldb_chaos::fault::FaultVfs;
use immortaldb_chaos::{kv_schema, run, TortureConfig};
use immortaldb_obs::MetricsRegistry;
use immortaldb_storage::vfs::Vfs;

const TABLE: &str = "chaos_kv";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("immortal-chaos-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(
    dir: &PathBuf,
    clock: &Arc<SimClock>,
    metrics: &MetricsRegistry,
    pool_pages: usize,
) -> DbConfig {
    let clock: Arc<dyn Clock> = Arc::clone(clock) as _;
    DbConfig::new(dir)
        .clock(clock)
        .pool_pages(pool_pages)
        .durability(Durability::Fsync)
        .metrics(metrics.clone())
}

/// A version flushed TID-marked before the crash (or redone TID-marked
/// after it) must be restamped from the PTT during recovery, and the
/// `recovery.versions_restamped` counter must prove it happened.
#[test]
fn post_crash_timestamp_repair_restamps_versions() {
    let dir = tmp_dir("restamp");
    let clock = Arc::new(SimClock::new(50_000));
    let metrics = MetricsRegistry::new();

    let commit_ts = {
        let db = Database::open(config(&dir, &clock, &metrics, 8)).unwrap();
        db.create_table(TABLE, kv_schema(), TableKind::Immortal)
            .unwrap();
        clock.advance(20);
        // One large transaction over a tiny pool: evictions flush leaves
        // mid-transaction, persisting TID-marked (unstamped) versions.
        let mut txn = db.begin(Isolation::Serializable);
        for k in 0..60i32 {
            db.insert_row(
                &mut txn,
                TABLE,
                vec![Value::Int(k), Value::Varchar(format!("restamp-{k:04}"))],
            )
            .unwrap();
        }
        let ts = db.commit(&mut txn).unwrap();
        // Crash: drop without close. The commit record is durable
        // (Durability::Fsync); dirty pages and the VTT are lost.
        drop(db);
        ts
    };

    let restamped_before = metrics
        .snapshot()
        .get("recovery.versions_restamped")
        .unwrap();
    let db = Database::open(config(&dir, &clock, &metrics, 8)).unwrap();
    let snap = metrics.snapshot();
    assert!(
        snap.get("recovery.crash_recoveries").unwrap() >= 1,
        "reopen after a hard drop must count as a crash recovery"
    );
    assert!(
        snap.get("recovery.versions_restamped").unwrap() > restamped_before,
        "recovery must restamp at least one version from the PTT"
    );

    // Every committed row survived and every version carries the commit
    // timestamp — none is left unstamped.
    for k in 0..60i32 {
        let hist = db.history_rows(TABLE, &Value::Int(k)).unwrap();
        assert_eq!(hist.len(), 1, "key {k}");
        assert_eq!(hist[0].0, Some(commit_ts), "key {k} must be stamped");
        let row = hist[0].1.as_ref().expect("insert, not delete");
        assert_eq!(row[1].to_string(), format!("restamp-{k:04}"));
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A data-page write torn mid-flush (prefix persisted, CRC now invalid)
/// must be rebuilt during redo from the full page image logged just
/// before the write, and the committed data underneath must survive.
#[test]
fn torn_data_page_write_is_repaired_from_logged_image() {
    let dir = tmp_dir("torn");
    let clock = Arc::new(SimClock::new(80_000));
    let metrics = MetricsRegistry::new();
    let fault = Arc::new(FaultVfs::wrap_std(9));
    let state = fault.state();
    state.set_metrics(metrics.clone());

    let open = |pool: usize| {
        let vfs: Arc<dyn Vfs> = Arc::clone(&fault) as _;
        Database::open(
            config(&dir, &clock, &metrics, pool)
                .vfs(vfs)
                .page_image_logging(true),
        )
    };

    // Enough full-width rows that the tree far outgrows the pool: the
    // tail of every batch is evicted (written back) mid-run, and any
    // fetch miss during the update phase must evict a dirty page.
    const KEYS: i32 = 1200;
    let mut committed: HashMap<i32, String> = HashMap::new();
    let db = open(8).unwrap();
    db.create_table(TABLE, kv_schema(), TableKind::Immortal)
        .unwrap();
    for batch in 0..KEYS / 50 {
        clock.advance(20);
        let mut txn = db.begin(Isolation::Serializable);
        for k in batch * 50..batch * 50 + 50 {
            let v = format!("base-{k:04}-0123456789abcdefghij");
            db.insert_row(
                &mut txn,
                TABLE,
                vec![Value::Int(k), Value::Varchar(v.clone())],
            )
            .unwrap();
            committed.insert(k, v);
        }
        db.commit(&mut txn).unwrap();
    }

    // The next write to the data file — necessarily the write-back of a
    // dirty page evicted by the update's leaf fetches — is torn and takes
    // the file system down.
    state.arm_crash_on_write_to("data.idb", true);
    clock.advance(20);
    let mut txn = db.begin(Isolation::Serializable);
    let mut tripped = false;
    for k in 0..KEYS {
        let r = db.update_row(
            &mut txn,
            TABLE,
            vec![Value::Int(k), Value::Varchar(format!("upd-{k:04}"))],
        );
        if r.is_err() {
            tripped = true;
            break;
        }
    }
    assert!(
        tripped && state.crashed(),
        "a data-page write must have torn"
    );
    assert!(state.torn_writes.load(std::sync::atomic::Ordering::SeqCst) >= 1);
    drop(txn);
    drop(db);

    state.clear_crash();
    let db = open(8).unwrap();
    let snap = metrics.snapshot();
    assert!(
        snap.get("recovery.torn_pages_repaired").unwrap() >= 1,
        "redo must rebuild the torn page from its logged image"
    );
    assert!(snap.get("faults.torn_writes").unwrap() >= 1);

    // All committed data intact; the crashed transaction's updates gone.
    let mut txn = db.begin(Isolation::Serializable);
    for k in 0..KEYS {
        let row = db
            .get_row(&mut txn, TABLE, &Value::Int(k))
            .unwrap()
            .unwrap_or_else(|| panic!("key {k} lost"));
        assert_eq!(row[1].to_string(), committed[&k], "key {k}");
    }
    db.rollback(&mut txn).unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A short torture run must pass, and two runs with the same seed must
/// take exactly the same path.
#[test]
fn torture_smoke_is_deterministic() {
    let reports: Vec<_> = (0..2)
        .map(|i| {
            let mut cfg = TortureConfig::new(5);
            cfg.ops = 150;
            cfg.crashes = 2;
            cfg.dir = Some(tmp_dir(&format!("torture-det-{i}")));
            run(cfg)
        })
        .collect();
    for r in &reports {
        assert!(r.passed(), "violations: {:?}", r.violations);
        assert!(r.commits > 0 && r.crashes >= 2);
    }
    let key = |r: &immortaldb_chaos::TortureReport| {
        (
            r.ops_done,
            r.txns,
            r.commits,
            r.aborts,
            r.indeterminate_commits,
            r.crashes,
            r.torn_writes,
            r.fsync_errors,
            r.read_errors,
        )
    };
    assert_eq!(key(&reports[0]), key(&reports[1]));
}

/// A group-commit batch whose fsync fails must acknowledge nobody
/// (all-or-nothing per batch): every committer gets the error, their
/// writes are rolled back and invisible, and the barrier recovers for
/// later commits once fsyncs succeed again.
#[test]
fn failed_group_batch_acknowledges_no_committer() {
    let dir = tmp_dir("gcfail");
    let fault = Arc::new(FaultVfs::wrap_std(33));
    let state = fault.state();
    let metrics = MetricsRegistry::new();
    state.set_metrics(metrics.clone());
    let vfs: Arc<dyn Vfs> = fault;
    let db = Database::open(
        DbConfig::new(&dir)
            .durability(Durability::Fsync)
            .vfs(vfs)
            .metrics(metrics.clone()),
    )
    .unwrap();
    db.create_table(TABLE, kv_schema(), TableKind::Immortal)
        .unwrap();

    // From here on every fsync fails, so every group batch — whatever
    // its size — must fail as a unit.
    state.set_error_rates(0.0, 1.0);
    state.enable();
    let writers: i32 = 4;
    let results: Vec<bool> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..writers)
            .map(|t| {
                let db = &db;
                s.spawn(move || {
                    let mut txn = db.begin(Isolation::Serializable);
                    db.insert_row(
                        &mut txn,
                        TABLE,
                        vec![Value::Int(t), Value::Varchar(format!("v{t}"))],
                    )
                    .unwrap();
                    db.commit(&mut txn).is_ok()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        results.iter().all(|ok| !ok),
        "a committer in a failed batch was acknowledged: {results:?}"
    );
    assert!(metrics.faults.fsync_errors.get() > 0);
    state.disable();

    // The barrier must not be wedged by the failed batches: a later
    // commit leads a fresh sync, which also clears the sticky error.
    let mut txn = db.begin(Isolation::Serializable);
    db.insert_row(
        &mut txn,
        TABLE,
        vec![Value::Int(100), Value::Varchar("ok".into())],
    )
    .unwrap();
    db.commit(&mut txn).unwrap();

    // Failed committers' writes were rolled back: invisible now.
    let mut reader = db.begin(Isolation::Snapshot);
    for t in 0..writers {
        assert!(
            db.get_row(&mut reader, TABLE, &Value::Int(t))
                .unwrap()
                .is_none(),
            "unacknowledged write of key {t} became visible"
        );
    }
    assert!(db
        .get_row(&mut reader, TABLE, &Value::Int(100))
        .unwrap()
        .is_some());
    db.rollback(&mut reader).unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
