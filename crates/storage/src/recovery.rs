//! Crash recovery (ARIES-style) and transaction rollback.
//!
//! Three passes: **analysis** rebuilds the active-transaction and
//! dirty-page tables from the last checkpoint; **redo** repeats history
//! for page-oriented records guarded by page LSNs; **undo** rolls back
//! loser transactions with *logical* undo — each operation is compensated
//! by re-locating its record by key (splits may have moved it), writing a
//! CLR so undo itself is idempotent.
//!
//! Timestamp application is unlogged, so recovery neither redoes nor
//! undoes it: a record that was stamped but whose page never reached disk
//! simply reverts to TID-marked, and the (not-yet-garbage-collected) PTT
//! entry re-stamps it on next access — exactly the paper's design.
//!
//! The same undo machinery implements runtime [`rollback_txn`], and
//! [`checkpoint`] implements the fuzzy checkpoint whose redo-scan-start
//! LSN gates PTT garbage collection.

use std::collections::{BinaryHeap, HashMap, HashSet};
use std::path::{Path, PathBuf};

use immortaldb_common::{Error, Lsn, PageId, Result, Tid, Timestamp, TreeId, NULL_LSN};

use crate::buffer::BufferPool;
use crate::logrec::LogRecord;
use crate::version;
use crate::wal::{Durability, Wal, WalEntry};

/// Finds the *current* leaf page for a key so logical undo can compensate
/// operations whose records were relocated by page splits. Implemented by
/// the B-tree layer.
pub trait TreeLocator: Send + Sync {
    /// Leaf page currently responsible for `key` in `tree`.
    fn locate_leaf(&self, tree: TreeId, key: &[u8]) -> Result<PageId>;
    /// Like [`Self::locate_leaf`] but guarantees at least `space` free
    /// bytes on the returned page, splitting on the way if needed (undo of
    /// a delete must be able to re-insert).
    fn locate_leaf_for_insert(&self, tree: TreeId, key: &[u8], space: usize) -> Result<PageId>;
}

/// Result of the analysis pass.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Loser transactions: tid -> LSN of their last log record.
    pub att: HashMap<Tid, Lsn>,
    /// Transactions whose Commit record is in the log, with their
    /// timestamps.
    pub committed: HashMap<Tid, Timestamp>,
    /// Dirty-page table: page -> recLSN (earliest record possibly not on
    /// disk).
    pub dpt: HashMap<PageId, Lsn>,
    /// Highest TID seen (TID assignment restarts above this).
    pub max_tid: Tid,
    /// End of the scanned log.
    pub end_lsn: Lsn,
    /// The scan's final record was a `CheckpointEnd`. Together with an
    /// empty ATT this identifies a clean shutdown: redo may still
    /// re-apply the checkpoint's own page images, but nothing was lost.
    pub ends_at_checkpoint: bool,
}

impl Analysis {
    /// Where the redo pass must start.
    pub fn redo_start(&self, scan_start: Lsn) -> Lsn {
        self.dpt
            .values()
            .copied()
            .min()
            .unwrap_or(scan_start)
            .min(scan_start)
            .max(Lsn(0))
    }
}

// ---------------------------------------------------------------------
// Master record (points at the last completed checkpoint)
// ---------------------------------------------------------------------

fn master_path(wal: &Wal) -> PathBuf {
    let mut p = wal.path().to_path_buf();
    let mut name = p.file_name().unwrap_or_default().to_os_string();
    name.push(".master");
    p.set_file_name(name);
    p
}

/// Read the checkpoint-begin LSN from the master record, if present.
pub fn read_master(wal: &Wal) -> Option<Lsn> {
    let bytes = wal.vfs().read_file(&master_path(wal)).ok()??;
    if bytes.len() != 12 {
        return None;
    }
    let lsn = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if immortaldb_common::codec::crc32(&bytes[0..8]) != crc {
        return None;
    }
    Some(Lsn(lsn))
}

/// Atomically persist the checkpoint-begin LSN (write + rename, through
/// the WAL's VFS).
pub fn write_master(wal: &Wal, lsn: Lsn) -> Result<()> {
    let mut bytes = Vec::with_capacity(12);
    bytes.extend_from_slice(&lsn.0.to_le_bytes());
    bytes.extend_from_slice(&immortaldb_common::codec::crc32(&lsn.0.to_le_bytes()).to_le_bytes());
    wal.vfs().write_file_atomic(&master_path(wal), &bytes)
}

/// Remove the master record (tests).
pub fn clear_master(wal: &Wal) {
    let _ = wal.vfs().remove_file(&master_path(wal));
}

// ---------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------

/// Scan the log from `start` (the last checkpoint begin, or 0) and build
/// the ATT/DPT.
pub fn analyze(wal: &Wal, start: Lsn) -> Result<Analysis> {
    let mut a = Analysis::default();
    // Transactions whose Commit/End this scan has already witnessed: a
    // fuzzy checkpoint's ATT snapshot is taken before CheckpointBegin, so
    // a transaction can commit between the snapshot and the CheckpointEnd
    // record — merging the stale snapshot back would roll back committed
    // work during undo.
    let mut ended: std::collections::HashSet<Tid> = std::collections::HashSet::new();
    for entry in wal.iter_from(start)? {
        let e = entry?;
        a.end_lsn = e.next_lsn;
        a.ends_at_checkpoint = matches!(e.record, LogRecord::CheckpointEnd { .. });
        if e.tid > a.max_tid {
            a.max_tid = e.tid;
        }
        match &e.record {
            LogRecord::Begin => {
                a.att.insert(e.tid, e.lsn);
            }
            LogRecord::Commit { ts } => {
                a.committed.insert(e.tid, *ts);
                a.att.remove(&e.tid);
                ended.insert(e.tid);
            }
            LogRecord::End => {
                a.att.remove(&e.tid);
                ended.insert(e.tid);
            }
            LogRecord::Abort => {
                a.att.insert(e.tid, e.lsn);
            }
            LogRecord::CheckpointBegin => {}
            LogRecord::CheckpointEnd { att, dpt } => {
                for (tid, lsn) in att {
                    if !ended.contains(tid) {
                        a.att.entry(*tid).or_insert(*lsn);
                    }
                    if *tid > a.max_tid {
                        a.max_tid = *tid;
                    }
                }
                for (page, rec_lsn) in dpt {
                    a.dpt.entry(*page).or_insert(*rec_lsn);
                }
            }
            LogRecord::PageImages { pages } => {
                for (page, _) in pages {
                    a.dpt.entry(*page).or_insert(e.lsn);
                }
            }
            rec => {
                if let Some(page) = rec.target_page() {
                    a.dpt.entry(page).or_insert(e.lsn);
                }
                if e.tid != Tid::SYSTEM {
                    a.att.insert(e.tid, e.lsn);
                }
            }
        }
    }
    Ok(a)
}

// ---------------------------------------------------------------------
// Redo
// ---------------------------------------------------------------------

/// Repeat history from `redo_start`. Returns the number of operations
/// actually re-applied (skipped ones were already on disk).
///
/// A page whose on-disk image fails CRC verification (torn write at the
/// crash) is tolerated as long as a logged full-page image later in the
/// scan rebuilds it: the page is cached as zeroed (page LSN 0), the image
/// applies unconditionally, and any following logical records replay on
/// top. If the scan ends with a torn page never repaired, redo fails —
/// the database genuinely lost that page.
pub fn redo(wal: &Wal, pool: &BufferPool, analysis: &Analysis, redo_start: Lsn) -> Result<usize> {
    let metrics = pool.metrics().clone();
    let mut applied = 0usize;
    let mut torn: HashSet<PageId> = HashSet::new();
    for entry in wal.iter_from(redo_start)? {
        let e = entry?;
        match &e.record {
            LogRecord::PageImages { pages } => {
                for (id, img) in pages {
                    pool.ensure_allocated(*id)?;
                    let (frame, was_reset) = pool.fetch_or_reset(*id)?;
                    if was_reset {
                        metrics.recovery.torn_pages_repaired.inc();
                    }
                    let mut g = frame.write();
                    if g.page_lsn() < e.lsn {
                        let fresh = crate::page::Page::from_bytes(img)?;
                        *g = fresh;
                        g.set_page_lsn(e.lsn);
                        frame.mark_dirty(e.lsn);
                        applied += 1;
                    }
                    torn.remove(id);
                }
            }
            rec => {
                let Some(page_id) = rec.target_page() else {
                    continue;
                };
                match analysis.dpt.get(&page_id) {
                    Some(rec_lsn) if e.lsn >= *rec_lsn => {}
                    _ => continue,
                }
                pool.ensure_allocated(page_id)?;
                let frame = match pool.fetch(page_id) {
                    Ok(f) => f,
                    Err(Error::Corruption(_)) => {
                        // Torn on disk: its logical records are skipped —
                        // the full-page image that must follow contains
                        // their effects.
                        torn.insert(page_id);
                        continue;
                    }
                    Err(e) => return Err(e),
                };
                let mut g = frame.write();
                if g.page_lsn() >= e.lsn {
                    continue;
                }
                apply_redo(&mut g, &e)?;
                g.set_page_lsn(e.lsn);
                frame.mark_dirty(e.lsn);
                applied += 1;
            }
        }
    }
    if !torn.is_empty() {
        return Err(Error::Corruption(format!(
            "redo finished with unrepaired torn pages {torn:?} \
             (no full-page image in the log; enable page-image logging)"
        )));
    }
    Ok(applied)
}

/// Apply a page-oriented record's redo action.
fn apply_redo(page: &mut crate::page::Page, e: &WalEntry) -> Result<()> {
    match &e.record {
        LogRecord::AddVersion {
            key, data, stub, ..
        } => {
            version::add_version(page, key, data, *stub, e.tid)?;
        }
        LogRecord::ClrPopVersion { key, .. } => {
            version::pop_newest(page, key, e.tid)?;
        }
        LogRecord::InsertRecord { key, data, .. } => {
            page.insert_sorted(key, data, 0)?;
        }
        LogRecord::UpdateRecord { key, new, .. } => {
            page.update_sorted(key, new)?;
        }
        LogRecord::DeleteRecord { key, .. } => {
            page.remove_sorted(key)?;
        }
        LogRecord::ClrDeleteRecord { key, .. } => {
            page.remove_sorted(key)?;
        }
        LogRecord::ClrUpdateRecord { key, data, .. } => {
            page.update_sorted(key, data)?;
        }
        LogRecord::ClrInsertRecord { key, data, .. } => {
            page.insert_sorted(key, data, 0)?;
        }
        LogRecord::EagerStamp { key, ts, .. } => {
            if let Ok(i) = page.find_slot(key) {
                for off in version::chain_offsets(page, i) {
                    if page.rec_is_tid_marked(off) && page.rec_tid(off) == e.tid {
                        page.stamp_rec(off, *ts);
                    }
                }
            }
        }
        other => {
            return Err(Error::Internal(format!(
                "apply_redo called for non-page record {other:?}"
            )));
        }
    }
    Ok(())
}

/// Continuous redo for replication: apply one shipped log entry to the
/// buffer pool, guarded only by page LSNs — no dirty-page table, because
/// a replica replays *everything* not already reflected in its pages.
/// Non-page records (Begin / Commit / End / Abort / checkpoint markers)
/// are no-ops here; the caller tracks commit state separately. Returns
/// whether the entry mutated a page.
///
/// New pages always enter the log as full `PageImages` (tree creation and
/// splits log them), so replaying a shipped prefix in order onto an empty
/// or previously-recovered store needs no other bootstrap.
pub fn apply_entry(pool: &BufferPool, e: &WalEntry) -> Result<bool> {
    match &e.record {
        LogRecord::PageImages { pages } => {
            let mut applied = false;
            for (id, img) in pages {
                pool.ensure_allocated(*id)?;
                let (frame, _) = pool.fetch_or_reset(*id)?;
                let mut g = frame.write();
                if g.page_lsn() < e.lsn {
                    *g = crate::page::Page::from_bytes(img)?;
                    g.set_page_lsn(e.lsn);
                    frame.mark_dirty(e.lsn);
                    applied = true;
                }
            }
            Ok(applied)
        }
        rec => {
            let Some(page_id) = rec.target_page() else {
                return Ok(false);
            };
            pool.ensure_allocated(page_id)?;
            let frame = pool.fetch(page_id)?;
            let mut g = frame.write();
            if g.page_lsn() >= e.lsn {
                return Ok(false);
            }
            apply_redo(&mut g, e)?;
            g.set_page_lsn(e.lsn);
            frame.mark_dirty(e.lsn);
            Ok(true)
        }
    }
}

// ---------------------------------------------------------------------
// Undo
// ---------------------------------------------------------------------

/// Roll back every loser transaction in `att`, writing CLRs and End
/// records. Losers are processed merged, in descending LSN order (classic
/// ARIES). Returns the number of rolled-back transactions.
pub fn undo(
    wal: &Wal,
    pool: &BufferPool,
    locator: &dyn TreeLocator,
    att: &HashMap<Tid, Lsn>,
) -> Result<usize> {
    let t0 = std::time::Instant::now();
    let mut heap: BinaryHeap<(Lsn, Tid)> = att.iter().map(|(t, l)| (*l, *t)).collect();
    let mut last_lsn: HashMap<Tid, Lsn> = att.clone();
    let mut finished = 0usize;
    while let Some((lsn, tid)) = heap.pop() {
        let e = wal.read_at(lsn)?;
        debug_assert_eq!(e.tid, tid, "txn log chain corrupted");
        if let Some(undo_next) = e.record.undo_next() {
            // CLR: skip over already-compensated work.
            if undo_next.is_null() {
                finish_txn(wal, &mut last_lsn, tid)?;
                finished += 1;
            } else {
                heap.push((undo_next, tid));
            }
            continue;
        }
        match &e.record {
            LogRecord::Begin => {
                finish_txn(wal, &mut last_lsn, tid)?;
                finished += 1;
            }
            LogRecord::Abort | LogRecord::Commit { .. } | LogRecord::EagerStamp { .. } => {
                // Markers and eager stamps need no compensation: a loser's
                // stamped versions are popped by the AddVersion undo.
                if e.prev_lsn.is_null() {
                    finish_txn(wal, &mut last_lsn, tid)?;
                    finished += 1;
                } else {
                    heap.push((e.prev_lsn, tid));
                }
            }
            _ => {
                undo_one(wal, pool, locator, &e, &mut last_lsn)?;
                if e.prev_lsn.is_null() {
                    finish_txn(wal, &mut last_lsn, tid)?;
                    finished += 1;
                } else {
                    heap.push((e.prev_lsn, tid));
                }
            }
        }
    }
    let metrics = pool.metrics();
    metrics
        .recovery
        .undo_us
        .set(t0.elapsed().as_micros() as u64);
    metrics.recovery.losers_rolled_back.add(finished as u64);
    Ok(finished)
}

fn finish_txn(wal: &Wal, last_lsn: &mut HashMap<Tid, Lsn>, tid: Tid) -> Result<()> {
    let prev = last_lsn.get(&tid).copied().unwrap_or(NULL_LSN);
    wal.append(tid, prev, &LogRecord::End);
    last_lsn.remove(&tid);
    Ok(())
}

/// Compensate a single operation: apply the inverse on the *current*
/// location of the record and log a CLR.
fn undo_one(
    wal: &Wal,
    pool: &BufferPool,
    locator: &dyn TreeLocator,
    e: &WalEntry,
    last_lsn: &mut HashMap<Tid, Lsn>,
) -> Result<()> {
    let prev = last_lsn.get(&e.tid).copied().unwrap_or(NULL_LSN);
    let clr = match &e.record {
        LogRecord::AddVersion { tree, key, .. } => {
            let page_id = locator.locate_leaf(*tree, key)?;
            let frame = pool.fetch(page_id)?;
            let mut g = frame.write();
            version::pop_newest(&mut g, key, e.tid)?;
            let clr = LogRecord::ClrPopVersion {
                tree: *tree,
                page: page_id,
                key: key.clone(),
                undo_next: e.prev_lsn,
            };
            let lsn = wal.append(e.tid, prev, &clr);
            g.set_page_lsn(lsn);
            frame.mark_dirty(lsn);
            lsn
        }
        LogRecord::InsertRecord { tree, key, .. } => {
            let page_id = locator.locate_leaf(*tree, key)?;
            let frame = pool.fetch(page_id)?;
            let mut g = frame.write();
            g.remove_sorted(key)?;
            let clr = LogRecord::ClrDeleteRecord {
                tree: *tree,
                page: page_id,
                key: key.clone(),
                undo_next: e.prev_lsn,
            };
            let lsn = wal.append(e.tid, prev, &clr);
            g.set_page_lsn(lsn);
            frame.mark_dirty(lsn);
            lsn
        }
        LogRecord::UpdateRecord { tree, key, old, .. } => {
            let need = crate::page::REC_HDR + key.len() + old.len() + 2;
            let page_id = locator.locate_leaf_for_insert(*tree, key, need)?;
            let frame = pool.fetch(page_id)?;
            let mut g = frame.write();
            g.update_sorted(key, old)?;
            let clr = LogRecord::ClrUpdateRecord {
                tree: *tree,
                page: page_id,
                key: key.clone(),
                data: old.clone(),
                undo_next: e.prev_lsn,
            };
            let lsn = wal.append(e.tid, prev, &clr);
            g.set_page_lsn(lsn);
            frame.mark_dirty(lsn);
            lsn
        }
        LogRecord::DeleteRecord { tree, key, old, .. } => {
            let need = crate::page::REC_HDR + key.len() + old.len() + 2;
            let page_id = locator.locate_leaf_for_insert(*tree, key, need)?;
            let frame = pool.fetch(page_id)?;
            let mut g = frame.write();
            g.insert_sorted(key, old, 0)?;
            let clr = LogRecord::ClrInsertRecord {
                tree: *tree,
                page: page_id,
                key: key.clone(),
                data: old.clone(),
                undo_next: e.prev_lsn,
            };
            let lsn = wal.append(e.tid, prev, &clr);
            g.set_page_lsn(lsn);
            frame.mark_dirty(lsn);
            lsn
        }
        other => {
            return Err(Error::Internal(format!("cannot undo {other:?}")));
        }
    };
    last_lsn.insert(e.tid, clr);
    Ok(())
}

/// Runtime transaction rollback: undo the transaction's chain starting at
/// `last_lsn`, writing CLRs, then Abort + End.
pub fn rollback_txn(
    wal: &Wal,
    pool: &BufferPool,
    locator: &dyn TreeLocator,
    tid: Tid,
    last: Lsn,
) -> Result<()> {
    let mut last_lsn: HashMap<Tid, Lsn> = HashMap::new();
    let abort_lsn = wal.append(tid, last, &LogRecord::Abort);
    last_lsn.insert(tid, abort_lsn);
    let mut cursor = last;
    while !cursor.is_null() {
        let e = wal.read_at(cursor)?;
        debug_assert_eq!(e.tid, tid);
        if let Some(undo_next) = e.record.undo_next() {
            cursor = undo_next;
            continue;
        }
        match &e.record {
            LogRecord::Begin => break,
            LogRecord::Abort | LogRecord::EagerStamp { .. } => {
                cursor = e.prev_lsn;
            }
            _ => {
                undo_one(wal, pool, locator, &e, &mut last_lsn)?;
                cursor = e.prev_lsn;
            }
        }
    }
    let prev = last_lsn.get(&tid).copied().unwrap_or(abort_lsn);
    wal.append(tid, prev, &LogRecord::End);
    Ok(())
}

// ---------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------

/// Take a checkpoint: flush all dirty pages (which also lazily stamps
/// their committed records via the flush hook), log Begin/End checkpoint
/// records, fsync everything and persist the master record.
///
/// Returns the **redo-scan-start LSN**: recovery will never need log
/// records before it, which is exactly the condition (§2.2) under which
/// completed timestamping is stable and PTT entries may be garbage
/// collected.
pub fn checkpoint(wal: &Wal, pool: &BufferPool, att: Vec<(Tid, Lsn)>) -> Result<Lsn> {
    pool.metrics().recovery.checkpoints.inc();
    let begin = wal.append(Tid::SYSTEM, NULL_LSN, &LogRecord::CheckpointBegin);
    pool.flush_all()?;
    let dpt = pool.dirty_page_table();
    let redo_scan_start = dpt
        .iter()
        .map(|(_, l)| *l)
        .min()
        .unwrap_or(begin)
        .min(begin);
    wal.append(
        Tid::SYSTEM,
        NULL_LSN,
        &LogRecord::CheckpointEnd { att, dpt },
    );
    wal.flush(Durability::Fsync)?;
    pool.disk().sync()?;
    write_master(wal, begin)?;
    Ok(redo_scan_start)
}

/// Full restart sequence up to (and excluding) undo: returns the analysis
/// so the caller can construct a tree locator and run [`undo`], then
/// resume normal operation.
pub fn analyze_and_redo(wal: &Wal, pool: &BufferPool) -> Result<Analysis> {
    let metrics = pool.metrics().clone();
    let t0 = std::time::Instant::now();
    let start = read_master(wal).unwrap_or(NULL_LSN);
    let mut analysis = analyze(wal, start)?;
    // A checkpoint-ATT transaction whose Commit landed *before* the
    // checkpoint-begin record (the snapshot precedes the append) is
    // invisible to a scan starting at `start`. Rescan from the oldest
    // ATT entry so every such Commit is witnessed and the transaction is
    // correctly classified as a winner.
    if let Some(oldest) = analysis.att.values().copied().min() {
        if oldest < start {
            analysis = analyze(wal, oldest)?;
        }
    }
    metrics
        .recovery
        .analyze_us
        .set(t0.elapsed().as_micros() as u64);
    let t1 = std::time::Instant::now();
    let redo_start = analysis.redo_start(start);
    let applied = redo(wal, pool, &analysis, redo_start)?;
    metrics
        .recovery
        .redo_us
        .set(t1.elapsed().as_micros() as u64);
    metrics.recovery.records_replayed.add(applied as u64);
    Ok(analysis)
}

// Used by tests and the engine to locate the master next to a WAL path.
pub fn master_file_for(path: &Path) -> PathBuf {
    let mut p = path.to_path_buf();
    let mut name = p.file_name().unwrap_or_default().to_os_string();
    name.push(".master");
    p.set_file_name(name);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::page::{PageType, FLAG_VERSIONED};
    use std::sync::Arc;

    struct Fixture {
        disk: Arc<DiskManager>,
        wal: Arc<Wal>,
        pool: Arc<BufferPool>,
        db: PathBuf,
        wal_path: PathBuf,
    }

    impl Fixture {
        fn new(name: &str) -> Fixture {
            let mut db = std::env::temp_dir();
            db.push(format!("immortal-rec-{name}-{}.db", std::process::id()));
            let mut wal_path = std::env::temp_dir();
            wal_path.push(format!("immortal-rec-{name}-{}.wal", std::process::id()));
            let _ = std::fs::remove_file(&db);
            let _ = std::fs::remove_file(&wal_path);
            let _ = std::fs::remove_file(master_file_for(&wal_path));
            Fixture::open(db, wal_path)
        }

        fn open(db: PathBuf, wal_path: PathBuf) -> Fixture {
            let (disk, _) = DiskManager::open(&db).unwrap();
            let disk = Arc::new(disk);
            let wal = Arc::new(Wal::open(&wal_path).unwrap());
            let pool = Arc::new(BufferPool::new(Arc::clone(&disk), Arc::clone(&wal), 64));
            Fixture {
                disk,
                wal,
                pool,
                db,
                wal_path,
            }
        }

        /// Simulated crash: drop all cached pages, reopen everything.
        fn crash_and_reopen(self) -> Fixture {
            let db = self.db.clone();
            let wal_path = self.wal_path.clone();
            self.wal.flush(Durability::Fsync).unwrap();
            drop(self);
            Fixture::open(db, wal_path)
        }

        fn cleanup(self) {
            let _ = std::fs::remove_file(&self.db);
            let _ = std::fs::remove_file(&self.wal_path);
            let _ = std::fs::remove_file(master_file_for(&self.wal_path));
        }
    }

    /// A locator for single-page "trees" used in these substrate tests.
    struct FixedLocator(PageId);
    impl TreeLocator for FixedLocator {
        fn locate_leaf(&self, _tree: TreeId, _key: &[u8]) -> Result<PageId> {
            Ok(self.0)
        }
        fn locate_leaf_for_insert(
            &self,
            _tree: TreeId,
            _key: &[u8],
            _space: usize,
        ) -> Result<PageId> {
            Ok(self.0)
        }
    }

    #[test]
    fn analysis_classifies_winners_and_losers() {
        let f = Fixture::new("analysis");
        let t1 = Tid(1);
        let t2 = Tid(2);
        let b1 = f.wal.append(t1, NULL_LSN, &LogRecord::Begin);
        let b2 = f.wal.append(t2, NULL_LSN, &LogRecord::Begin);
        let c1 = f.wal.append(
            t1,
            b1,
            &LogRecord::Commit {
                ts: Timestamp::new(20, 0),
            },
        );
        f.wal.append(t1, c1, &LogRecord::End);
        let a2 = f.wal.append(
            t2,
            b2,
            &LogRecord::AddVersion {
                tree: TreeId(5),
                page: PageId(3),
                key: b"k".to_vec(),
                data: b"v".to_vec(),
                stub: false,
            },
        );
        let a = analyze(&f.wal, Lsn(0)).unwrap();
        assert_eq!(a.committed.get(&t1), Some(&Timestamp::new(20, 0)));
        assert!(!a.att.contains_key(&t1));
        assert_eq!(a.att.get(&t2), Some(&a2));
        assert_eq!(a.max_tid, t2);
        assert_eq!(a.dpt.get(&PageId(3)), Some(&a2));
        f.cleanup();
    }

    #[test]
    fn redo_replays_lost_versions_and_undo_rolls_back_losers() {
        let f = Fixture::new("redo-undo");
        // Set up a versioned leaf page on disk.
        let frame = f.pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        let page_id = frame.page_id();
        drop(frame);
        f.pool.flush_all().unwrap();

        // Committed txn 1 inserts "a"; loser txn 2 inserts "b".
        let t1 = Tid(1);
        let t2 = Tid(2);
        let b1 = f.wal.append(t1, NULL_LSN, &LogRecord::Begin);
        let rec1 = LogRecord::AddVersion {
            tree: TreeId(5),
            page: page_id,
            key: b"a".to_vec(),
            data: b"va".to_vec(),
            stub: false,
        };
        let l1 = f.wal.append(t1, b1, &rec1);
        let c1 = f.wal.append(
            t1,
            l1,
            &LogRecord::Commit {
                ts: Timestamp::new(20, 0),
            },
        );
        f.wal.append(t1, c1, &LogRecord::End);
        let b2 = f.wal.append(t2, NULL_LSN, &LogRecord::Begin);
        let rec2 = LogRecord::AddVersion {
            tree: TreeId(5),
            page: page_id,
            key: b"b".to_vec(),
            data: b"vb".to_vec(),
            stub: false,
        };
        f.wal.append(t2, b2, &rec2);

        // Apply both to the in-memory page, but "crash" before flushing.
        {
            let frame = f.pool.fetch(page_id).unwrap();
            let mut g = frame.write();
            version::add_version(&mut g, b"a", b"va", false, t1).unwrap();
            version::add_version(&mut g, b"b", b"vb", false, t2).unwrap();
            // Intentionally do NOT mark dirty / flush: simulating loss.
        }
        let f = f.crash_and_reopen();

        let analysis = analyze_and_redo(&f.wal, &f.pool).unwrap();
        assert_eq!(analysis.att.len(), 1);
        undo(&f.wal, &f.pool, &FixedLocator(page_id), &analysis.att).unwrap();

        let frame = f.pool.fetch(page_id).unwrap();
        let g = frame.read();
        // Winner's record is back; loser's is gone.
        assert!(g.find_slot(b"a").is_ok());
        assert!(g.find_slot(b"b").is_err());
        let off = g.slot(g.find_slot(b"a").unwrap());
        assert!(g.rec_is_tid_marked(off)); // stamping was lost with the crash
        assert_eq!(g.rec_tid(off), t1);
        drop(g);
        f.cleanup();
    }

    #[test]
    fn redo_is_idempotent() {
        let f = Fixture::new("idempotent");
        let frame = f.pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        let page_id = frame.page_id();
        drop(frame);
        f.pool.flush_all().unwrap();

        let t1 = Tid(1);
        let b1 = f.wal.append(t1, NULL_LSN, &LogRecord::Begin);
        let l1 = f.wal.append(
            t1,
            b1,
            &LogRecord::AddVersion {
                tree: TreeId(5),
                page: page_id,
                key: b"a".to_vec(),
                data: b"va".to_vec(),
                stub: false,
            },
        );
        let c1 = f.wal.append(
            t1,
            l1,
            &LogRecord::Commit {
                ts: Timestamp::new(20, 0),
            },
        );
        f.wal.append(t1, c1, &LogRecord::End);
        let f = f.crash_and_reopen();

        let analysis = analyze(&f.wal, Lsn(0)).unwrap();
        let n1 = redo(&f.wal, &f.pool, &analysis, Lsn(0)).unwrap();
        assert_eq!(n1, 1);
        // Running redo again applies nothing (page LSN guard).
        let n2 = redo(&f.wal, &f.pool, &analysis, Lsn(0)).unwrap();
        assert_eq!(n2, 0);
        let frame = f.pool.fetch(page_id).unwrap();
        let g = frame.read();
        assert_eq!(g.slot_count(), 1);
        drop(g);
        f.cleanup();
    }

    #[test]
    fn page_images_redo_atomically() {
        let f = Fixture::new("images");
        let fr1 = f.pool.new_page(PageType::Leaf, 0, 0).unwrap();
        let id1 = fr1.page_id();
        drop(fr1);
        f.pool.flush_all().unwrap();

        // Build two images: modified id1, brand new id2 beyond file end.
        let mut img1 = crate::page::Page::zeroed();
        img1.format(id1, PageType::Leaf, 0, 0);
        img1.insert_sorted(b"x", b"1", 0).unwrap();
        let id2 = PageId(f.disk.num_pages()); // not yet allocated
        let mut img2 = crate::page::Page::zeroed();
        img2.format(id2, PageType::Leaf, 0, 0);
        img2.insert_sorted(b"y", b"2", 0).unwrap();
        f.wal.append(
            Tid::SYSTEM,
            NULL_LSN,
            &LogRecord::PageImages {
                pages: vec![
                    (id1, img1.as_bytes().to_vec()),
                    (id2, img2.as_bytes().to_vec()),
                ],
            },
        );
        let f = f.crash_and_reopen();
        analyze_and_redo(&f.wal, &f.pool).unwrap();
        let p1 = f.pool.fetch(id1).unwrap();
        assert_eq!(p1.read().rec_key(p1.read().slot(0)), b"x");
        let p2 = f.pool.fetch(id2).unwrap();
        assert_eq!(p2.read().rec_key(p2.read().slot(0)), b"y");
        f.cleanup();
    }

    #[test]
    fn runtime_rollback_restores_state() {
        let f = Fixture::new("rollback");
        let frame = f.pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        let page_id = frame.page_id();

        let t1 = Tid(1);
        let b1 = f.wal.append(t1, NULL_LSN, &LogRecord::Begin);
        let mut last = b1;
        {
            let mut g = frame.write();
            for (k, v) in [(b"a", b"1"), (b"b", b"2")] {
                let rec = LogRecord::AddVersion {
                    tree: TreeId(5),
                    page: page_id,
                    key: k.to_vec(),
                    data: v.to_vec(),
                    stub: false,
                };
                last = f.wal.append(t1, last, &rec);
                version::add_version(&mut g, k, v, false, t1).unwrap();
                g.set_page_lsn(last);
            }
            frame.mark_dirty(b1);
        }
        rollback_txn(&f.wal, &f.pool, &FixedLocator(page_id), t1, last).unwrap();
        let g = frame.read();
        assert_eq!(g.slot_count(), 0);
        drop(g);
        // The log ends with Abort ... CLRs ... End.
        let entries: Vec<_> = f
            .wal
            .iter_from(Lsn(0))
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        assert!(matches!(entries.last().unwrap().record, LogRecord::End));
        assert!(entries.iter().any(|e| matches!(e.record, LogRecord::Abort)));
        assert_eq!(entries.iter().filter(|e| e.record.is_clr()).count(), 2);
        f.cleanup();
    }

    #[test]
    fn checkpoint_roundtrip_and_master_record() {
        let f = Fixture::new("ckpt");
        let frame = f.pool.new_page(PageType::Leaf, 0, 0).unwrap();
        {
            let mut g = frame.write();
            g.insert_sorted(b"k", b"v", 0).unwrap();
        }
        frame.mark_dirty(Lsn(1));
        drop(frame);
        let rss = checkpoint(&f.wal, &f.pool, vec![(Tid(9), Lsn(5))]).unwrap();
        let master = read_master(&f.wal).unwrap();
        assert_eq!(master, rss); // all pages flushed -> redo starts at begin
                                 // Analysis from the checkpoint sees the ATT snapshot.
        let a = analyze(&f.wal, master).unwrap();
        assert_eq!(a.att.get(&Tid(9)), Some(&Lsn(5)));
        f.cleanup();
    }

    #[test]
    fn recovery_after_abort_record_continues_undo() {
        // Crash in the middle of a rollback: Abort logged, one op
        // compensated, one not. Recovery must finish the job.
        let f = Fixture::new("midabort");
        let frame = f.pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        let page_id = frame.page_id();
        drop(frame);
        f.pool.flush_all().unwrap();

        let t = Tid(3);
        let b = f.wal.append(t, NULL_LSN, &LogRecord::Begin);
        let r1 = LogRecord::AddVersion {
            tree: TreeId(5),
            page: page_id,
            key: b"a".to_vec(),
            data: b"1".to_vec(),
            stub: false,
        };
        let l1 = f.wal.append(t, b, &r1);
        let r2 = LogRecord::AddVersion {
            tree: TreeId(5),
            page: page_id,
            key: b"b".to_vec(),
            data: b"2".to_vec(),
            stub: false,
        };
        let l2 = f.wal.append(t, l1, &r2);
        let ab = f.wal.append(t, l2, &LogRecord::Abort);
        // CLR for the second op only (undo of "b" happened pre-crash).
        f.wal.append(
            t,
            ab,
            &LogRecord::ClrPopVersion {
                tree: TreeId(5),
                page: page_id,
                key: b"b".to_vec(),
                undo_next: l1,
            },
        );
        // On-disk page state reflects: both ops applied, then "b" popped.
        {
            let frame = f.pool.fetch(page_id).unwrap();
            let mut g = frame.write();
            version::add_version(&mut g, b"a", b"1", false, t).unwrap();
            version::add_version(&mut g, b"b", b"2", false, t).unwrap();
            version::pop_newest(&mut g, b"b", t).unwrap();
            // Page LSN reflects the CLR so redo skips everything.
            g.set_page_lsn(f.wal.end_lsn());
            frame.mark_dirty(b);
        }
        f.pool.flush_all().unwrap();
        let f = f.crash_and_reopen();
        let analysis = analyze_and_redo(&f.wal, &f.pool).unwrap();
        assert!(analysis.att.contains_key(&t));
        undo(&f.wal, &f.pool, &FixedLocator(page_id), &analysis.att).unwrap();
        let frame = f.pool.fetch(page_id).unwrap();
        let g = frame.read();
        assert_eq!(g.slot_count(), 0, "both inserts rolled back");
        drop(g);
        f.cleanup();
    }
}

#[cfg(test)]
mod checkpoint_race_tests {
    use super::*;
    use crate::disk::DiskManager;
    use crate::page::{PageType, FLAG_VERSIONED};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn env(name: &str) -> (Arc<BufferPool>, Arc<Wal>, PathBuf, PathBuf) {
        let mut db = std::env::temp_dir();
        db.push(format!(
            "immortal-ckptrace-{name}-{}.db",
            std::process::id()
        ));
        let mut wp = std::env::temp_dir();
        wp.push(format!(
            "immortal-ckptrace-{name}-{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wp);
        let _ = std::fs::remove_file(master_file_for(&wp));
        let (disk, _) = DiskManager::open(&db).unwrap();
        let wal = Arc::new(Wal::open(&wp).unwrap());
        let pool = Arc::new(BufferPool::new(Arc::new(disk), Arc::clone(&wal), 64));
        (pool, wal, db, wp)
    }

    /// A transaction that commits between the checkpoint's ATT snapshot
    /// and the CheckpointEnd record must NOT be classified as a loser —
    /// undoing it would roll back committed, durable work.
    #[test]
    fn committed_txn_in_checkpoint_att_is_not_resurrected() {
        let (pool, wal, db, wp) = env("resurrect");
        let frame = pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        let page_id = frame.page_id();
        drop(frame);
        pool.flush_all().unwrap();

        let t = Tid(7);
        let b = wal.append(t, NULL_LSN, &LogRecord::Begin);
        let l1 = wal.append(
            t,
            b,
            &LogRecord::AddVersion {
                tree: TreeId(5),
                page: page_id,
                key: b"k".to_vec(),
                data: b"v".to_vec(),
                stub: false,
            },
        );
        // ATT snapshot taken here (T active, last_lsn = l1)...
        let att_snapshot = vec![(t, l1)];
        // ...then T commits BEFORE CheckpointBegin is appended.
        let c = wal.append(
            t,
            l1,
            &LogRecord::Commit {
                ts: Timestamp::new(20, 0),
            },
        );
        wal.append(t, c, &LogRecord::End);
        let begin = wal.append(Tid::SYSTEM, NULL_LSN, &LogRecord::CheckpointBegin);
        wal.append(
            Tid::SYSTEM,
            NULL_LSN,
            &LogRecord::CheckpointEnd {
                att: att_snapshot.clone(),
                dpt: vec![],
            },
        );
        wal.flush(Durability::Fsync).unwrap();
        write_master(&wal, begin).unwrap();

        // Recovery: T's Commit is before the scan start; the rescan from
        // the oldest ATT entry must witness it.
        let analysis = analyze_and_redo(&wal, &pool).unwrap();
        assert!(
            !analysis.att.contains_key(&t),
            "committed transaction resurrected as loser: {:?}",
            analysis.att
        );
        assert!(analysis.committed.contains_key(&t));

        // Variant: commit lands AFTER CheckpointBegin (the ended-set
        // guard path).
        let t2 = Tid(8);
        let b2 = wal.append(t2, NULL_LSN, &LogRecord::Begin);
        let l2 = wal.append(
            t2,
            b2,
            &LogRecord::AddVersion {
                tree: TreeId(5),
                page: page_id,
                key: b"k2".to_vec(),
                data: b"v".to_vec(),
                stub: false,
            },
        );
        let begin2 = wal.append(Tid::SYSTEM, NULL_LSN, &LogRecord::CheckpointBegin);
        let c2 = wal.append(
            t2,
            l2,
            &LogRecord::Commit {
                ts: Timestamp::new(40, 0),
            },
        );
        wal.append(t2, c2, &LogRecord::End);
        wal.append(
            Tid::SYSTEM,
            NULL_LSN,
            &LogRecord::CheckpointEnd {
                att: vec![(t2, l2)],
                dpt: vec![],
            },
        );
        wal.flush(Durability::Fsync).unwrap();
        write_master(&wal, begin2).unwrap();
        let analysis = analyze_and_redo(&wal, &pool).unwrap();
        assert!(
            !analysis.att.contains_key(&t2),
            "ended-set guard failed: {:?}",
            analysis.att
        );
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(master_file_for(&wp));
        let _ = std::fs::remove_file(wp);
    }
}
