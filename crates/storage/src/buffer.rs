//! Buffer pool: cached page frames with latching, WAL-rule flushing and
//! the lazy-timestamping flush hook.
//!
//! Every cached page lives in a [`Frame`] holding the page image behind a
//! latch plus a seqlock-style version counter. Fetching returns a
//! [`FrameRef`]; the frame stays resident at least as long as any
//! reference exists.
//!
//! Concurrency (DESIGN.md §11):
//!
//! * The frame table is **sharded**: a power-of-two number of shards,
//!   each a `Mutex<HashMap>`, keyed by a fibonacci hash of the page id,
//!   so concurrent readers of distinct pages never contend on one lock.
//! * Misses use **singleflight**: the first thread to miss a page posts
//!   an in-flight token in the shard and reads disk; concurrent misses
//!   on the same page wait on the shard's condvar instead of issuing
//!   duplicate reads.
//! * Readers may use the **optimistic latch protocol**
//!   ([`Frame::read_optimistic`]): load the version counter, copy the
//!   page image without taking the latch, and revalidate the counter —
//!   retrying (and finally falling back to the shared latch) when a
//!   writer interleaved. Writers make the counter odd while they hold
//!   the write latch and bump it even again on release.
//!
//! Eviction is a second-chance sweep over unreferenced frames across
//! shards; dirty victims are written back, after (a) flushing the WAL up
//! to the page LSN and (b) running the flush hook — which is how
//! Immortal DB timestamps non-timestamped records of committed
//! transactions "just before a cached page is flushed to disk" (§2.2).

use std::cell::UnsafeCell;
use std::collections::{HashMap, HashSet};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use immortaldb_common::{Lsn, PageId, Result, NULL_LSN};
use immortaldb_obs::MetricsRegistry;

use crate::disk::DiskManager;
use crate::logrec::LogRecord;
use crate::page::{Page, PageType};
use crate::wal::{Durability, Wal};

use immortaldb_common::{Error, Tid};

/// Hook invoked with a write-latched page right before its image is
/// written to disk. The transaction manager installs a hook that stamps
/// committed TID-marked records (unlogged) so timestamping is durable
/// before PTT garbage collection can touch the transaction's entry.
pub trait FlushHook: Send + Sync {
    fn before_flush(&self, page: &mut Page);
}

/// Optimistic read attempts before [`Frame::read_optimistic`] falls back
/// to the pessimistic shared latch.
pub const OPTIMISTIC_RETRIES: u32 = 3;

/// A cached page frame.
///
/// The page image lives in an `UnsafeCell` guarded by two cooperating
/// mechanisms: a conventional reader-writer latch (`latch`) and a
/// seqlock version counter (`version`, odd while a writer holds the
/// write latch). Pessimistic readers/writers go through the latch;
/// optimistic readers copy the image latch-free and discard the copy if
/// the counter moved.
pub struct Frame {
    id: PageId,
    latch: RwLock<()>,
    page: UnsafeCell<Page>,
    /// Seqlock word: even = no writer, odd = writer active. Bumped twice
    /// per write-latch hold (acquire and release).
    version: AtomicU64,
    dirty: AtomicBool,
    /// LSN of the first record that dirtied this page since it was last
    /// clean (recLSN in ARIES; drives the dirty-page table).
    rec_lsn: AtomicU64,
    /// Second-chance bit for the eviction sweep.
    referenced: AtomicBool,
}

// The UnsafeCell is only written under the exclusive latch; racy reads
// happen only in `try_read_optimistic`, which validates the version
// counter before the copy is used.
unsafe impl Send for Frame {}
unsafe impl Sync for Frame {}

/// Shared handle to a cached page. Holding one pins the frame.
pub type FrameRef = Arc<Frame>;

/// Shared (pessimistic) latch on a page.
pub struct PageReadGuard<'a> {
    frame: &'a Frame,
    _latch: std::sync::RwLockReadGuard<'a, ()>,
}

impl Deref for PageReadGuard<'_> {
    type Target = Page;
    fn deref(&self) -> &Page {
        unsafe { &*self.frame.page.get() }
    }
}

/// Exclusive latch on a page. Acquiring one makes the frame's version
/// counter odd; dropping it makes the counter even again, invalidating
/// any optimistic copy taken in between.
pub struct PageWriteGuard<'a> {
    frame: &'a Frame,
    _latch: std::sync::RwLockWriteGuard<'a, ()>,
}

impl Deref for PageWriteGuard<'_> {
    type Target = Page;
    fn deref(&self) -> &Page {
        unsafe { &*self.frame.page.get() }
    }
}

impl DerefMut for PageWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Page {
        unsafe { &mut *self.frame.page.get() }
    }
}

impl Drop for PageWriteGuard<'_> {
    fn drop(&mut self) {
        // Back to even: publish the writes to optimistic readers.
        self.frame.version.fetch_add(1, Ordering::Release);
    }
}

impl Frame {
    fn new(id: PageId, page: Page, dirty: bool) -> Frame {
        Frame {
            id,
            latch: RwLock::new(()),
            page: UnsafeCell::new(page),
            version: AtomicU64::new(0),
            dirty: AtomicBool::new(dirty),
            rec_lsn: AtomicU64::new(0),
            referenced: AtomicBool::new(true),
        }
    }

    pub fn page_id(&self) -> PageId {
        self.id
    }

    /// Acquire the page read latch.
    pub fn read(&self) -> PageReadGuard<'_> {
        self.referenced.store(true, Ordering::Relaxed);
        PageReadGuard {
            frame: self,
            _latch: self.latch.read(),
        }
    }

    /// Acquire the page write latch and mark a writer active.
    pub fn write(&self) -> PageWriteGuard<'_> {
        self.referenced.store(true, Ordering::Relaxed);
        let latch = self.latch.write();
        // Odd: optimistic readers that load the counter now (or revalidate
        // against a pre-acquire value) will discard their copy. AcqRel so
        // the bump is ordered before the page writes that follow.
        self.version.fetch_add(1, Ordering::AcqRel);
        PageWriteGuard {
            frame: self,
            _latch: latch,
        }
    }

    /// Current seqlock version (even = no writer active). Exposed for
    /// latch-protocol tests.
    pub fn latch_version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// One optimistic read attempt: copy the page image without taking
    /// the latch and run `f` on the copy only if the version counter
    /// proves no writer interleaved. Returns `None` on conflict.
    pub fn try_read_optimistic<R>(&self, f: impl FnOnce(&Page) -> R) -> Option<R> {
        let v1 = self.version.load(Ordering::Acquire);
        if v1 & 1 != 0 {
            return None; // writer active right now
        }
        // Racy copy: a writer may be mutating the image while we copy.
        // The torn copy is never observed — validation below rejects it.
        let copy = unsafe {
            let mut copy = std::mem::MaybeUninit::<Page>::uninit();
            std::ptr::copy_nonoverlapping(self.page.get() as *const Page, copy.as_mut_ptr(), 1);
            copy.assume_init()
        };
        // Order the copy before the validating load.
        fence(Ordering::Acquire);
        if self.version.load(Ordering::Relaxed) != v1 {
            return None; // a writer interleaved; copy may be torn
        }
        Some(f(&copy))
    }

    /// Read the page via the optimistic protocol: up to
    /// [`OPTIMISTIC_RETRIES`] latch-free attempts, then a pessimistic
    /// shared-latch fallback. `f` runs on a validated (never torn) page
    /// image either way.
    pub fn read_optimistic<R>(&self, metrics: &MetricsRegistry, f: impl Fn(&Page) -> R) -> R {
        self.referenced.store(true, Ordering::Relaxed);
        for _ in 0..OPTIMISTIC_RETRIES {
            if let Some(r) = self.try_read_optimistic(&f) {
                metrics.latch.optimistic_reads.inc();
                return r;
            }
            metrics.latch.optimistic_retries.inc();
            std::hint::spin_loop();
        }
        metrics.latch.pessimistic_fallbacks.inc();
        let g = self.read();
        f(&g)
    }

    /// Record that a logged mutation at `lsn` dirtied this page. Callers
    /// must hold the write latch and have set the page LSN already.
    pub fn mark_dirty(&self, lsn: Lsn) {
        if !self.dirty.swap(true, Ordering::SeqCst) {
            self.rec_lsn.store(lsn.0, Ordering::SeqCst);
        }
    }

    /// Mark dirty with no associated log record (unlogged timestamp
    /// application). Keeps recLSN untouched if already dirty; otherwise
    /// pins recLSN at the current end of log is unnecessary — unlogged
    /// changes need no redo, so a clean page stays out of the DPT and the
    /// page is simply written back by the eviction/checkpoint path.
    pub fn mark_dirty_unlogged(&self) {
        self.dirty.store(true, Ordering::SeqCst);
    }

    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::SeqCst)
    }

    pub fn rec_lsn(&self) -> Lsn {
        Lsn(self.rec_lsn.load(Ordering::SeqCst))
    }
}

/// One frame-table shard: resident frames plus the in-flight miss
/// tokens for singleflight.
struct ShardState {
    frames: HashMap<PageId, FrameRef>,
    inflight: HashSet<PageId>,
}

struct Shard {
    state: Mutex<ShardState>,
    /// Signalled when an in-flight load completes (either way).
    loaded: Condvar,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            state: Mutex::new(ShardState {
                frames: HashMap::new(),
                inflight: HashSet::new(),
            }),
            loaded: Condvar::new(),
        }
    }
}

/// Buffer pool over a disk manager and WAL.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    wal: Arc<Wal>,
    capacity: usize,
    shards: Vec<Shard>,
    /// `shards.len() - 1`; shard count is a power of two.
    shard_mask: usize,
    /// Total resident frames across shards; drives eviction.
    len: AtomicUsize,
    /// Rotating start shard for the eviction sweep, so one shard is not
    /// always drained first.
    clock: AtomicUsize,
    flush_hook: RwLock<Option<Arc<dyn FlushHook>>>,
    /// When set, every page write-back first logs the full page image
    /// (and flushes the WAL), so a torn data-page write — detected by the
    /// page CRC on the next read — can be repaired during redo. Off by
    /// default: it roughly doubles write volume and matters only under a
    /// torn-write failure model.
    page_image_logging: AtomicBool,
    metrics: MetricsRegistry,
}

impl BufferPool {
    /// Pool with a private metrics registry (tests, standalone use).
    pub fn new(disk: Arc<DiskManager>, wal: Arc<Wal>, capacity: usize) -> BufferPool {
        Self::with_metrics(disk, wal, capacity, MetricsRegistry::new())
    }

    /// Pool recording into a shared engine-wide registry, with the
    /// automatic shard count.
    pub fn with_metrics(
        disk: Arc<DiskManager>,
        wal: Arc<Wal>,
        capacity: usize,
        metrics: MetricsRegistry,
    ) -> BufferPool {
        Self::with_config(disk, wal, capacity, 0, metrics)
    }

    /// Full control: `shards` is rounded up to a power of two; 0 picks
    /// an automatic count from the host's parallelism.
    pub fn with_config(
        disk: Arc<DiskManager>,
        wal: Arc<Wal>,
        capacity: usize,
        shards: usize,
        metrics: MetricsRegistry,
    ) -> BufferPool {
        let shards = if shards == 0 {
            let cores = std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
            (cores * 4).clamp(8, 64)
        } else {
            shards
        }
        .next_power_of_two();
        BufferPool {
            disk,
            wal,
            capacity: capacity.max(8),
            shard_mask: shards - 1,
            shards: (0..shards).map(|_| Shard::new()).collect(),
            len: AtomicUsize::new(0),
            clock: AtomicUsize::new(0),
            flush_hook: RwLock::new(None),
            page_image_logging: AtomicBool::new(false),
            metrics,
        }
    }

    /// Number of frame-table shards (power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Enable or disable full-page-image logging on write-back.
    pub fn set_page_image_logging(&self, on: bool) {
        self.page_image_logging.store(on, Ordering::SeqCst);
    }

    /// Whether write-backs log full page images first.
    pub fn page_image_logging(&self) -> bool {
        self.page_image_logging.load(Ordering::SeqCst)
    }

    /// The registry this pool (and components reached through it) records
    /// into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Install the lazy-timestamping flush hook (done once the transaction
    /// manager exists).
    pub fn set_flush_hook(&self, hook: Arc<dyn FlushHook>) {
        *self.flush_hook.write() = Some(hook);
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Number of page write-backs performed so far (thin shim over the
    /// registry's `buffer.flushes`; kept because tests assert on it).
    pub fn flush_count(&self) -> u64 {
        self.metrics.buffer.flushes.get()
    }

    /// Fibonacci-hash a page id into its shard.
    fn shard_for(&self, id: PageId) -> &Shard {
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize & self.shard_mask]
    }

    /// Lock a shard, counting contention: a failed `try_lock` means
    /// another thread holds this shard right now.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, ShardState> {
        match shard.state.try_lock() {
            Some(g) => g,
            None => {
                self.metrics.buffer.shard_conflicts.inc();
                shard.state.lock()
            }
        }
    }

    /// Fetch a page, reading it from disk on a miss. Concurrent misses
    /// on the same page collapse into one disk read (singleflight).
    pub fn fetch(&self, id: PageId) -> Result<FrameRef> {
        self.metrics.buffer.fetches.inc();
        let shard = self.shard_for(id);
        let mut state = self.lock_shard(shard);
        let mut waited = false;
        loop {
            if let Some(f) = state.frames.get(&id) {
                f.referenced.store(true, Ordering::Relaxed);
                self.metrics.buffer.hits.inc();
                return Ok(Arc::clone(f));
            }
            if state.inflight.contains(&id) {
                // Another thread is already reading this page from disk;
                // wait for it instead of issuing a duplicate read.
                if !waited {
                    self.metrics.buffer.singleflight_waits.inc();
                    waited = true;
                }
                shard.loaded.wait(&mut state);
                continue;
            }
            break;
        }
        // We are the loader: post the token and read outside the lock.
        state.inflight.insert(id);
        drop(state);
        self.metrics.buffer.misses.inc();
        self.metrics.disk.reads.inc();
        let loaded = self.disk.read_page(id);
        let mut state = self.lock_shard(shard);
        state.inflight.remove(&id);
        shard.loaded.notify_all();
        // On error, waiters woken by the notify find neither frame nor
        // token and retry their own load, surfacing their own error.
        let page = loaded?;
        if let Some(f) = state.frames.get(&id) {
            // Raced with fetch_or_reset / new_page; reuse the resident
            // frame rather than shadowing it.
            return Ok(Arc::clone(f));
        }
        let frame = Arc::new(Frame::new(id, page, false));
        state.frames.insert(id, Arc::clone(&frame));
        drop(state);
        let total = self.len.fetch_add(1, Ordering::Relaxed) + 1;
        if total > self.capacity {
            self.evict(total - self.capacity);
        }
        Ok(frame)
    }

    /// [`Self::fetch`], but a page whose on-disk image fails CRC
    /// verification is cached as a zeroed frame (page LSN 0) instead of
    /// erroring. Recovery uses this so a torn page can be rebuilt from a
    /// logged full-page image; returns whether the page was reset.
    pub fn fetch_or_reset(&self, id: PageId) -> Result<(FrameRef, bool)> {
        match self.fetch(id) {
            Ok(f) => Ok((f, false)),
            Err(Error::Corruption(_)) => {
                let shard = self.shard_for(id);
                let mut state = self.lock_shard(shard);
                if let Some(f) = state.frames.get(&id) {
                    return Ok((Arc::clone(f), false));
                }
                let frame = Arc::new(Frame::new(id, Page::zeroed(), false));
                state.frames.insert(id, Arc::clone(&frame));
                self.len.fetch_add(1, Ordering::Relaxed);
                Ok((frame, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Evict up to `want` frames: sweep shards starting at the clock
    /// hand, picking unpinned second-chance victims, then write them
    /// back WITHOUT any shard lock held — the flush hook resolves
    /// timestamps through the PTT, which lives in this same pool, so
    /// holding a shard mutex across write_back could self-deadlock on a
    /// PTT page miss mapping to the same shard (and would serialize
    /// fetches behind I/O).
    fn evict(&self, want: usize) {
        let n = self.shards.len();
        let start = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut victims: Vec<FrameRef> = Vec::new();
        for i in 0..n {
            if victims.len() >= want {
                break;
            }
            let shard = &self.shards[(start + i) % n];
            let mut state = self.lock_shard(shard);
            Self::pick_victims(&mut state.frames, want - victims.len(), &mut victims);
        }
        for victim in victims {
            // The victim is still in its shard while we flush, so a
            // concurrent fetch shares this frame instead of reading a
            // stale image from disk.
            //
            // A failed write-back must NOT fail the triggering fetch or
            // drop the victim: the frame stays dirty and cached
            // (write_back only clears the dirty bit on success), the pool
            // simply runs over capacity until a later flush succeeds.
            if self.write_back(&victim).is_err() {
                self.metrics.buffer.flush_errors.inc();
                continue;
            }
            let shard = self.shard_for(victim.id);
            let mut state = self.lock_shard(shard);
            // Only unmap if nobody re-dirtied or re-pinned it meanwhile
            // (strong count: shard table + our clone).
            if !victim.is_dirty() && Arc::strong_count(&victim) == 2 {
                state.frames.remove(&victim.id);
                self.len.fetch_sub(1, Ordering::Relaxed);
                self.metrics.buffer.evictions.inc();
            }
        }
    }

    /// Select up to `want` eviction victims from one shard (unpinned,
    /// second-chance) into `out`. Must be called with the shard locked.
    fn pick_victims(table: &mut HashMap<PageId, FrameRef>, want: usize, out: &mut Vec<FrameRef>) {
        let base = out.len();
        for pass in 0..2 {
            for frame in table.values() {
                if out.len() - base >= want {
                    break;
                }
                if Arc::strong_count(frame) > 1 {
                    continue;
                }
                if pass == 0 && frame.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                out.push(Arc::clone(frame));
            }
            if out.len() - base >= want {
                break;
            }
        }
    }

    /// Allocate a brand-new page, format it and cache it (dirty).
    pub fn new_page(&self, ptype: PageType, flags: u8, level: u16) -> Result<FrameRef> {
        let id = self.disk.allocate()?;
        let mut page = Page::zeroed();
        page.format(id, ptype, flags, level);
        let frame = Arc::new(Frame::new(id, page, true));
        let shard = self.shard_for(id);
        let mut state = self.lock_shard(shard);
        state.frames.insert(id, Arc::clone(&frame));
        self.len.fetch_add(1, Ordering::Relaxed);
        Ok(frame)
    }

    /// Make sure `id` is allocated on disk (recovery may redo page images
    /// for pages past the crashed file's end). Extends strictly — taking
    /// from the free list would not raise the high-water mark.
    pub fn ensure_allocated(&self, id: PageId) -> Result<()> {
        while self.disk.num_pages() <= id.0 {
            self.disk.extend()?;
        }
        Ok(())
    }

    /// Write a frame's page to disk if dirty (WAL rule + flush hook).
    fn write_back(&self, frame: &Frame) -> Result<()> {
        if !frame.is_dirty() {
            return Ok(());
        }
        let mut guard = frame.write();
        // Lazy timestamping trigger: stamp committed records on the way
        // out (only meaningful for versioned leaf pages; the hook checks).
        let hook = self.flush_hook.read().clone();
        if let Some(hook) = hook {
            hook.before_flush(&mut guard);
        }
        if self.page_image_logging() {
            // Log the exact image about to hit disk (post-hook, so the
            // stamps it applied are in the image too) and push it into the
            // log file. If the page write then tears, redo rebuilds the
            // page from this image.
            self.wal.append(
                Tid::SYSTEM,
                NULL_LSN,
                &LogRecord::PageImages {
                    pages: vec![(frame.id, guard.as_bytes().to_vec())],
                },
            );
            self.wal.flush(Durability::Buffered)?;
        } else {
            self.wal.flush_to(guard.page_lsn())?;
        }
        self.disk.write_page(&guard)?;
        // Count only successful writes: a failed write-back left nothing
        // on disk and the frame stays dirty for a retry.
        self.metrics.disk.writes.inc();
        frame.dirty.store(false, Ordering::SeqCst);
        frame.rec_lsn.store(NULL_LSN.0, Ordering::SeqCst);
        self.metrics.buffer.flushes.inc();
        Ok(())
    }

    /// Write back every dirty page (checkpoint). Frames stay cached.
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let frames: Vec<FrameRef> = {
                let state = self.lock_shard(shard);
                state.frames.values().cloned().collect()
            };
            for frame in frames {
                self.write_back(&frame)?;
            }
        }
        Ok(())
    }

    /// Current dirty-page table: `(page, recLSN)` pairs, for fuzzy
    /// checkpoint records.
    pub fn dirty_page_table(&self) -> Vec<(PageId, Lsn)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let state = self.lock_shard(shard);
            out.extend(
                state
                    .frames
                    .values()
                    .filter(|f| f.is_dirty())
                    .map(|f| (f.id, f.rec_lsn())),
            );
        }
        out
    }

    /// Drop every cached frame without writing anything (crash
    /// simulation in tests).
    pub fn drop_all_dirty(&self) {
        for shard in &self.shards {
            let mut state = self.lock_shard(shard);
            let n = state.frames.len();
            state.frames.clear();
            self.len.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Number of cached frames.
    pub fn cached(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.lock_shard(s).frames.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::FLAG_VERSIONED;
    use std::path::PathBuf;

    fn setup(
        name: &str,
        capacity: usize,
    ) -> (Arc<DiskManager>, Arc<Wal>, BufferPool, PathBuf, PathBuf) {
        let mut db = std::env::temp_dir();
        db.push(format!("immortal-buf-{name}-{}.db", std::process::id()));
        let mut wal = std::env::temp_dir();
        wal.push(format!("immortal-buf-{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wal);
        let (disk, _) = DiskManager::open(&db).unwrap();
        let disk = Arc::new(disk);
        let w = Arc::new(Wal::open(&wal).unwrap());
        let pool = BufferPool::new(Arc::clone(&disk), Arc::clone(&w), capacity);
        (disk, w, pool, db, wal)
    }

    #[test]
    fn fetch_caches_frames() {
        let (_d, _w, pool, db, wal) = setup("cache", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        let id = f.page_id();
        drop(f);
        let f1 = pool.fetch(id).unwrap();
        let f2 = pool.fetch(id).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn write_read_through_latches() {
        let (_d, _w, pool, db, wal) = setup("latch", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        {
            let mut g = f.write();
            g.insert_sorted(b"k", b"v", 0).unwrap();
            f.mark_dirty(Lsn(1));
        }
        {
            let g = f.read();
            assert_eq!(g.rec_data(g.slot(0)), b"v");
        }
        assert!(f.is_dirty());
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn optimistic_read_sees_committed_writes() {
        let (_d, _w, pool, db, wal) = setup("optread", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        {
            let mut g = f.write();
            g.insert_sorted(b"k", b"v", 0).unwrap();
        }
        let v = f
            .try_read_optimistic(|p| p.rec_data(p.slot(0)).to_vec())
            .expect("no writer active");
        assert_eq!(v, b"v");
        // A held write latch makes the counter odd and fails the attempt.
        let g = f.write();
        assert!(f.try_read_optimistic(|_| ()).is_none());
        drop(g);
        assert!(f.try_read_optimistic(|_| ()).is_some());
        assert_eq!(f.latch_version() % 2, 0);
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn read_optimistic_falls_back_under_writer() {
        let (_d, _w, pool, db, wal) = setup("optfall", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        {
            let mut g = f.write();
            g.insert_sorted(b"k", b"v", 0).unwrap();
        }
        let metrics = MetricsRegistry::new();
        // No writer: first attempt validates.
        let v = f.read_optimistic(&metrics, |p| p.rec_data(p.slot(0)).to_vec());
        assert_eq!(v, b"v");
        assert_eq!(metrics.latch.optimistic_reads.get(), 1);
        assert_eq!(metrics.latch.pessimistic_fallbacks.get(), 0);
        // Writer holds the latch in another thread: every optimistic
        // attempt fails and the reader must fall back to the shared
        // latch, which blocks until the writer releases.
        let f2 = Arc::clone(&f);
        let m2 = metrics.clone();
        let (tx, rx) = std::sync::mpsc::channel();
        let writer = std::thread::spawn(move || {
            let mut g = f2.write();
            tx.send(()).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(30));
            g.insert_sorted(b"k2", b"v2", 0).unwrap();
        });
        rx.recv().unwrap();
        let v = f.read_optimistic(&m2, |p| p.slot_count());
        assert_eq!(v, 2, "fallback read must see the completed write");
        assert_eq!(
            metrics.latch.optimistic_retries.get(),
            OPTIMISTIC_RETRIES as u64
        );
        assert_eq!(metrics.latch.pessimistic_fallbacks.get(), 1);
        writer.join().unwrap();
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (disk, _w, pool, db, wal) = setup("evict", 8);
        let mut ids = Vec::new();
        for i in 0..30u8 {
            let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
            {
                let mut g = f.write();
                g.insert_sorted(&[i], &[i], 0).unwrap();
            }
            f.mark_dirty(Lsn(0));
            ids.push(f.page_id());
            drop(f);
            // Touch pages to trigger eviction sweeps.
            let _ = pool.fetch(ids[0]).ok();
        }
        assert!(pool.cached() <= 30);
        pool.flush_all().unwrap();
        // Every page readable directly from disk with its content.
        for (i, id) in ids.iter().enumerate() {
            let p = disk.read_page(*id).unwrap();
            assert_eq!(p.rec_key(p.slot(0)), &[i as u8]);
        }
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn dirty_page_table_reports_rec_lsn() {
        let (_d, _w, pool, db, wal) = setup("dpt", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        pool.flush_all().unwrap(); // frame now clean
        f.mark_dirty(Lsn(77));
        f.mark_dirty(Lsn(99)); // recLSN stays at first dirtying record
        let dpt = pool.dirty_page_table();
        assert!(dpt.iter().any(|(p, l)| *p == f.page_id() && *l == Lsn(77)));
        pool.flush_all().unwrap();
        assert!(pool.dirty_page_table().is_empty());
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn flush_hook_runs_before_write_back() {
        struct StampAll;
        impl FlushHook for StampAll {
            fn before_flush(&self, page: &mut Page) {
                if page.is_versioned() && page.slot_count() > 0 {
                    let off = page.slot(0);
                    if page.rec_is_tid_marked(off) {
                        page.stamp_rec(off, immortaldb_common::Timestamp::new(500, 1));
                    }
                }
            }
        }
        let (disk, _w, pool, db, wal) = setup("hook", 16);
        pool.set_flush_hook(Arc::new(StampAll));
        let f = pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        let id = f.page_id();
        {
            let mut g = f.write();
            crate::version::add_version(&mut g, b"k", b"v", false, immortaldb_common::Tid(9))
                .unwrap();
        }
        f.mark_dirty(Lsn(0));
        drop(f);
        pool.flush_all().unwrap();
        let p = disk.read_page(id).unwrap();
        let off = p.slot(0);
        assert!(!p.rec_is_tid_marked(off));
        assert_eq!(
            p.rec_timestamp(off),
            immortaldb_common::Timestamp::new(500, 1)
        );
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn failed_write_back_keeps_frame_dirty_and_data_safe() {
        use crate::vfs::{StdFs, Vfs, VfsFile};

        // A VFS whose data-file writes and syncs fail while `fail` is set.
        struct FailFile {
            inner: Arc<dyn VfsFile>,
            fail: Arc<AtomicBool>,
        }
        impl VfsFile for FailFile {
            fn read_exact_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
                self.inner.read_exact_at(buf, off)
            }
            fn write_all_at(&self, data: &[u8], off: u64) -> Result<()> {
                if self.fail.load(Ordering::SeqCst) {
                    return Err(Error::Io(std::io::Error::other("injected write error")));
                }
                self.inner.write_all_at(data, off)
            }
            fn sync(&self) -> Result<()> {
                if self.fail.load(Ordering::SeqCst) {
                    return Err(Error::Io(std::io::Error::other("injected fsync error")));
                }
                self.inner.sync()
            }
            fn len(&self) -> Result<u64> {
                self.inner.len()
            }
            fn set_len(&self, len: u64) -> Result<()> {
                self.inner.set_len(len)
            }
        }
        struct FailVfs {
            fail: Arc<AtomicBool>,
        }
        impl Vfs for FailVfs {
            fn open(&self, path: &std::path::Path) -> Result<Arc<dyn VfsFile>> {
                Ok(Arc::new(FailFile {
                    inner: StdFs.open(path)?,
                    fail: Arc::clone(&self.fail),
                }))
            }
            fn read_file(&self, path: &std::path::Path) -> Result<Option<Vec<u8>>> {
                StdFs.read_file(path)
            }
            fn write_file_atomic(&self, path: &std::path::Path, data: &[u8]) -> Result<()> {
                StdFs.write_file_atomic(path, data)
            }
            fn remove_file(&self, path: &std::path::Path) -> Result<()> {
                StdFs.remove_file(path)
            }
            fn exists(&self, path: &std::path::Path) -> bool {
                StdFs.exists(path)
            }
        }

        let mut db = std::env::temp_dir();
        db.push(format!("immortal-buf-failvfs-{}.db", std::process::id()));
        let mut wp = std::env::temp_dir();
        wp.push(format!("immortal-buf-failvfs-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wp);
        let fail = Arc::new(AtomicBool::new(false));
        let vfs: Arc<dyn Vfs> = Arc::new(FailVfs {
            fail: Arc::clone(&fail),
        });
        let (disk, _) = DiskManager::open_with(Arc::clone(&vfs), &db).unwrap();
        let disk = Arc::new(disk);
        let w = Arc::new(Wal::open_with(Arc::clone(&vfs), &wp, MetricsRegistry::new()).unwrap());
        let pool = BufferPool::new(Arc::clone(&disk), Arc::clone(&w), 8);

        // Direct write-back failure: the dirty bit must survive the error.
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        let probe = f.page_id();
        {
            let mut g = f.write();
            g.insert_sorted(b"probe", b"p", 0).unwrap();
        }
        drop(f);
        pool.flush_all().unwrap();
        pool.drop_all_dirty(); // forget clean frames; probe stays on disk

        // 12 dirty pages in a capacity-8 pool.
        let mut ids = Vec::new();
        for i in 0..12u8 {
            let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
            {
                let mut g = f.write();
                g.insert_sorted(&[i], &[i], 0).unwrap();
            }
            f.mark_dirty(Lsn(0));
            ids.push(f.page_id());
        }
        fail.store(true, Ordering::SeqCst);
        let writes_before = pool.metrics().disk.writes.get();
        assert!(pool.flush_all().is_err(), "flush must report the I/O error");
        assert_eq!(
            pool.dirty_page_table().len(),
            12,
            "no dirty bit may be cleared by a failed flush"
        );
        // Eviction path: a fetch miss over capacity tries to evict, every
        // victim write-back fails — the fetch itself must still succeed
        // and the victims must stay cached and dirty.
        let before = pool.metrics().buffer.flush_errors.get();
        let pf = pool.fetch(probe).unwrap();
        assert_eq!(pf.read().rec_key(pf.read().slot(0)), b"probe");
        assert!(pool.metrics().buffer.flush_errors.get() > before);
        assert_eq!(pool.dirty_page_table().len(), 12);
        assert_eq!(
            pool.metrics().disk.writes.get(),
            writes_before,
            "disk.writes counts successes only; failed write-backs must not move it"
        );
        // Fault clears: everything drains to disk intact.
        fail.store(false, Ordering::SeqCst);
        pool.flush_all().unwrap();
        assert!(pool.dirty_page_table().is_empty());
        assert_eq!(
            pool.metrics().disk.writes.get(),
            writes_before + 12,
            "each successful write-back counts exactly once"
        );
        for (i, id) in ids.iter().enumerate() {
            let p = disk.read_page(*id).unwrap();
            assert_eq!(p.rec_key(p.slot(0)), &[i as u8]);
        }
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wp);
    }

    #[test]
    fn ensure_allocated_extends_file() {
        let (disk, _w, pool, db, wal) = setup("ensure", 16);
        pool.ensure_allocated(PageId(5)).unwrap();
        assert!(disk.num_pages() >= 6);
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }
}
