//! Buffer pool: cached page frames with latching, WAL-rule flushing and
//! the lazy-timestamping flush hook.
//!
//! Every cached page lives in a [`Frame`] holding the page image behind a
//! `RwLock` (the page latch). Fetching returns a [`FrameRef`]; the frame
//! stays resident at least as long as any reference exists. Eviction is a
//! second-chance sweep over unreferenced frames; dirty victims are written
//! back, after (a) flushing the WAL up to the page LSN and (b) running the
//! flush hook — which is how Immortal DB timestamps non-timestamped
//! records of committed transactions "just before a cached page is
//! flushed to disk" (§2.2).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use immortaldb_common::{Lsn, PageId, Result, NULL_LSN};
use immortaldb_obs::MetricsRegistry;

use crate::disk::DiskManager;
use crate::logrec::LogRecord;
use crate::page::{Page, PageType};
use crate::wal::{Durability, Wal};

use immortaldb_common::{Error, Tid};

/// Hook invoked with a write-latched page right before its image is
/// written to disk. The transaction manager installs a hook that stamps
/// committed TID-marked records (unlogged) so timestamping is durable
/// before PTT garbage collection can touch the transaction's entry.
pub trait FlushHook: Send + Sync {
    fn before_flush(&self, page: &mut Page);
}

/// A cached page frame.
pub struct Frame {
    id: PageId,
    data: Arc<RwLock<Page>>,
    dirty: AtomicBool,
    /// LSN of the first record that dirtied this page since it was last
    /// clean (recLSN in ARIES; drives the dirty-page table).
    rec_lsn: AtomicU64,
    /// Second-chance bit for the eviction sweep.
    referenced: AtomicBool,
}

/// Shared handle to a cached page. Holding one pins the frame.
pub type FrameRef = Arc<Frame>;

/// Owned read latch on a page.
pub type PageReadGuard = parking_lot::ArcRwLockReadGuard<parking_lot::RawRwLock, Page>;
/// Owned write latch on a page.
pub type PageWriteGuard = parking_lot::ArcRwLockWriteGuard<parking_lot::RawRwLock, Page>;

impl Frame {
    pub fn page_id(&self) -> PageId {
        self.id
    }

    /// Acquire the page read latch.
    pub fn read(&self) -> PageReadGuard {
        self.referenced.store(true, Ordering::Relaxed);
        RwLock::read_arc(&self.data)
    }

    /// Acquire the page write latch.
    pub fn write(&self) -> PageWriteGuard {
        self.referenced.store(true, Ordering::Relaxed);
        RwLock::write_arc(&self.data)
    }

    /// Record that a logged mutation at `lsn` dirtied this page. Callers
    /// must hold the write latch and have set the page LSN already.
    pub fn mark_dirty(&self, lsn: Lsn) {
        if !self.dirty.swap(true, Ordering::SeqCst) {
            self.rec_lsn.store(lsn.0, Ordering::SeqCst);
        }
    }

    /// Mark dirty with no associated log record (unlogged timestamp
    /// application). Keeps recLSN untouched if already dirty; otherwise
    /// pins recLSN at the current end of log is unnecessary — unlogged
    /// changes need no redo, so a clean page stays out of the DPT and the
    /// page is simply written back by the eviction/checkpoint path.
    pub fn mark_dirty_unlogged(&self) {
        self.dirty.store(true, Ordering::SeqCst);
    }

    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::SeqCst)
    }

    pub fn rec_lsn(&self) -> Lsn {
        Lsn(self.rec_lsn.load(Ordering::SeqCst))
    }
}

/// Buffer pool over a disk manager and WAL.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    wal: Arc<Wal>,
    capacity: usize,
    table: Mutex<HashMap<PageId, FrameRef>>,
    flush_hook: RwLock<Option<Arc<dyn FlushHook>>>,
    /// When set, every page write-back first logs the full page image
    /// (and flushes the WAL), so a torn data-page write — detected by the
    /// page CRC on the next read — can be repaired during redo. Off by
    /// default: it roughly doubles write volume and matters only under a
    /// torn-write failure model.
    page_image_logging: AtomicBool,
    metrics: MetricsRegistry,
}

impl BufferPool {
    /// Pool with a private metrics registry (tests, standalone use).
    pub fn new(disk: Arc<DiskManager>, wal: Arc<Wal>, capacity: usize) -> BufferPool {
        Self::with_metrics(disk, wal, capacity, MetricsRegistry::new())
    }

    /// Pool recording into a shared engine-wide registry.
    pub fn with_metrics(
        disk: Arc<DiskManager>,
        wal: Arc<Wal>,
        capacity: usize,
        metrics: MetricsRegistry,
    ) -> BufferPool {
        BufferPool {
            disk,
            wal,
            capacity: capacity.max(8),
            table: Mutex::new(HashMap::new()),
            flush_hook: RwLock::new(None),
            page_image_logging: AtomicBool::new(false),
            metrics,
        }
    }

    /// Enable or disable full-page-image logging on write-back.
    pub fn set_page_image_logging(&self, on: bool) {
        self.page_image_logging.store(on, Ordering::SeqCst);
    }

    /// Whether write-backs log full page images first.
    pub fn page_image_logging(&self) -> bool {
        self.page_image_logging.load(Ordering::SeqCst)
    }

    /// The registry this pool (and components reached through it) records
    /// into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Install the lazy-timestamping flush hook (done once the transaction
    /// manager exists).
    pub fn set_flush_hook(&self, hook: Arc<dyn FlushHook>) {
        *self.flush_hook.write() = Some(hook);
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// Number of page write-backs performed so far (thin shim over the
    /// registry's `buffer.flushes`; kept because tests assert on it).
    pub fn flush_count(&self) -> u64 {
        self.metrics.buffer.flushes.get()
    }

    /// Fetch a page, reading it from disk on a miss.
    pub fn fetch(&self, id: PageId) -> Result<FrameRef> {
        self.metrics.buffer.fetches.inc();
        {
            let table = self.table.lock();
            if let Some(f) = table.get(&id) {
                f.referenced.store(true, Ordering::Relaxed);
                self.metrics.buffer.hits.inc();
                return Ok(Arc::clone(f));
            }
        }
        self.metrics.buffer.misses.inc();
        // Read outside the table lock; racing readers may both load, the
        // second insert wins the check below and reuses the first frame.
        let page = self.disk.read_page(id)?;
        let mut table = self.table.lock();
        if let Some(f) = table.get(&id) {
            return Ok(Arc::clone(f));
        }
        let frame = Arc::new(Frame {
            id,
            data: Arc::new(RwLock::new(page)),
            dirty: AtomicBool::new(false),
            rec_lsn: AtomicU64::new(0),
            referenced: AtomicBool::new(true),
        });
        table.insert(id, Arc::clone(&frame));
        let over = table.len().saturating_sub(self.capacity);
        if over > 0 {
            // Two-phase eviction: pick victims under the lock, but write
            // them back WITHOUT it — the flush hook resolves timestamps
            // through the PTT, which lives in this same pool, so holding
            // the table mutex across write_back would self-deadlock on a
            // PTT page miss (and would serialize all fetches behind I/O).
            let victims = Self::pick_victims(&mut table, over);
            drop(table);
            for victim in victims {
                // The victim is still in the table while we flush, so a
                // concurrent fetch shares this frame instead of reading a
                // stale image from disk.
                //
                // A failed write-back must NOT fail this fetch or drop the
                // victim: the frame stays dirty and cached (write_back
                // only clears the dirty bit on success), the pool simply
                // runs over capacity until a later flush succeeds.
                if let Err(_e) = self.write_back(&victim) {
                    self.metrics.buffer.flush_errors.inc();
                    continue;
                }
                let mut table = self.table.lock();
                // Only unmap if nobody re-dirtied or re-pinned it
                // meanwhile (strong count: table + our clone).
                if !victim.is_dirty() && Arc::strong_count(&victim) == 2 {
                    table.remove(&victim.id);
                    self.metrics.buffer.evictions.inc();
                }
            }
        }
        Ok(frame)
    }

    /// [`Self::fetch`], but a page whose on-disk image fails CRC
    /// verification is cached as a zeroed frame (page LSN 0) instead of
    /// erroring. Recovery uses this so a torn page can be rebuilt from a
    /// logged full-page image; returns whether the page was reset.
    pub fn fetch_or_reset(&self, id: PageId) -> Result<(FrameRef, bool)> {
        match self.fetch(id) {
            Ok(f) => Ok((f, false)),
            Err(Error::Corruption(_)) => {
                let mut table = self.table.lock();
                if let Some(f) = table.get(&id) {
                    return Ok((Arc::clone(f), false));
                }
                let frame = Arc::new(Frame {
                    id,
                    data: Arc::new(RwLock::new(Page::zeroed())),
                    dirty: AtomicBool::new(false),
                    rec_lsn: AtomicU64::new(0),
                    referenced: AtomicBool::new(true),
                });
                table.insert(id, Arc::clone(&frame));
                Ok((frame, true))
            }
            Err(e) => Err(e),
        }
    }

    /// Select up to `want` eviction victims (unpinned, second-chance) and
    /// return owned handles. Must be called with the table lock held.
    fn pick_victims(table: &mut HashMap<PageId, FrameRef>, want: usize) -> Vec<FrameRef> {
        let mut victims: Vec<FrameRef> = Vec::new();
        for pass in 0..2 {
            for frame in table.values() {
                if victims.len() >= want {
                    break;
                }
                if Arc::strong_count(frame) > 1 {
                    continue;
                }
                if pass == 0 && frame.referenced.swap(false, Ordering::Relaxed) {
                    continue;
                }
                victims.push(Arc::clone(frame));
            }
            if victims.len() >= want {
                break;
            }
        }
        victims
    }

    /// Allocate a brand-new page, format it and cache it (dirty).
    pub fn new_page(&self, ptype: PageType, flags: u8, level: u16) -> Result<FrameRef> {
        let id = self.disk.allocate()?;
        let mut page = Page::zeroed();
        page.format(id, ptype, flags, level);
        let frame = Arc::new(Frame {
            id,
            data: Arc::new(RwLock::new(page)),
            dirty: AtomicBool::new(true),
            rec_lsn: AtomicU64::new(0),
            referenced: AtomicBool::new(true),
        });
        let mut table = self.table.lock();
        table.insert(id, Arc::clone(&frame));
        Ok(frame)
    }

    /// Make sure `id` is allocated on disk (recovery may redo page images
    /// for pages past the crashed file's end).
    pub fn ensure_allocated(&self, id: PageId) -> Result<()> {
        while self.disk.num_pages() <= id.0 {
            self.disk.allocate()?;
        }
        Ok(())
    }

    /// Write a frame's page to disk if dirty (WAL rule + flush hook).
    fn write_back(&self, frame: &Frame) -> Result<()> {
        if !frame.is_dirty() {
            return Ok(());
        }
        let mut guard = frame.write();
        // Lazy timestamping trigger: stamp committed records on the way
        // out (only meaningful for versioned leaf pages; the hook checks).
        let hook = self.flush_hook.read().clone();
        if let Some(hook) = hook {
            hook.before_flush(&mut guard);
        }
        if self.page_image_logging() {
            // Log the exact image about to hit disk (post-hook, so the
            // stamps it applied are in the image too) and push it into the
            // log file. If the page write then tears, redo rebuilds the
            // page from this image.
            self.wal.append(
                Tid::SYSTEM,
                NULL_LSN,
                &LogRecord::PageImages {
                    pages: vec![(frame.id, guard.as_bytes().to_vec())],
                },
            );
            self.wal.flush(Durability::Buffered)?;
        } else {
            self.wal.flush_to(guard.page_lsn())?;
        }
        self.disk.write_page(&guard)?;
        frame.dirty.store(false, Ordering::SeqCst);
        frame.rec_lsn.store(NULL_LSN.0, Ordering::SeqCst);
        self.metrics.buffer.flushes.inc();
        Ok(())
    }

    /// Write back every dirty page (checkpoint). Frames stay cached.
    pub fn flush_all(&self) -> Result<()> {
        let frames: Vec<FrameRef> = {
            let table = self.table.lock();
            table.values().cloned().collect()
        };
        for frame in frames {
            self.write_back(&frame)?;
        }
        Ok(())
    }

    /// Current dirty-page table: `(page, recLSN)` pairs, for fuzzy
    /// checkpoint records.
    pub fn dirty_page_table(&self) -> Vec<(PageId, Lsn)> {
        let table = self.table.lock();
        table
            .values()
            .filter(|f| f.is_dirty())
            .map(|f| (f.id, f.rec_lsn()))
            .collect()
    }

    /// Drop every cached frame without writing anything (crash
    /// simulation in tests).
    pub fn drop_all_dirty(&self) {
        self.table.lock().clear();
    }

    /// Number of cached frames.
    pub fn cached(&self) -> usize {
        self.table.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::FLAG_VERSIONED;
    use std::path::PathBuf;

    fn setup(
        name: &str,
        capacity: usize,
    ) -> (Arc<DiskManager>, Arc<Wal>, BufferPool, PathBuf, PathBuf) {
        let mut db = std::env::temp_dir();
        db.push(format!("immortal-buf-{name}-{}.db", std::process::id()));
        let mut wal = std::env::temp_dir();
        wal.push(format!("immortal-buf-{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wal);
        let (disk, _) = DiskManager::open(&db).unwrap();
        let disk = Arc::new(disk);
        let w = Arc::new(Wal::open(&wal).unwrap());
        let pool = BufferPool::new(Arc::clone(&disk), Arc::clone(&w), capacity);
        (disk, w, pool, db, wal)
    }

    #[test]
    fn fetch_caches_frames() {
        let (_d, _w, pool, db, wal) = setup("cache", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        let id = f.page_id();
        drop(f);
        let f1 = pool.fetch(id).unwrap();
        let f2 = pool.fetch(id).unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn write_read_through_latches() {
        let (_d, _w, pool, db, wal) = setup("latch", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        {
            let mut g = f.write();
            g.insert_sorted(b"k", b"v", 0).unwrap();
            f.mark_dirty(Lsn(1));
        }
        {
            let g = f.read();
            assert_eq!(g.rec_data(g.slot(0)), b"v");
        }
        assert!(f.is_dirty());
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (disk, _w, pool, db, wal) = setup("evict", 8);
        let mut ids = Vec::new();
        for i in 0..30u8 {
            let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
            {
                let mut g = f.write();
                g.insert_sorted(&[i], &[i], 0).unwrap();
            }
            f.mark_dirty(Lsn(0));
            ids.push(f.page_id());
            drop(f);
            // Touch pages to trigger eviction sweeps.
            let _ = pool.fetch(ids[0]).ok();
        }
        assert!(pool.cached() <= 30);
        pool.flush_all().unwrap();
        // Every page readable directly from disk with its content.
        for (i, id) in ids.iter().enumerate() {
            let p = disk.read_page(*id).unwrap();
            assert_eq!(p.rec_key(p.slot(0)), &[i as u8]);
        }
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn dirty_page_table_reports_rec_lsn() {
        let (_d, _w, pool, db, wal) = setup("dpt", 16);
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        pool.flush_all().unwrap(); // frame now clean
        f.mark_dirty(Lsn(77));
        f.mark_dirty(Lsn(99)); // recLSN stays at first dirtying record
        let dpt = pool.dirty_page_table();
        assert!(dpt.iter().any(|(p, l)| *p == f.page_id() && *l == Lsn(77)));
        pool.flush_all().unwrap();
        assert!(pool.dirty_page_table().is_empty());
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn flush_hook_runs_before_write_back() {
        struct StampAll;
        impl FlushHook for StampAll {
            fn before_flush(&self, page: &mut Page) {
                if page.is_versioned() && page.slot_count() > 0 {
                    let off = page.slot(0);
                    if page.rec_is_tid_marked(off) {
                        page.stamp_rec(off, immortaldb_common::Timestamp::new(500, 1));
                    }
                }
            }
        }
        let (disk, _w, pool, db, wal) = setup("hook", 16);
        pool.set_flush_hook(Arc::new(StampAll));
        let f = pool.new_page(PageType::Leaf, FLAG_VERSIONED, 0).unwrap();
        let id = f.page_id();
        {
            let mut g = f.write();
            crate::version::add_version(&mut g, b"k", b"v", false, immortaldb_common::Tid(9))
                .unwrap();
        }
        f.mark_dirty(Lsn(0));
        drop(f);
        pool.flush_all().unwrap();
        let p = disk.read_page(id).unwrap();
        let off = p.slot(0);
        assert!(!p.rec_is_tid_marked(off));
        assert_eq!(
            p.rec_timestamp(off),
            immortaldb_common::Timestamp::new(500, 1)
        );
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }

    #[test]
    fn failed_write_back_keeps_frame_dirty_and_data_safe() {
        use crate::vfs::{StdFs, Vfs, VfsFile};

        // A VFS whose data-file writes and syncs fail while `fail` is set.
        struct FailFile {
            inner: Arc<dyn VfsFile>,
            fail: Arc<AtomicBool>,
        }
        impl VfsFile for FailFile {
            fn read_exact_at(&self, buf: &mut [u8], off: u64) -> Result<()> {
                self.inner.read_exact_at(buf, off)
            }
            fn write_all_at(&self, data: &[u8], off: u64) -> Result<()> {
                if self.fail.load(Ordering::SeqCst) {
                    return Err(Error::Io(std::io::Error::other("injected write error")));
                }
                self.inner.write_all_at(data, off)
            }
            fn sync(&self) -> Result<()> {
                if self.fail.load(Ordering::SeqCst) {
                    return Err(Error::Io(std::io::Error::other("injected fsync error")));
                }
                self.inner.sync()
            }
            fn len(&self) -> Result<u64> {
                self.inner.len()
            }
            fn set_len(&self, len: u64) -> Result<()> {
                self.inner.set_len(len)
            }
        }
        struct FailVfs {
            fail: Arc<AtomicBool>,
        }
        impl Vfs for FailVfs {
            fn open(&self, path: &std::path::Path) -> Result<Arc<dyn VfsFile>> {
                Ok(Arc::new(FailFile {
                    inner: StdFs.open(path)?,
                    fail: Arc::clone(&self.fail),
                }))
            }
            fn read_file(&self, path: &std::path::Path) -> Result<Option<Vec<u8>>> {
                StdFs.read_file(path)
            }
            fn write_file_atomic(&self, path: &std::path::Path, data: &[u8]) -> Result<()> {
                StdFs.write_file_atomic(path, data)
            }
            fn remove_file(&self, path: &std::path::Path) -> Result<()> {
                StdFs.remove_file(path)
            }
            fn exists(&self, path: &std::path::Path) -> bool {
                StdFs.exists(path)
            }
        }

        let mut db = std::env::temp_dir();
        db.push(format!("immortal-buf-failvfs-{}.db", std::process::id()));
        let mut wp = std::env::temp_dir();
        wp.push(format!("immortal-buf-failvfs-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wp);
        let fail = Arc::new(AtomicBool::new(false));
        let vfs: Arc<dyn Vfs> = Arc::new(FailVfs {
            fail: Arc::clone(&fail),
        });
        let (disk, _) = DiskManager::open_with(Arc::clone(&vfs), &db).unwrap();
        let disk = Arc::new(disk);
        let w = Arc::new(Wal::open_with(Arc::clone(&vfs), &wp, MetricsRegistry::new()).unwrap());
        let pool = BufferPool::new(Arc::clone(&disk), Arc::clone(&w), 8);

        // Direct write-back failure: the dirty bit must survive the error.
        let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
        let probe = f.page_id();
        {
            let mut g = f.write();
            g.insert_sorted(b"probe", b"p", 0).unwrap();
        }
        drop(f);
        pool.flush_all().unwrap();
        pool.drop_all_dirty(); // forget clean frames; probe stays on disk

        // 12 dirty pages in a capacity-8 pool.
        let mut ids = Vec::new();
        for i in 0..12u8 {
            let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
            {
                let mut g = f.write();
                g.insert_sorted(&[i], &[i], 0).unwrap();
            }
            f.mark_dirty(Lsn(0));
            ids.push(f.page_id());
        }
        fail.store(true, Ordering::SeqCst);
        assert!(pool.flush_all().is_err(), "flush must report the I/O error");
        assert_eq!(
            pool.dirty_page_table().len(),
            12,
            "no dirty bit may be cleared by a failed flush"
        );
        // Eviction path: a fetch miss over capacity tries to evict, every
        // victim write-back fails — the fetch itself must still succeed
        // and the victims must stay cached and dirty.
        let before = pool.metrics().buffer.flush_errors.get();
        let pf = pool.fetch(probe).unwrap();
        assert_eq!(pf.read().rec_key(pf.read().slot(0)), b"probe");
        assert!(pool.metrics().buffer.flush_errors.get() > before);
        assert_eq!(pool.dirty_page_table().len(), 12);
        // Fault clears: everything drains to disk intact.
        fail.store(false, Ordering::SeqCst);
        pool.flush_all().unwrap();
        assert!(pool.dirty_page_table().is_empty());
        for (i, id) in ids.iter().enumerate() {
            let p = disk.read_page(*id).unwrap();
            assert_eq!(p.rec_key(p.slot(0)), &[i as u8]);
        }
        let _ = std::fs::remove_file(&db);
        let _ = std::fs::remove_file(&wp);
    }

    #[test]
    fn ensure_allocated_extends_file() {
        let (disk, _w, pool, db, wal) = setup("ensure", 16);
        pool.ensure_allocated(PageId(5)).unwrap();
        assert!(disk.num_pages() >= 6);
        let _ = std::fs::remove_file(db);
        let _ = std::fs::remove_file(wal);
    }
}
