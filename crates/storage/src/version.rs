//! Version-chain operations on leaf pages (§3 of the paper).
//!
//! A versioned leaf page keeps, per key, a chain of record versions:
//! the slot array points at the newest version and each version's VP field
//! points at its predecessor within the same page. This module implements:
//!
//! * pushing a new version (insert / update / delete-stub),
//! * popping the newest version (transaction rollback),
//! * visibility: finding the version current AS OF a timestamp,
//! * lazy timestamp application (stage IV of the protocol, unlogged),
//! * **page time splits** — the four-case version partition of Fig. 3,
//! * page key splits (whole chains move).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

use immortaldb_common::{Error, PageId, Result, Tid, Timestamp, VERSION_TAIL};

use crate::page::{Page, FLAG_HISTORICAL, RFLAG_DELETE_STUB, RFLAG_DELTA};
use crate::TimestampResolver;

// -- delta-encoded history chains --------------------------------------
//
// Historical pages are immutable except for whole-page rewrites (time
// splits create them; the compactor repacks them), so their version
// chains can afford a denser encoding than current pages: every K-th
// version is a full "anchor" image and the versions between anchors are
// prefix/suffix deltas against their newer neighbour. Current pages never
// hold deltas — `pop_newest` must be able to re-head a chain on rollback,
// which a delta head-successor would break.

/// Anchor interval K of a packed history chain: the head and every K-th
/// version are stored as full images, so reconstructing any version folds
/// at most `K - 1` deltas.
pub const DELTA_ANCHOR_EVERY: usize = 8;

static HISTORY_PACKING: AtomicBool = AtomicBool::new(true);

/// Toggle delta-packing of the history side of time splits (process-wide;
/// the history bench disables it to measure the unpacked baseline before
/// compaction). Returns the previous setting. The compactor packs
/// regardless of this switch.
pub fn set_history_packing(on: bool) -> bool {
    HISTORY_PACKING.swap(on, Ordering::SeqCst)
}

/// Whether time splits delta-pack the history page (default: on).
pub fn history_packing() -> bool {
    HISTORY_PACKING.load(Ordering::Relaxed)
}

/// Encode `new` as a delta against `base` (the next *newer* version):
/// `[prefix:u16][suffix:u16][mid bytes]`, where the reconstruction is
/// `base[..prefix] ++ mid ++ base[base_len-suffix..]`.
pub fn encode_delta(base: &[u8], new: &[u8]) -> Vec<u8> {
    let shorter = base.len().min(new.len());
    let mut prefix = 0usize;
    while prefix < shorter && base[prefix] == new[prefix] {
        prefix += 1;
    }
    let mut suffix = 0usize;
    let max_suffix = shorter - prefix;
    while suffix < max_suffix && base[base.len() - 1 - suffix] == new[new.len() - 1 - suffix] {
        suffix += 1;
    }
    let mid = &new[prefix..new.len() - suffix];
    let mut out = Vec::with_capacity(4 + mid.len());
    out.extend_from_slice(&(prefix as u16).to_be_bytes());
    out.extend_from_slice(&(suffix as u16).to_be_bytes());
    out.extend_from_slice(mid);
    out
}

/// Reconstruct a version from its delta payload and the materialized data
/// of the next newer chain version.
pub fn apply_delta(base: &[u8], delta: &[u8]) -> Result<Vec<u8>> {
    if delta.len() < 4 {
        return Err(Error::Corruption(
            "delta payload shorter than header".into(),
        ));
    }
    let prefix = u16::from_be_bytes([delta[0], delta[1]]) as usize;
    let suffix = u16::from_be_bytes([delta[2], delta[3]]) as usize;
    if prefix + suffix > base.len() {
        return Err(Error::Corruption(format!(
            "delta prefix {prefix} + suffix {suffix} exceed base length {}",
            base.len()
        )));
    }
    let mid = &delta[4..];
    let mut out = Vec::with_capacity(prefix + mid.len() + suffix);
    out.extend_from_slice(&base[..prefix]);
    out.extend_from_slice(mid);
    out.extend_from_slice(&base[base.len() - suffix..]);
    Ok(out)
}

/// Cursor over one version chain (newest first) that materializes each
/// version's data incrementally, folding deltas from the nearest newer
/// anchor as it walks. Amortized O(1) fold work per step.
pub struct ChainWalker<'a> {
    page: &'a Page,
    next: Option<usize>,
    data: Vec<u8>,
    /// Number of delta folds performed so far (feeds `version.delta_folds`).
    pub folds: u64,
}

impl<'a> ChainWalker<'a> {
    pub fn new(page: &'a Page, slot_i: usize) -> ChainWalker<'a> {
        ChainWalker {
            page,
            next: Some(page.slot(slot_i)),
            data: Vec::new(),
            folds: 0,
        }
    }

    /// Advance to the next (older) version and return its heap offset, or
    /// `None` at the end of the chain. After a `Some` return,
    /// [`Self::data`] is that version's materialized data.
    pub fn step(&mut self) -> Result<Option<usize>> {
        let Some(off) = self.next else {
            return Ok(None);
        };
        if self.page.rec_is_delta(off) {
            self.data = apply_delta(&self.data, self.page.rec_data(off))?;
            self.folds += 1;
        } else {
            self.data.clear();
            self.data.extend_from_slice(self.page.rec_data(off));
        }
        let vp = self.page.rec_vp(off);
        self.next = if vp == 0 { None } else { Some(vp) };
        Ok(Some(off))
    }

    /// Materialized data of the version most recently returned by
    /// [`Self::step`].
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

/// Materialize the data of the chain record at heap offset `target` on the
/// chain anchored at slot `slot_i`. Full records return their bytes
/// directly; delta records fold from the nearest newer anchor. Returns the
/// data and the number of delta folds performed.
pub fn materialize_at(page: &Page, slot_i: usize, target: usize) -> Result<(Vec<u8>, u64)> {
    if !page.rec_is_delta(target) {
        return Ok((page.rec_data(target).to_vec(), 0));
    }
    let mut w = ChainWalker::new(page, slot_i);
    while let Some(off) = w.step()? {
        if off == target {
            return Ok((w.data, w.folds));
        }
    }
    Err(Error::Corruption(
        "delta record unreachable from its slot head".into(),
    ))
}

/// One fully materialized version, carried between pages during packing.
/// The tail is raw `(Ttime, SN)` bytes — committed stamp or TID mark
/// alike, copied verbatim.
#[derive(Clone)]
pub struct ChainVersion {
    pub data: Vec<u8>,
    pub flags: u8,
    pub ttime: u64,
    pub sn: u32,
}

/// Records written by a packing pass, split by encoding.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PackCounts {
    pub anchors: u64,
    pub deltas: u64,
}

impl PackCounts {
    pub fn add(&mut self, other: PackCounts) {
        self.anchors += other.anchors;
        self.deltas += other.deltas;
    }
}

/// Append one whole chain (newest first, already materialized) to `dst`
/// in delta-packed form: the head and every [`DELTA_ANCHOR_EVERY`]-th
/// version are full anchors, the rest become deltas against their newer
/// neighbour when that is actually smaller. Only the head carries the key;
/// stubs are never delta-encoded. Adds the slot for the head.
pub fn pack_chain_into(dst: &mut Page, key: &[u8], vers: &[ChainVersion]) -> Result<PackCounts> {
    debug_assert!(dst.is_versioned());
    let mut counts = PackCounts::default();
    let mut prev_new: Option<usize> = None;
    let mut head: Option<usize> = None;
    for (idx, v) in vers.iter().enumerate() {
        let is_head = idx == 0;
        let stub = v.flags & RFLAG_DELETE_STUB != 0;
        let mut enc = Vec::new();
        let mut use_delta = false;
        if !is_head && idx % DELTA_ANCHOR_EVERY != 0 && !stub {
            enc = encode_delta(&vers[idx - 1].data, &v.data);
            use_delta = enc.len() < v.data.len();
        }
        let dead_mask = !(crate::page::RFLAG_DEAD | RFLAG_DELTA);
        let off = if use_delta {
            dst.alloc_record(&[], &enc, (v.flags & dead_mask) | RFLAG_DELTA, is_head)?
        } else {
            let k: &[u8] = if is_head { key } else { &[] };
            dst.alloc_record(k, &v.data, v.flags & dead_mask, is_head)?
        };
        dst.set_rec_tail_raw(off, v.ttime, v.sn);
        dst.set_rec_vp(off, 0);
        if use_delta {
            counts.deltas += 1;
        } else {
            counts.anchors += 1;
        }
        match prev_new {
            None => head = Some(off),
            Some(p) => dst.set_rec_vp(p, off),
        }
        prev_new = Some(off);
    }
    if let Some(h) = head {
        let pos = match dst.find_slot(key) {
            Ok(_) => {
                return Err(Error::Internal(
                    "duplicate slot while packing a chain".into(),
                ))
            }
            Err(pos) => pos,
        };
        dst.add_slot_for(pos, h);
    }
    Ok(counts)
}

/// Materialize every version of the chain at slot `i`, newest first
/// (folding deltas as needed). The building block of the compactor's
/// page rewrites.
pub fn materialize_chain(page: &Page, i: usize) -> Result<(Vec<ChainVersion>, u64)> {
    let mut out = Vec::new();
    let mut w = ChainWalker::new(page, i);
    while let Some(off) = w.step()? {
        out.push(ChainVersion {
            data: w.data().to_vec(),
            flags: page.rec_flags(off),
            ttime: page.rec_ttime(off),
            sn: page.rec_sn(off),
        });
    }
    Ok((out, w.folds))
}

/// Push a new version for `key` onto the page: a plain insert if the key
/// has no chain, otherwise a new chain head whose VP points at the old
/// newest version. `stub = true` records a delete.
///
/// The new version is TID-marked (stage II); it receives its timestamp
/// lazily after commit. Returns the heap offset of the new version.
/// Fails with [`Error::PageFull`] when the caller must split first;
/// compaction is attempted automatically when fragmentation would cover
/// the request.
pub fn add_version(
    page: &mut Page,
    key: &[u8],
    data: &[u8],
    stub: bool,
    tid: Tid,
) -> Result<usize> {
    debug_assert!(page.is_versioned());
    let need = crate::page::REC_HDR + key.len() + data.len() + VERSION_TAIL + 2;
    if need > page.contiguous_free() && need <= page.total_free() {
        page.compact()?;
    }
    let rflags = if stub { RFLAG_DELETE_STUB } else { 0 };
    match page.find_slot(key) {
        Ok(i) => {
            let prev = page.slot(i);
            let off = page.alloc_record(key, data, rflags, false)?;
            page.set_rec_vp(off, prev);
            page.mark_rec_tid(off, tid);
            page.set_slot(i, off);
            Ok(off)
        }
        Err(pos) => {
            let off = page.insert_at(pos, key, data, rflags)?;
            page.set_rec_vp(off, 0);
            page.mark_rec_tid(off, tid);
            Ok(off)
        }
    }
}

/// Pop the newest version of `key`, which must be TID-marked by `tid`
/// (rollback / logical undo of [`add_version`]). If the chain becomes
/// empty the slot disappears.
pub fn pop_newest(page: &mut Page, key: &[u8], tid: Tid) -> Result<()> {
    debug_assert!(page.is_versioned());
    let i = page.find_slot(key).map_err(|_| Error::KeyNotFound)?;
    let off = page.slot(i);
    if !page.rec_is_tid_marked(off) || page.rec_tid(off) != tid {
        return Err(Error::Internal(format!(
            "pop_newest: newest version of key not owned by {tid:?}"
        )));
    }
    let vp = page.rec_vp(off);
    let size = page.rec_size(off);
    page.set_rec_flags(off, page.rec_flags(off) | crate::page::RFLAG_DEAD);
    page.add_frag(size);
    if vp == 0 {
        page.remove_slot(i);
    } else {
        page.set_slot(i, vp);
    }
    Ok(())
}

/// All version offsets of the chain anchored at slot `i`, newest first.
pub fn chain_offsets(page: &Page, i: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut off = page.slot(i);
    loop {
        out.push(off);
        let vp = page.rec_vp(off);
        if vp == 0 {
            break;
        }
        off = vp;
    }
    out
}

/// Outcome of a visibility walk along one chain.
#[derive(Debug, PartialEq, Eq)]
pub enum Visible {
    /// This version (heap offset) is the one current AS OF the requested
    /// time.
    Version(usize),
    /// The record was deleted as of the requested time (a stub governs).
    Deleted,
    /// Nothing in this page's chain is old enough — the caller must follow
    /// the history-page chain (or conclude the record did not exist yet if
    /// the page's time range covers the request).
    NotHere,
}

/// Walk the chain at slot `i` and find the version visible AS OF `as_of`.
///
/// `own_tid` makes a transaction's *own* uncommitted versions visible
/// (read-your-writes). TID-marked versions of other transactions are
/// resolved through `resolver`: committed → their timestamp applies,
/// active → invisible, skip to the predecessor. This read-only walk never
/// mutates the page; use [`stamp_committed`] (write latch) to also apply
/// timestamps, per the paper's read trigger.
pub fn visible_as_of(
    page: &Page,
    i: usize,
    as_of: Timestamp,
    own_tid: Option<Tid>,
    resolver: &dyn TimestampResolver,
) -> Visible {
    let mut off = page.slot(i);
    loop {
        let ts = if page.rec_is_tid_marked(off) {
            let tid = page.rec_tid(off);
            if Some(tid) == own_tid {
                // Own uncommitted write: always visible at "now".
                return classify(page, off);
            }
            resolver.resolve(tid)
        } else {
            Some(page.rec_timestamp(off))
        };
        if let Some(ts) = ts {
            if ts <= as_of {
                return classify(page, off);
            }
        }
        let vp = page.rec_vp(off);
        if vp == 0 {
            return Visible::NotHere;
        }
        off = vp;
    }
}

fn classify(page: &Page, off: usize) -> Visible {
    if page.rec_is_stub(off) {
        Visible::Deleted
    } else {
        Visible::Version(off)
    }
}

/// Apply timestamps to every TID-marked record of a committed transaction
/// in this page (triggers: page flush, time split, opportunistic access).
/// Returns how many records of each transaction were stamped so the
/// caller can decrement the volatile reference counts. This mutation is
/// deliberately unlogged (§2.2): durability comes from the
/// flush-before-GC rule.
pub fn stamp_committed(page: &mut Page, resolver: &dyn TimestampResolver) -> Vec<(Tid, u32)> {
    debug_assert!(page.is_versioned());
    let mut counts: HashMap<Tid, u32> = HashMap::new();
    for i in 0..page.slot_count() {
        for off in chain_offsets(page, i) {
            if page.rec_is_tid_marked(off) {
                let tid = page.rec_tid(off);
                if let Some(ts) = resolver.resolve(tid) {
                    page.stamp_rec(off, ts);
                    *counts.entry(tid).or_insert(0) += 1;
                }
            }
        }
    }
    counts.into_iter().collect()
}

/// Stamp the chain for a single key (the paper's update trigger: "when we
/// update a non-timestamped version of a record with a later version, all
/// existing versions must be committed, and we timestamp them all").
pub fn stamp_chain(page: &mut Page, i: usize, resolver: &dyn TimestampResolver) -> Vec<(Tid, u32)> {
    let mut counts: HashMap<Tid, u32> = HashMap::new();
    for off in chain_offsets(page, i) {
        if page.rec_is_tid_marked(off) {
            let tid = page.rec_tid(off);
            if let Some(ts) = resolver.resolve(tid) {
                page.stamp_rec(off, ts);
                *counts.entry(tid).or_insert(0) += 1;
            }
        }
    }
    counts.into_iter().collect()
}

/// Garbage-collect snapshot versions (§3, "Snapshots"): drop versions of
/// the chain at slot `i` that are older than the version visible to the
/// oldest active snapshot transaction (`watermark`). The newest version
/// with timestamp ≤ `watermark` is kept (it is what that snapshot reads);
/// everything older is marked dead. Only meaningful for snapshot-enabled
/// conventional tables — immortal tables never collect versions. Returns
/// the number of versions pruned.
pub fn prune_chain(page: &mut Page, i: usize, watermark: Timestamp) -> usize {
    let chain = chain_offsets(page, i);
    // Find the first (newest) committed, stamped version visible at the
    // watermark; its predecessors are unreachable by any live snapshot.
    let mut keep_until = None;
    for (idx, &off) in chain.iter().enumerate() {
        if page.rec_is_tid_marked(off) {
            continue; // unresolved: keep conservatively
        }
        if page.rec_timestamp(off) <= watermark {
            keep_until = Some(idx);
            break;
        }
    }
    let Some(keep) = keep_until else { return 0 };
    let mut pruned = 0usize;
    for &off in &chain[keep + 1..] {
        let size = page.rec_size(off);
        page.set_rec_flags(off, page.rec_flags(off) | crate::page::RFLAG_DEAD);
        page.add_frag(size);
        pruned += 1;
    }
    if pruned > 0 {
        page.set_rec_vp(chain[keep], 0);
    }
    pruned
}

/// Where a version goes during a time split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitFate {
    HistoryOnly,
    Both,
    CurrentOnly,
}

/// Compute the fate of each version in the chain (offsets newest-first)
/// for a time split at `split_ts`, per the four cases of Fig. 3 plus the
/// delete-stub rule. All committed versions must already be stamped.
fn chain_fates(page: &Page, chain: &[usize], split_ts: Timestamp) -> Vec<SplitFate> {
    // end[i] = start of the next newer *effective* version. Uncommitted
    // versions have no timestamp yet and do not close their predecessor's
    // lifetime.
    let mut fates = vec![SplitFate::CurrentOnly; chain.len()];
    let mut next_newer_start: Option<Timestamp> = None; // lifetime end bound
    for (idx, &off) in chain.iter().enumerate() {
        if page.rec_is_tid_marked(off) {
            // Case 4: uncommitted versions remain in the current page.
            fates[idx] = SplitFate::CurrentOnly;
            continue;
        }
        let start = page.rec_timestamp(off);
        let end = next_newer_start.unwrap_or(Timestamp::MAX);
        let stub = page.rec_is_stub(off);
        fates[idx] = if stub {
            if start < split_ts {
                // Stubs earlier than the split time move to history: their
                // purpose is to end the prior version there. They are
                // removed from the current page.
                SplitFate::HistoryOnly
            } else {
                SplitFate::CurrentOnly
            }
        } else if end <= split_ts {
            // Case 1: lifetime entirely before the split.
            SplitFate::HistoryOnly
        } else if start < split_ts {
            // Case 2: alive across the split — redundantly in both pages.
            SplitFate::Both
        } else {
            // Case 3: born at/after the split.
            SplitFate::CurrentOnly
        };
        next_newer_start = Some(start);
    }
    fates
}

/// Bytes a time split at `split_ts` would free from the current page
/// (records whose fate is HistoryOnly). Used to decide whether a time
/// split is worthwhile or the page should go straight to a key split
/// (insert-heavy pages may have nothing historical to shed).
pub fn time_split_gain(cur: &Page, split_ts: Timestamp) -> usize {
    let mut gain = 0usize;
    for i in 0..cur.slot_count() {
        let chain = chain_offsets(cur, i);
        let fates = chain_fates(cur, &chain, split_ts);
        for (idx, &off) in chain.iter().enumerate() {
            if fates[idx] == SplitFate::HistoryOnly {
                gain += cur.rec_size(off);
            }
        }
    }
    gain + cur.frag_space()
}

/// Time-split `cur` at `split_ts` (§3.3): returns `(history page, new
/// current page, pack counts)` images. The history page receives the time
/// range `[cur.start_ts, split_ts)` and inherits the old history pointer;
/// the rebuilt current page covers `[split_ts, ∞)` and points at the new
/// history page. When [`history_packing`] is on (the default) the history
/// side is written delta-packed. The caller must have stamped all
/// committed versions first ([`stamp_committed`]) and installs/logs both
/// images atomically.
pub fn time_split(
    cur: &Page,
    split_ts: Timestamp,
    hist_id: PageId,
) -> Result<(Page, Page, PackCounts)> {
    debug_assert!(cur.is_versioned());
    debug_assert!(split_ts > cur.start_ts());

    let mut hist = Page::zeroed();
    hist.format(
        hist_id,
        crate::page::PageType::Leaf,
        cur.flags() | FLAG_HISTORICAL,
        0,
    );
    hist.set_start_ts(cur.start_ts());
    hist.set_end_ts(split_ts);
    hist.set_history_page(cur.history_page());

    let mut fresh = Page::zeroed();
    fresh.format(cur.page_id(), crate::page::PageType::Leaf, cur.flags(), 0);
    fresh.set_start_ts(split_ts);
    fresh.set_end_ts(Timestamp::MAX);
    fresh.set_history_page(hist_id);
    fresh.set_next_leaf(cur.next_leaf());

    let pack = history_packing();
    let mut counts = PackCounts::default();
    let pick_hist = |f| matches!(f, SplitFate::HistoryOnly | SplitFate::Both);
    for i in 0..cur.slot_count() {
        let chain = chain_offsets(cur, i);
        let fates = chain_fates(cur, &chain, split_ts);
        copy_chain(cur, &chain, &fates, &mut fresh, |f| {
            matches!(f, SplitFate::CurrentOnly | SplitFate::Both)
        })?;
        if pack {
            // Current pages never hold deltas, so the picked records are
            // already materialized.
            let vers: Vec<ChainVersion> = chain
                .iter()
                .enumerate()
                .filter(|&(idx, _)| pick_hist(fates[idx]))
                .map(|(_, &off)| ChainVersion {
                    data: cur.rec_data(off).to_vec(),
                    flags: cur.rec_flags(off),
                    ttime: cur.rec_ttime(off),
                    sn: cur.rec_sn(off),
                })
                .collect();
            if !vers.is_empty() {
                let key = cur.rec_key(chain[0]).to_vec();
                counts.add(pack_chain_into(&mut hist, &key, &vers)?);
            }
        } else {
            copy_chain(cur, &chain, &fates, &mut hist, pick_hist)?;
        }
    }
    Ok((hist, fresh, counts))
}

/// Copy the subset of `chain` selected by `pick` into `dst`, preserving
/// newest-first order and relinking VPs.
fn copy_chain(
    src: &Page,
    chain: &[usize],
    fates: &[SplitFate],
    dst: &mut Page,
    pick: impl Fn(SplitFate) -> bool,
) -> Result<()> {
    let mut prev_new: Option<usize> = None;
    let mut first_new: Option<usize> = None;
    for (idx, &off) in chain.iter().enumerate() {
        if !pick(fates[idx]) {
            continue;
        }
        let new_off = dst.alloc_record(
            src.rec_key(off),
            src.rec_data(off),
            src.rec_flags(off),
            first_new.is_none(),
        )?;
        // Copy Ttime + SN verbatim (committed stamps or TID marks).
        copy_tail(src, off, dst, new_off);
        match prev_new {
            None => first_new = Some(new_off),
            Some(p) => dst.set_rec_vp(p, new_off),
        }
        prev_new = Some(new_off);
    }
    if let Some(head) = first_new {
        let key = dst.rec_key(head).to_vec();
        let pos = match dst.find_slot(&key) {
            Ok(_) => return Err(Error::Internal("duplicate slot during split copy".into())),
            Err(pos) => pos,
        };
        // We allocated the record without a slot when first_new was taken
        // above with need_slot=true... insert_slot is private; emulate via
        // insert_at? The record is already in the heap; add the slot.
        dst.add_slot_for(pos, head);
    }
    Ok(())
}

fn copy_tail(src: &Page, src_off: usize, dst: &mut Page, dst_off: usize) {
    if src.rec_is_tid_marked(src_off) {
        dst.mark_rec_tid(dst_off, src.rec_tid(src_off));
    } else {
        dst.stamp_rec(dst_off, src.rec_timestamp(src_off));
    }
}

/// Key-split `cur` around its slot midpoint (by accumulated live bytes):
/// returns `(new left image — same page id, right page, separator key)`.
/// Whole version chains move together; both halves keep the page's time
/// range and share the existing history chain. Works for versioned and
/// unversioned leaves.
pub fn key_split(cur: &Page, right_id: PageId) -> Result<(Page, Page, Vec<u8>)> {
    let n = cur.slot_count();
    if n < 2 {
        return Err(Error::Internal("key split of a page with < 2 keys".into()));
    }
    // Find the slot index where accumulated chain bytes pass half the total.
    let chain_bytes: Vec<usize> = (0..n)
        .map(|i| {
            if cur.is_versioned() {
                chain_offsets(cur, i).iter().map(|&o| cur.rec_size(o)).sum()
            } else {
                cur.rec_size(cur.slot(i))
            }
        })
        .collect();
    let total: usize = chain_bytes.iter().sum();
    let mut acc = 0usize;
    let mut split_at = n / 2;
    for (i, b) in chain_bytes.iter().enumerate() {
        acc += b;
        if acc * 2 >= total {
            split_at = (i + 1).clamp(1, n - 1);
            break;
        }
    }

    let mut left = Page::zeroed();
    left.format(cur.page_id(), crate::page::PageType::Leaf, cur.flags(), 0);
    left.set_start_ts(cur.start_ts());
    left.set_end_ts(cur.end_ts());
    left.set_history_page(cur.history_page());
    left.set_next_leaf(right_id);

    let mut right = Page::zeroed();
    right.format(right_id, crate::page::PageType::Leaf, cur.flags(), 0);
    right.set_start_ts(cur.start_ts());
    right.set_end_ts(cur.end_ts());
    right.set_history_page(cur.history_page());
    right.set_next_leaf(cur.next_leaf());

    for i in 0..n {
        let dst = if i < split_at { &mut left } else { &mut right };
        if cur.is_versioned() {
            let chain = chain_offsets(cur, i);
            let fates = vec![SplitFate::Both; chain.len()];
            copy_chain(cur, &chain, &fates, dst, |_| true)?;
        } else {
            let off = cur.slot(i);
            dst.insert_sorted(cur.rec_key(off), cur.rec_data(off), cur.rec_flags(off))?;
        }
    }
    let sep = right.rec_key(right.slot(0)).to_vec();
    Ok((left, right, sep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{PageType, FLAG_VERSIONED};
    use std::collections::HashMap as Map;

    struct MapResolver(Map<u64, Timestamp>);
    impl TimestampResolver for MapResolver {
        fn resolve(&self, tid: Tid) -> Option<Timestamp> {
            self.0.get(&tid.0).copied()
        }
    }

    fn vleaf() -> Page {
        let mut p = Page::zeroed();
        p.format(PageId(7), PageType::Leaf, FLAG_VERSIONED, 0);
        p
    }

    fn ts(t: u64, sn: u32) -> Timestamp {
        Timestamp::new(t, sn)
    }

    #[test]
    fn add_version_builds_chain() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"a", b"v1", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        let o2 = add_version(&mut p, b"a", b"v2", false, Tid(2)).unwrap();
        assert_eq!(p.slot_count(), 1);
        assert_eq!(p.slot(0), o2);
        assert_eq!(p.rec_vp(o2), o1);
        assert_eq!(chain_offsets(&p, 0), vec![o2, o1]);
    }

    #[test]
    fn pop_newest_restores_or_removes() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"a", b"v1", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        add_version(&mut p, b"a", b"v2", false, Tid(2)).unwrap();
        pop_newest(&mut p, b"a", Tid(2)).unwrap();
        assert_eq!(p.slot(0), o1);
        assert_eq!(p.rec_data(p.slot(0)), b"v1");
        // Popping an insert removes the slot entirely.
        add_version(&mut p, b"b", b"x", false, Tid(3)).unwrap();
        assert_eq!(p.slot_count(), 2);
        pop_newest(&mut p, b"b", Tid(3)).unwrap();
        assert_eq!(p.slot_count(), 1);
        assert!(p.find_slot(b"b").is_err());
    }

    #[test]
    fn pop_newest_rejects_wrong_owner() {
        let mut p = vleaf();
        add_version(&mut p, b"a", b"v1", false, Tid(1)).unwrap();
        assert!(pop_newest(&mut p, b"a", Tid(9)).is_err());
    }

    #[test]
    fn visibility_walks_to_correct_version() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"a", b"v1", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        let o2 = add_version(&mut p, b"a", b"v2", false, Tid(2)).unwrap();
        p.stamp_rec(o2, ts(40, 0));
        let o3 = add_version(&mut p, b"a", b"v3", false, Tid(3)).unwrap();
        p.stamp_rec(o3, ts(60, 0));
        let r = MapResolver(Map::new());
        assert_eq!(
            visible_as_of(&p, 0, ts(60, 5), None, &r),
            Visible::Version(o3)
        );
        assert_eq!(
            visible_as_of(&p, 0, ts(59, 0), None, &r),
            Visible::Version(o2)
        );
        assert_eq!(
            visible_as_of(&p, 0, ts(40, 0), None, &r),
            Visible::Version(o2)
        );
        assert_eq!(
            visible_as_of(&p, 0, ts(20, 0), None, &r),
            Visible::Version(o1)
        );
        assert_eq!(visible_as_of(&p, 0, ts(19, 9), None, &r), Visible::NotHere);
    }

    #[test]
    fn visibility_of_uncommitted_and_own_writes() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"a", b"v1", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        let o2 = add_version(&mut p, b"a", b"v2", false, Tid(5)).unwrap();
        let r = MapResolver(Map::new()); // Tid(5) still active
                                         // Other readers skip the uncommitted version.
        assert_eq!(
            visible_as_of(&p, 0, Timestamp::MAX, None, &r),
            Visible::Version(o1)
        );
        // The owner sees its own write.
        assert_eq!(
            visible_as_of(&p, 0, Timestamp::MAX, Some(Tid(5)), &r),
            Visible::Version(o2)
        );
        // Once committed (resolver knows), it becomes visible to all.
        let mut m = Map::new();
        m.insert(5, ts(40, 0));
        let r = MapResolver(m);
        assert_eq!(
            visible_as_of(&p, 0, Timestamp::MAX, None, &r),
            Visible::Version(o2)
        );
        assert_eq!(
            visible_as_of(&p, 0, ts(39, 0), None, &r),
            Visible::Version(o1)
        );
    }

    #[test]
    fn delete_stub_reports_deleted() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"a", b"v1", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        let o2 = add_version(&mut p, b"a", b"", true, Tid(2)).unwrap();
        p.stamp_rec(o2, ts(40, 0));
        let r = MapResolver(Map::new());
        assert_eq!(visible_as_of(&p, 0, ts(50, 0), None, &r), Visible::Deleted);
        assert_eq!(
            visible_as_of(&p, 0, ts(30, 0), None, &r),
            Visible::Version(o1)
        );
    }

    #[test]
    fn stamp_committed_counts_per_tid() {
        let mut p = vleaf();
        add_version(&mut p, b"a", b"v1", false, Tid(1)).unwrap();
        add_version(&mut p, b"b", b"v1", false, Tid(1)).unwrap();
        add_version(&mut p, b"c", b"v1", false, Tid(2)).unwrap();
        let mut m = Map::new();
        m.insert(1, ts(20, 0));
        // Tid(2) not yet committed.
        let counts = stamp_committed(&mut p, &MapResolver(m));
        let mut counts: Vec<_> = counts;
        counts.sort();
        assert_eq!(counts, vec![(Tid(1), 2)]);
        // a and b stamped, c still TID-marked.
        let oa = p.slot(p.find_slot(b"a").unwrap());
        assert_eq!(p.rec_timestamp(oa), ts(20, 0));
        let oc = p.slot(p.find_slot(b"c").unwrap());
        assert!(p.rec_is_tid_marked(oc));
    }

    /// Reproduce the exact Fig. 3 scenario: records A, B, C with the
    /// depicted lifetimes, then time-split and check each page's content.
    #[test]
    fn time_split_matches_figure_3() {
        let mut p = vleaf();
        // Record A: one version, alive across the split.
        let a1 = add_version(&mut p, b"A", b"a1", false, Tid(1)).unwrap();
        p.stamp_rec(a1, ts(20, 0));
        // Record B: early version, then a later version after split time.
        let b1 = add_version(&mut p, b"B", b"b1", false, Tid(1)).unwrap();
        p.stamp_rec(b1, ts(20, 0));
        let b2 = add_version(&mut p, b"B", b"b2", false, Tid(2)).unwrap();
        p.stamp_rec(b2, ts(200, 0));
        // Record C: early version, mid version, then a delete stub after split.
        let c1 = add_version(&mut p, b"C", b"c1", false, Tid(1)).unwrap();
        p.stamp_rec(c1, ts(20, 0));
        let c2 = add_version(&mut p, b"C", b"c2", false, Tid(3)).unwrap();
        p.stamp_rec(c2, ts(60, 0));
        let c3 = add_version(&mut p, b"C", b"", true, Tid(4)).unwrap();
        p.stamp_rec(c3, ts(200, 0));

        let split = ts(100, 0);
        let (hist, cur, _) = time_split(&p, split, PageId(99)).unwrap();

        // History page: time range [0, 100).
        assert!(hist.is_historical());
        assert_eq!(hist.start_ts(), Timestamp::ZERO);
        assert_eq!(hist.end_ts(), split);
        assert_eq!(hist.page_id(), PageId(99));
        // A: the only version spans the split -> in both.
        let ha = hist.find_slot(b"A").unwrap();
        assert_eq!(hist.rec_data(hist.slot(ha)), b"a1");
        let ca = cur.find_slot(b"A").unwrap();
        assert_eq!(cur.rec_data(cur.slot(ca)), b"a1");
        // B: b1 [20,200) spans -> both; b2 [200,inf) current only.
        let hb = hist.find_slot(b"B").unwrap();
        assert_eq!(chain_offsets(&hist, hb).len(), 1);
        assert_eq!(hist.rec_data(hist.slot(hb)), b"b1");
        let cb = cur.find_slot(b"B").unwrap();
        let cb_chain = chain_offsets(&cur, cb);
        assert_eq!(cb_chain.len(), 2);
        assert_eq!(cur.rec_data(cb_chain[0]), b"b2");
        assert_eq!(cur.rec_data(cb_chain[1]), b"b1");
        // C: c1 [20,60) history only; c2 [60,200) spans -> both; stub at 200
        // stays current only.
        let hc = hist.find_slot(b"C").unwrap();
        let hc_chain = chain_offsets(&hist, hc);
        assert_eq!(hc_chain.len(), 2);
        assert_eq!(hist.rec_data(hc_chain[0]), b"c2");
        assert_eq!(hist.rec_data(hc_chain[1]), b"c1");
        let cc = cur.find_slot(b"C").unwrap();
        let cc_chain = chain_offsets(&cur, cc);
        assert_eq!(cc_chain.len(), 2);
        assert!(cur.rec_is_stub(cc_chain[0]));
        assert_eq!(cur.rec_data(cc_chain[1]), b"c2");
        // Current page time range updated, history linked.
        assert_eq!(cur.start_ts(), split);
        assert_eq!(cur.history_page(), PageId(99));
        assert_eq!(cur.end_ts(), Timestamp::MAX);
    }

    #[test]
    fn time_split_drops_old_stub_from_current() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"k", b"v", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        let o2 = add_version(&mut p, b"k", b"", true, Tid(2)).unwrap();
        p.stamp_rec(o2, ts(40, 0));
        let (hist, cur, _) = time_split(&p, ts(100, 0), PageId(9)).unwrap();
        // Whole chain ended before the split: key vanishes from current.
        assert!(cur.find_slot(b"k").is_err());
        let h = hist.find_slot(b"k").unwrap();
        let chain = chain_offsets(&hist, h);
        assert_eq!(chain.len(), 2);
        assert!(hist.rec_is_stub(chain[0]));
    }

    #[test]
    fn time_split_keeps_uncommitted_in_current() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"k", b"v1", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        add_version(&mut p, b"k", b"v2", false, Tid(7)).unwrap(); // uncommitted
        let (hist, cur, _) = time_split(&p, ts(100, 0), PageId(9)).unwrap();
        let c = cur.find_slot(b"k").unwrap();
        let chain = chain_offsets(&cur, c);
        assert_eq!(chain.len(), 2);
        assert!(cur.rec_is_tid_marked(chain[0]));
        assert_eq!(cur.rec_tid(chain[0]), Tid(7));
        // Committed predecessor spans (its end is still open) -> in both.
        assert_eq!(cur.rec_data(chain[1]), b"v1");
        let h = hist.find_slot(b"k").unwrap();
        assert_eq!(hist.rec_data(hist.slot(h)), b"v1");
    }

    #[test]
    fn key_split_partitions_keys_and_preserves_chains() {
        let mut p = vleaf();
        for k in 0u8..10 {
            let o = add_version(&mut p, &[k], &[k, k], false, Tid(1)).unwrap();
            p.stamp_rec(o, ts(20, 0));
            let o2 = add_version(&mut p, &[k], &[k, k, k], false, Tid(2)).unwrap();
            p.stamp_rec(o2, ts(40, 0));
        }
        let (left, right, sep) = key_split(&p, PageId(33)).unwrap();
        assert_eq!(left.slot_count() + right.slot_count(), 10);
        assert!(left.slot_count() >= 1 && right.slot_count() >= 1);
        assert_eq!(sep, right.rec_key(right.slot(0)).to_vec());
        assert!(left.rec_key(left.slot(left.slot_count() - 1)) < sep.as_slice());
        assert_eq!(left.next_leaf(), PageId(33));
        // Chains intact on both sides.
        let chain = chain_offsets(&right, 0);
        assert_eq!(chain.len(), 2);
        assert_eq!(right.rec_timestamp(chain[0]), ts(40, 0));
        assert_eq!(right.rec_timestamp(chain[1]), ts(20, 0));
    }

    #[test]
    fn prune_chain_drops_versions_below_watermark() {
        let mut p = vleaf();
        let o1 = add_version(&mut p, b"k", b"v1", false, Tid(1)).unwrap();
        p.stamp_rec(o1, ts(20, 0));
        let o2 = add_version(&mut p, b"k", b"v2", false, Tid(2)).unwrap();
        p.stamp_rec(o2, ts(40, 0));
        let o3 = add_version(&mut p, b"k", b"v3", false, Tid(3)).unwrap();
        p.stamp_rec(o3, ts(60, 0));
        // Oldest snapshot at 45: v2 is what it reads; v1 is unreachable.
        let pruned = prune_chain(&mut p, 0, ts(45, 0));
        assert_eq!(pruned, 1);
        let chain = chain_offsets(&p, 0);
        assert_eq!(chain.len(), 2);
        assert_eq!(p.rec_data(chain[1]), b"v2");
        assert!(p.frag_space() > 0);
        // Watermark before everything: nothing visible -> nothing pruned.
        let mut q = vleaf();
        let a = add_version(&mut q, b"k", b"x", false, Tid(1)).unwrap();
        q.stamp_rec(a, ts(20, 0));
        assert_eq!(prune_chain(&mut q, 0, ts(10, 0)), 0);
    }

    #[test]
    fn delta_encode_apply_roundtrip() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"hello world", b"hello brave world"),
            (b"same", b"same"),
            (b"", b"fresh"),
            (b"gone", b""),
            (b"abcdef", b"xyz"),
            (b"aaaa", b"aaaaaaaa"),
            (b"aaaaaaaa", b"aaaa"),
        ];
        for (base, new) in cases {
            let enc = encode_delta(base, new);
            let dec = apply_delta(base, &enc).unwrap();
            assert_eq!(&dec, new, "base={base:?} new={new:?}");
        }
        assert!(apply_delta(b"short", &[0, 9, 0, 9]).is_err());
        assert!(apply_delta(b"x", &[0]).is_err());
    }

    fn big(val: u8, tag: u8) -> Vec<u8> {
        // 120 mostly-stable bytes with a small mutating tail — the shape
        // delta encoding exists for.
        let mut v = vec![val; 120];
        v[118] = tag;
        v[119] = tag.wrapping_mul(7);
        v
    }

    #[test]
    fn pack_chain_writes_deltas_and_anchors_every_k() {
        let depth = 2 * DELTA_ANCHOR_EVERY + 3;
        let vers: Vec<ChainVersion> = (0..depth)
            .map(|i| ChainVersion {
                data: big(9, i as u8),
                flags: 0,
                ttime: 1000 - i as u64,
                sn: 0,
            })
            .collect();
        let mut hist = Page::zeroed();
        hist.format(
            PageId(3),
            PageType::Leaf,
            FLAG_VERSIONED | FLAG_HISTORICAL,
            0,
        );
        let counts = pack_chain_into(&mut hist, b"key", &vers).unwrap();
        // Head + one anchor per K boundary; everything else deltas.
        let expect_anchors = 1 + (depth - 1) / DELTA_ANCHOR_EVERY;
        assert_eq!(counts.anchors as usize, expect_anchors);
        assert_eq!(counts.deltas as usize, depth - expect_anchors);

        // The walker reproduces every version, newest first.
        let i = hist.find_slot(b"key").unwrap();
        let mut w = ChainWalker::new(&hist, i);
        let mut seen = 0usize;
        while let Some(off) = w.step().unwrap() {
            assert_eq!(w.data(), &big(9, seen as u8)[..], "version {seen}");
            assert_eq!(hist.rec_ttime(off), 1000 - seen as u64);
            if hist.rec_is_delta(off) {
                assert!(hist.rec_key(off).is_empty());
            }
            seen += 1;
        }
        assert_eq!(seen, depth);
        assert!(w.folds > 0);

        // materialize_at agrees for a mid-chain delta record.
        let chain = chain_offsets(&hist, i);
        let target = chain[3];
        assert!(hist.rec_is_delta(target));
        let (data, folds) = materialize_at(&hist, i, target).unwrap();
        assert_eq!(data, big(9, 3));
        assert!(folds >= 3 && folds < DELTA_ANCHOR_EVERY as u64);
    }

    #[test]
    fn pack_falls_back_to_full_when_delta_not_smaller() {
        let vers: Vec<ChainVersion> = (0..3)
            .map(|i| ChainVersion {
                data: vec![i as u8; 2], // tiny values: 4-byte delta header loses
                flags: 0,
                ttime: 100 - i as u64,
                sn: 0,
            })
            .collect();
        let mut hist = Page::zeroed();
        hist.format(
            PageId(3),
            PageType::Leaf,
            FLAG_VERSIONED | FLAG_HISTORICAL,
            0,
        );
        let counts = pack_chain_into(&mut hist, b"k", &vers).unwrap();
        assert_eq!(counts.deltas, 0);
        assert_eq!(counts.anchors, 3);
    }

    #[test]
    fn time_split_packs_history_side() {
        let mut p = vleaf();
        let depth = 12;
        for i in 0..depth {
            let o =
                add_version(&mut p, b"obj", &big(5, i as u8), false, Tid(i as u64 + 1)).unwrap();
            p.stamp_rec(o, ts(10 * (i as u64 + 1), 0));
        }
        let split = ts(10 * depth as u64 + 5, 0);
        let (hist, cur, counts) = time_split(&p, split, PageId(40)).unwrap();
        assert!(counts.deltas > 0, "large stable payloads must delta-pack");
        // History holds the full chain (newest spans the split -> Both);
        // the walker reproduces every payload.
        let hi = hist.find_slot(b"obj").unwrap();
        let (vers, folds) = materialize_chain(&hist, hi).unwrap();
        assert_eq!(vers.len(), depth);
        assert!(folds > 0);
        for (idx, v) in vers.iter().enumerate() {
            assert_eq!(v.data, big(5, (depth - 1 - idx) as u8));
        }
        // Packed history is denser than the unpacked current-page bytes.
        let was = set_history_packing(false);
        let (unpacked, _, c2) = time_split(&p, split, PageId(40)).unwrap();
        set_history_packing(was);
        assert_eq!(c2, PackCounts::default());
        assert!(hist.free_lower() < unpacked.free_lower());
        // Current side keeps only the spanning newest version, full-image.
        let ci = cur.find_slot(b"obj").unwrap();
        assert_eq!(chain_offsets(&cur, ci).len(), 1);
        assert!(!cur.rec_is_delta(cur.slot(ci)));
    }

    #[test]
    fn page_compact_preserves_packed_chains() {
        let depth = 10;
        let vers: Vec<ChainVersion> = (0..depth)
            .map(|i| ChainVersion {
                data: big(1, i as u8),
                flags: 0,
                ttime: 500 - i as u64,
                sn: 0,
            })
            .collect();
        let mut hist = Page::zeroed();
        hist.format(
            PageId(3),
            PageType::Leaf,
            FLAG_VERSIONED | FLAG_HISTORICAL,
            0,
        );
        pack_chain_into(&mut hist, b"a", &vers).unwrap();
        // A dead sibling chain gives compact() something to reclaim.
        let o = add_version(&mut hist, b"zz", b"junk", false, Tid(1)).unwrap();
        hist.stamp_rec(o, ts(1, 0));
        let zi = hist.find_slot(b"zz").unwrap();
        hist.remove_record_at(zi);
        hist.compact().unwrap();

        let i = hist.find_slot(b"a").unwrap();
        let (out, _) = materialize_chain(&hist, i).unwrap();
        assert_eq!(out.len(), depth);
        for (idx, v) in out.iter().enumerate() {
            assert_eq!(v.data, big(1, idx as u8));
        }
    }

    #[test]
    fn key_split_unversioned() {
        let mut p = Page::zeroed();
        p.format(PageId(7), PageType::Leaf, 0, 0);
        for k in 0u8..8 {
            p.insert_sorted(&[k], b"data", 0).unwrap();
        }
        let (left, right, sep) = key_split(&p, PageId(8)).unwrap();
        assert_eq!(left.slot_count(), 4);
        assert_eq!(right.slot_count(), 4);
        assert_eq!(sep, vec![4u8]);
    }
}
