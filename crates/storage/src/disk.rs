//! Disk manager: the single database file of fixed-size pages.
//!
//! Pages are read and written with positioned I/O (`pread`/`pwrite`)
//! through the [`crate::vfs`] seam; allocation is a monotonic high-water
//! mark derived from the file length, so it needs no logging — a page
//! allocated but orphaned by a crash is merely leaked space (documented
//! trade-off). The history compactor *does* free pages: it rewrites them
//! as formatted `PageType::Free` images (logged like any other page
//! rewrite, so recovery and replicas agree) and returns their ids to an
//! in-memory free list that [`DiskManager::allocate`] reuses before
//! extending the file. The list is rebuilt at open by scanning for Free
//! pages; a crash between the free and the rescan merely leaks until the
//! next open.
//!
//! Every page image is stamped with a whole-page CRC on write and
//! verified on read, so a torn 8 KB write (some sectors old, some new)
//! surfaces as [`Error::Corruption`] instead of silently wrong data.
//! Recovery repairs such pages from full-page images in the WAL.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use immortaldb_common::{Error, PageId, Result, PAGE_SIZE};

use crate::meta::MetaView;
use crate::page::{self, Page};
use crate::vfs::{std_fs, Vfs, VfsFile};

/// Manages the database page file.
pub struct DiskManager {
    file: Arc<dyn VfsFile>,
    path: PathBuf,
    /// Next page number to hand out (== current page count of the file).
    next_page: AtomicU32,
    /// Serializes file extension so concurrent allocations don't race the
    /// high-water mark against the write that materializes the page.
    alloc_lock: Mutex<()>,
    /// Page ids reclaimed by the history compactor, reused by
    /// [`Self::allocate`] before the file is extended.
    free_list: Mutex<Vec<PageId>>,
}

impl DiskManager {
    /// Open through the production [`crate::vfs::StdFs`].
    pub fn open(path: impl AsRef<Path>) -> Result<(DiskManager, bool)> {
        Self::open_with(std_fs(), path)
    }

    /// Open an existing database file or create a fresh one (with a
    /// formatted, fsynced meta page) through the given VFS. Returns the
    /// manager and whether the file was newly created.
    ///
    /// A file length that is not a page multiple — the footprint of a
    /// crash in the middle of an extending write — is repaired by
    /// truncating back to the last whole page.
    pub fn open_with(vfs: Arc<dyn Vfs>, path: impl AsRef<Path>) -> Result<(DiskManager, bool)> {
        let path = path.as_ref().to_path_buf();
        let existed = vfs.exists(&path);
        let file = vfs.open(&path)?;
        let mut len = file.len()?;
        if existed && len % PAGE_SIZE as u64 != 0 {
            // Torn extension: drop the partial page; it was never
            // acknowledged as allocated to any caller that could have
            // logged against it.
            len -= len % PAGE_SIZE as u64;
            file.set_len(len)?;
        }
        let mgr = DiskManager {
            file,
            path,
            next_page: AtomicU32::new((len / PAGE_SIZE as u64) as u32),
            alloc_lock: Mutex::new(()),
            free_list: Mutex::new(Vec::new()),
        };
        let fresh = !existed || len == 0;
        if fresh {
            let mut meta = Page::zeroed();
            MetaView::init(&mut meta);
            let _guard = mgr.alloc_lock.lock();
            mgr.next_page.store(1, Ordering::SeqCst);
            mgr.write_page(&meta)?;
            // Make the formatted meta page durable immediately: a crash
            // right after create must not leave an unvalidatable file.
            mgr.file.sync()?;
        } else {
            // Validate the meta page, but tolerate a torn page 0: recovery
            // repairs it from a logged full-page image, and the engine
            // re-validates after redo.
            match mgr.read_page(PageId(0)) {
                Ok(meta) => MetaView::validate(&meta)?,
                Err(Error::Corruption(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok((mgr, fresh))
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self) -> u32 {
        self.next_page.load(Ordering::SeqCst)
    }

    /// Read a page image from disk, verifying its CRC.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        if id.0 >= self.num_pages() {
            return Err(Error::Corruption(format!(
                "read of unallocated page {id:?} (file has {} pages)",
                self.num_pages()
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut buf, id.file_offset(PAGE_SIZE))?;
        if !page::verify_image_crc(&mut buf) {
            return Err(Error::Corruption(format!(
                "page {id:?} failed CRC verification (torn or corrupt write)"
            )));
        }
        Page::from_bytes(&buf)
    }

    /// Write a page image to disk, stamping its CRC (no fsync; see
    /// [`Self::sync`]).
    pub fn write_page(&self, page_ref: &Page) -> Result<()> {
        let id = page_ref.page_id();
        if id.0 >= self.num_pages() {
            return Err(Error::Internal(format!("write of unallocated page {id:?}")));
        }
        let mut buf = page_ref.as_bytes().to_vec();
        page::stamp_image_crc(&mut buf);
        self.file.write_all_at(&buf, id.file_offset(PAGE_SIZE))?;
        Ok(())
    }

    /// Allocate a page: reuse a compactor-freed page when one is
    /// available, otherwise extend the file with zeroes. Callers install a
    /// full logged image into the page before use, so stale Free-page
    /// content never survives reallocation.
    pub fn allocate(&self) -> Result<PageId> {
        if let Some(id) = self.free_list.lock().pop() {
            return Ok(id);
        }
        self.extend()
    }

    /// Allocate strictly by extending the file (never reuses freed pages).
    /// Recovery uses this to grow the file up to a logged page id — taking
    /// from the free list there would not raise the high-water mark.
    pub fn extend(&self) -> Result<PageId> {
        let _guard = self.alloc_lock.lock();
        let id = PageId(self.next_page.load(Ordering::SeqCst));
        let zero = [0u8; PAGE_SIZE];
        self.file.write_all_at(&zero, id.file_offset(PAGE_SIZE))?;
        self.next_page.store(id.0 + 1, Ordering::SeqCst);
        Ok(id)
    }

    /// Return a page to the free list. The caller must already have
    /// installed (and logged) a `PageType::Free` image for it so the free
    /// survives recovery and replication.
    pub fn free_page(&self, id: PageId) {
        debug_assert!(id.0 != 0 && id.0 < self.num_pages());
        self.free_list.lock().push(id);
    }

    /// Number of pages currently on the free list.
    pub fn free_pages(&self) -> usize {
        self.free_list.lock().len()
    }

    /// Rebuild the free list by scanning the file for `PageType::Free`
    /// pages (called once at open, after recovery redo). Unreadable pages
    /// are skipped — they are certainly not reusable.
    pub fn reload_free_list(&self) -> Result<usize> {
        let mut found = Vec::new();
        for n in 1..self.num_pages() {
            if let Ok(p) = self.read_page(PageId(n)) {
                if matches!(p.page_type(), Ok(crate::page::PageType::Free)) {
                    found.push(PageId(n));
                }
            }
        }
        let count = found.len();
        *self.free_list.lock() = found;
        Ok(count)
    }

    /// Flush file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("immortal-disk-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn create_formats_meta_page() {
        let path = tmp("create");
        let (d, fresh) = DiskManager::open(&path).unwrap();
        assert!(fresh);
        assert_eq!(d.num_pages(), 1);
        let meta = d.read_page(PageId(0)).unwrap();
        MetaView::validate(&meta).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let path = tmp("rw");
        let (d, _) = DiskManager::open(&path).unwrap();
        let id = d.allocate().unwrap();
        assert_eq!(id, PageId(1));
        let mut p = Page::zeroed();
        p.format(id, PageType::Leaf, 0, 0);
        p.insert_sorted(b"hello", b"world", 0).unwrap();
        d.write_page(&p).unwrap();
        let q = d.read_page(id).unwrap();
        assert_eq!(q.rec_data(q.slot(0)), b"world");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_preserves_pages() {
        let path = tmp("reopen");
        {
            let (d, _) = DiskManager::open(&path).unwrap();
            let id = d.allocate().unwrap();
            let mut p = Page::zeroed();
            p.format(id, PageType::Leaf, 0, 0);
            d.write_page(&p).unwrap();
            d.sync().unwrap();
        }
        let (d, fresh) = DiskManager::open(&path).unwrap();
        assert!(!fresh);
        assert_eq!(d.num_pages(), 2);
        let p = d.read_page(PageId(1)).unwrap();
        assert_eq!(p.page_type().unwrap(), PageType::Leaf);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let path = tmp("oob");
        let (d, _) = DiskManager::open(&path).unwrap();
        assert!(d.read_page(PageId(5)).is_err());
        let mut p = Page::zeroed();
        p.format(PageId(5), PageType::Leaf, 0, 0);
        assert!(d.write_page(&p).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_file_length_is_truncated_on_open() {
        let path = tmp("torn");
        {
            let (d, _) = DiskManager::open(&path).unwrap();
            let id = d.allocate().unwrap();
            let mut p = Page::zeroed();
            p.format(id, PageType::Leaf, 0, 0);
            d.write_page(&p).unwrap();
            d.sync().unwrap();
        }
        // Simulate a crash mid-extension: a dangling partial page.
        let intact = std::fs::read(&path).unwrap();
        std::fs::write(&path, [&intact[..], &[0xAAu8; 100][..]].concat()).unwrap();
        let (d, fresh) = DiskManager::open(&path).unwrap();
        assert!(!fresh);
        assert_eq!(d.num_pages(), 2);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            2 * PAGE_SIZE as u64
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn free_list_reuse_and_reload() {
        let path = tmp("free");
        {
            let (d, _) = DiskManager::open(&path).unwrap();
            let a = d.allocate().unwrap();
            let b = d.allocate().unwrap();
            let mut f = Page::zeroed();
            f.format(a, PageType::Free, 0, 0);
            d.write_page(&f).unwrap();
            d.free_page(a);
            assert_eq!(d.free_pages(), 1);
            // Reuse comes before extension and does not grow the file.
            assert_eq!(d.allocate().unwrap(), a);
            assert_eq!(d.num_pages(), 3);
            // Free it again, durably, for the reload half of the test.
            d.write_page(&f).unwrap();
            d.free_page(a);
            let mut p = Page::zeroed();
            p.format(b, PageType::Leaf, 0, 0);
            d.write_page(&p).unwrap();
            d.sync().unwrap();
        }
        let (d, _) = DiskManager::open(&path).unwrap();
        assert_eq!(d.free_pages(), 0, "free list is rebuilt only on demand");
        assert_eq!(d.reload_free_list().unwrap(), 1);
        assert_eq!(d.allocate().unwrap(), PageId(1));
        // extend() never reuses freed pages.
        assert_eq!(d.extend().unwrap(), PageId(3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_page_fails_crc_on_read() {
        let path = tmp("crc");
        let id;
        {
            let (d, _) = DiskManager::open(&path).unwrap();
            id = d.allocate().unwrap();
            let mut p = Page::zeroed();
            p.format(id, PageType::Leaf, 0, 0);
            p.insert_sorted(b"k", b"v", 0).unwrap();
            d.write_page(&p).unwrap();
            d.sync().unwrap();
        }
        // Flip one byte in the middle of the stored record heap.
        let mut bytes = std::fs::read(&path).unwrap();
        let off = id.file_offset(PAGE_SIZE) as usize + crate::page::HEADER_SIZE + 2;
        bytes[off] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (d, _) = DiskManager::open(&path).unwrap();
        match d.read_page(id) {
            Err(Error::Corruption(msg)) => assert!(msg.contains("CRC"), "{msg}"),
            other => panic!("expected CRC corruption, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }
}
