//! Disk manager: the single database file of fixed-size pages.
//!
//! Pages are read and written with positioned I/O (`pread`/`pwrite`);
//! allocation is a monotonic high-water mark derived from the file length,
//! so it needs no logging — a page allocated but orphaned by a crash is
//! merely leaked space (documented trade-off; nothing in this engine frees
//! pages, historical pages are immortal by design).

use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::Mutex;

use immortaldb_common::{Error, PageId, Result, PAGE_SIZE};

use crate::meta::MetaView;
use crate::page::Page;

/// Manages the database page file.
pub struct DiskManager {
    file: File,
    path: PathBuf,
    /// Next page number to hand out (== current page count of the file).
    next_page: AtomicU32,
    /// Serializes file extension so concurrent allocations don't race the
    /// high-water mark against the write that materializes the page.
    alloc_lock: Mutex<()>,
}

impl DiskManager {
    /// Open an existing database file or create a fresh one (with a
    /// formatted meta page). Returns the manager and whether the file was
    /// newly created.
    pub fn open(path: impl AsRef<Path>) -> Result<(DiskManager, bool)> {
        let path = path.as_ref().to_path_buf();
        let existed = path.exists();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // existing pages must survive reopen
            .open(&path)?;
        let len = file.metadata()?.len();
        if existed && len % PAGE_SIZE as u64 != 0 {
            return Err(Error::Corruption(format!(
                "database file length {len} is not a multiple of the page size"
            )));
        }
        let mgr = DiskManager {
            file,
            path,
            next_page: AtomicU32::new((len / PAGE_SIZE as u64) as u32),
            alloc_lock: Mutex::new(()),
        };
        let fresh = !existed || len == 0;
        if fresh {
            let mut meta = Page::zeroed();
            MetaView::init(&mut meta);
            let _guard = mgr.alloc_lock.lock();
            mgr.file.write_all_at(meta.as_bytes(), 0)?;
            mgr.next_page.store(1, Ordering::SeqCst);
        } else {
            let meta = mgr.read_page(PageId(0))?;
            MetaView::validate(&meta)?;
        }
        Ok((mgr, fresh))
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages currently in the file.
    pub fn num_pages(&self) -> u32 {
        self.next_page.load(Ordering::SeqCst)
    }

    /// Read a page image from disk.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        if id.0 >= self.num_pages() {
            return Err(Error::Corruption(format!(
                "read of unallocated page {id:?} (file has {} pages)",
                self.num_pages()
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut buf, id.file_offset(PAGE_SIZE))?;
        Page::from_bytes(&buf)
    }

    /// Write a page image to disk (no fsync; see [`Self::sync`]).
    pub fn write_page(&self, page: &Page) -> Result<()> {
        let id = page.page_id();
        if id.0 >= self.num_pages() {
            return Err(Error::Internal(format!("write of unallocated page {id:?}")));
        }
        self.file
            .write_all_at(page.as_bytes(), id.file_offset(PAGE_SIZE))?;
        Ok(())
    }

    /// Allocate a fresh page by extending the file with zeroes.
    pub fn allocate(&self) -> Result<PageId> {
        let _guard = self.alloc_lock.lock();
        let id = PageId(self.next_page.load(Ordering::SeqCst));
        let zero = [0u8; PAGE_SIZE];
        self.file.write_all_at(&zero, id.file_offset(PAGE_SIZE))?;
        self.next_page.store(id.0 + 1, Ordering::SeqCst);
        Ok(id)
    }

    /// Flush file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("immortal-disk-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn create_formats_meta_page() {
        let path = tmp("create");
        let (d, fresh) = DiskManager::open(&path).unwrap();
        assert!(fresh);
        assert_eq!(d.num_pages(), 1);
        let meta = d.read_page(PageId(0)).unwrap();
        MetaView::validate(&meta).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let path = tmp("rw");
        let (d, _) = DiskManager::open(&path).unwrap();
        let id = d.allocate().unwrap();
        assert_eq!(id, PageId(1));
        let mut p = Page::zeroed();
        p.format(id, PageType::Leaf, 0, 0);
        p.insert_sorted(b"hello", b"world", 0).unwrap();
        d.write_page(&p).unwrap();
        let q = d.read_page(id).unwrap();
        assert_eq!(q.rec_data(q.slot(0)), b"world");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_preserves_pages() {
        let path = tmp("reopen");
        {
            let (d, _) = DiskManager::open(&path).unwrap();
            let id = d.allocate().unwrap();
            let mut p = Page::zeroed();
            p.format(id, PageType::Leaf, 0, 0);
            d.write_page(&p).unwrap();
            d.sync().unwrap();
        }
        let (d, fresh) = DiskManager::open(&path).unwrap();
        assert!(!fresh);
        assert_eq!(d.num_pages(), 2);
        let p = d.read_page(PageId(1)).unwrap();
        assert_eq!(p.page_type().unwrap(), PageType::Leaf);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_bounds_access_rejected() {
        let path = tmp("oob");
        let (d, _) = DiskManager::open(&path).unwrap();
        assert!(d.read_page(PageId(5)).is_err());
        let mut p = Page::zeroed();
        p.format(PageId(5), PageType::Leaf, 0, 0);
        assert!(d.write_page(&p).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_torn_file_length() {
        let path = tmp("torn");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 100]).unwrap();
        assert!(DiskManager::open(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
