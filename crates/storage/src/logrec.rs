//! Log record types and their on-disk codec.
//!
//! Version operations get **physiological redo** (replayed against the
//! logged page, guarded by the page LSN) and **logical undo** (the record
//! is found again by key, because splits may have moved it). Structure
//! modifications (time splits, key splits, root changes) are logged as a
//! single atomic [`LogRecord::PageImages`] record — a redo-only nested top
//! action. Timestamp application is *never* logged (§2.2 of the paper).

use immortaldb_common::codec::{Reader, Writer};
use immortaldb_common::{Error, Lsn, PageId, Result, Tid, Timestamp, TreeId};

/// A decoded log record body. The WAL framing adds `(lsn, tid, prev_lsn)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start.
    Begin,
    /// Transaction commit, carrying the commit timestamp chosen by the
    /// timestamp authority.
    Commit { ts: Timestamp },
    /// Transaction rollback has been initiated.
    Abort,
    /// Transaction fully finished (committed or rolled back).
    End,
    /// Push a version (insert / update / delete-stub) for `key` on a
    /// versioned leaf. Undo = pop the newest version of `key`.
    AddVersion {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        data: Vec<u8>,
        stub: bool,
    },
    /// CLR compensating [`LogRecord::AddVersion`]: redo re-pops.
    ClrPopVersion {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        undo_next: Lsn,
    },
    /// Insert on an unversioned (conventional) leaf. Undo = delete.
    InsertRecord {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        data: Vec<u8>,
    },
    /// In-place update on an unversioned leaf. Undo = restore `old`.
    UpdateRecord {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        old: Vec<u8>,
        new: Vec<u8>,
    },
    /// Delete on an unversioned leaf. Undo = re-insert `old`.
    DeleteRecord {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        old: Vec<u8>,
    },
    /// CLR compensating [`LogRecord::InsertRecord`].
    ClrDeleteRecord {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        undo_next: Lsn,
    },
    /// CLR compensating [`LogRecord::UpdateRecord`] (restores the old
    /// data).
    ClrUpdateRecord {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        data: Vec<u8>,
        undo_next: Lsn,
    },
    /// CLR compensating [`LogRecord::DeleteRecord`] (re-inserts).
    ClrInsertRecord {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        data: Vec<u8>,
        undo_next: Lsn,
    },
    /// Eager-timestamping baseline (§2.2): stamp all of `tid`'s versions
    /// in `key`'s chain with the commit timestamp, *logged* so recovery
    /// can redo it — the logging overhead the paper's lazy scheme avoids.
    /// No undo action: a loser's versions are popped anyway.
    EagerStamp {
        tree: TreeId,
        page: PageId,
        key: Vec<u8>,
        ts: Timestamp,
    },
    /// Atomic multi-page after-images for structure modifications.
    /// Redo-only; never undone (nested top action).
    PageImages { pages: Vec<(PageId, Vec<u8>)> },
    /// Fuzzy checkpoint start marker.
    CheckpointBegin,
    /// Fuzzy checkpoint end: active-transaction table and dirty-page table
    /// snapshots.
    CheckpointEnd {
        att: Vec<(Tid, Lsn)>,
        dpt: Vec<(PageId, Lsn)>,
    },
}

const K_BEGIN: u8 = 1;
const K_COMMIT: u8 = 2;
const K_ABORT: u8 = 3;
const K_END: u8 = 4;
const K_ADD_VERSION: u8 = 5;
const K_CLR_POP_VERSION: u8 = 6;
const K_INSERT: u8 = 7;
const K_UPDATE: u8 = 8;
const K_DELETE: u8 = 9;
const K_CLR_DELETE: u8 = 10;
const K_CLR_UPDATE: u8 = 11;
const K_CLR_INSERT: u8 = 12;
const K_PAGE_IMAGES: u8 = 13;
const K_CKPT_BEGIN: u8 = 14;
const K_CKPT_END: u8 = 15;
const K_EAGER_STAMP: u8 = 16;

impl LogRecord {
    /// The page this record's redo applies to, if page-oriented.
    pub fn target_page(&self) -> Option<PageId> {
        match self {
            LogRecord::AddVersion { page, .. }
            | LogRecord::ClrPopVersion { page, .. }
            | LogRecord::InsertRecord { page, .. }
            | LogRecord::UpdateRecord { page, .. }
            | LogRecord::DeleteRecord { page, .. }
            | LogRecord::ClrDeleteRecord { page, .. }
            | LogRecord::ClrUpdateRecord { page, .. }
            | LogRecord::ClrInsertRecord { page, .. }
            | LogRecord::EagerStamp { page, .. } => Some(*page),
            _ => None,
        }
    }

    /// True for compensation records (redo-only during undo traversal).
    pub fn is_clr(&self) -> bool {
        matches!(
            self,
            LogRecord::ClrPopVersion { .. }
                | LogRecord::ClrDeleteRecord { .. }
                | LogRecord::ClrUpdateRecord { .. }
                | LogRecord::ClrInsertRecord { .. }
        )
    }

    /// For CLRs: where undo continues.
    pub fn undo_next(&self) -> Option<Lsn> {
        match self {
            LogRecord::ClrPopVersion { undo_next, .. }
            | LogRecord::ClrDeleteRecord { undo_next, .. }
            | LogRecord::ClrUpdateRecord { undo_next, .. }
            | LogRecord::ClrInsertRecord { undo_next, .. } => Some(*undo_next),
            _ => None,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            LogRecord::Begin => {
                w.u8(K_BEGIN);
            }
            LogRecord::Commit { ts } => {
                w.u8(K_COMMIT).u64(ts.ttime).u32(ts.sn);
            }
            LogRecord::Abort => {
                w.u8(K_ABORT);
            }
            LogRecord::End => {
                w.u8(K_END);
            }
            LogRecord::AddVersion {
                tree,
                page,
                key,
                data,
                stub,
            } => {
                w.u8(K_ADD_VERSION)
                    .u32(tree.0)
                    .u32(page.0)
                    .u8(*stub as u8)
                    .bytes(key)
                    .bytes(data);
            }
            LogRecord::ClrPopVersion {
                tree,
                page,
                key,
                undo_next,
            } => {
                w.u8(K_CLR_POP_VERSION)
                    .u32(tree.0)
                    .u32(page.0)
                    .u64(undo_next.0)
                    .bytes(key);
            }
            LogRecord::InsertRecord {
                tree,
                page,
                key,
                data,
            } => {
                w.u8(K_INSERT)
                    .u32(tree.0)
                    .u32(page.0)
                    .bytes(key)
                    .bytes(data);
            }
            LogRecord::UpdateRecord {
                tree,
                page,
                key,
                old,
                new,
            } => {
                w.u8(K_UPDATE)
                    .u32(tree.0)
                    .u32(page.0)
                    .bytes(key)
                    .bytes(old)
                    .bytes(new);
            }
            LogRecord::DeleteRecord {
                tree,
                page,
                key,
                old,
            } => {
                w.u8(K_DELETE).u32(tree.0).u32(page.0).bytes(key).bytes(old);
            }
            LogRecord::ClrDeleteRecord {
                tree,
                page,
                key,
                undo_next,
            } => {
                w.u8(K_CLR_DELETE)
                    .u32(tree.0)
                    .u32(page.0)
                    .u64(undo_next.0)
                    .bytes(key);
            }
            LogRecord::ClrUpdateRecord {
                tree,
                page,
                key,
                data,
                undo_next,
            } => {
                w.u8(K_CLR_UPDATE)
                    .u32(tree.0)
                    .u32(page.0)
                    .u64(undo_next.0)
                    .bytes(key)
                    .bytes(data);
            }
            LogRecord::ClrInsertRecord {
                tree,
                page,
                key,
                data,
                undo_next,
            } => {
                w.u8(K_CLR_INSERT)
                    .u32(tree.0)
                    .u32(page.0)
                    .u64(undo_next.0)
                    .bytes(key)
                    .bytes(data);
            }
            LogRecord::EagerStamp {
                tree,
                page,
                key,
                ts,
            } => {
                w.u8(K_EAGER_STAMP)
                    .u32(tree.0)
                    .u32(page.0)
                    .u64(ts.ttime)
                    .u32(ts.sn)
                    .bytes(key);
            }
            LogRecord::PageImages { pages } => {
                w.u8(K_PAGE_IMAGES).u32(pages.len() as u32);
                for (id, img) in pages {
                    w.u32(id.0).bytes(img);
                }
            }
            LogRecord::CheckpointBegin => {
                w.u8(K_CKPT_BEGIN);
            }
            LogRecord::CheckpointEnd { att, dpt } => {
                w.u8(K_CKPT_END).u32(att.len() as u32);
                for (tid, lsn) in att {
                    w.u64(tid.0).u64(lsn.0);
                }
                w.u32(dpt.len() as u32);
                for (page, lsn) in dpt {
                    w.u32(page.0).u64(lsn.0);
                }
            }
        }
        w.finish()
    }

    pub fn decode(buf: &[u8]) -> Result<LogRecord> {
        let mut r = Reader::new(buf);
        let kind = r.u8()?;
        let rec = match kind {
            K_BEGIN => LogRecord::Begin,
            K_COMMIT => LogRecord::Commit {
                ts: Timestamp::new(r.u64()?, r.u32()?),
            },
            K_ABORT => LogRecord::Abort,
            K_END => LogRecord::End,
            K_ADD_VERSION => {
                let tree = TreeId(r.u32()?);
                let page = PageId(r.u32()?);
                let stub = r.u8()? != 0;
                let key = r.bytes()?.to_vec();
                let data = r.bytes()?.to_vec();
                LogRecord::AddVersion {
                    tree,
                    page,
                    key,
                    data,
                    stub,
                }
            }
            K_CLR_POP_VERSION => LogRecord::ClrPopVersion {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                undo_next: Lsn(r.u64()?),
                key: r.bytes()?.to_vec(),
            },
            K_INSERT => LogRecord::InsertRecord {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                key: r.bytes()?.to_vec(),
                data: r.bytes()?.to_vec(),
            },
            K_UPDATE => LogRecord::UpdateRecord {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                key: r.bytes()?.to_vec(),
                old: r.bytes()?.to_vec(),
                new: r.bytes()?.to_vec(),
            },
            K_DELETE => LogRecord::DeleteRecord {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                key: r.bytes()?.to_vec(),
                old: r.bytes()?.to_vec(),
            },
            K_CLR_DELETE => LogRecord::ClrDeleteRecord {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                undo_next: Lsn(r.u64()?),
                key: r.bytes()?.to_vec(),
            },
            K_CLR_UPDATE => LogRecord::ClrUpdateRecord {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                undo_next: Lsn(r.u64()?),
                key: r.bytes()?.to_vec(),
                data: r.bytes()?.to_vec(),
            },
            K_CLR_INSERT => LogRecord::ClrInsertRecord {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                undo_next: Lsn(r.u64()?),
                key: r.bytes()?.to_vec(),
                data: r.bytes()?.to_vec(),
            },
            K_EAGER_STAMP => LogRecord::EagerStamp {
                tree: TreeId(r.u32()?),
                page: PageId(r.u32()?),
                ts: Timestamp::new(r.u64()?, r.u32()?),
                key: r.bytes()?.to_vec(),
            },
            K_PAGE_IMAGES => {
                let n = r.u32()? as usize;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    let id = PageId(r.u32()?);
                    pages.push((id, r.bytes()?.to_vec()));
                }
                LogRecord::PageImages { pages }
            }
            K_CKPT_BEGIN => LogRecord::CheckpointBegin,
            K_CKPT_END => {
                let n = r.u32()? as usize;
                let mut att = Vec::with_capacity(n);
                for _ in 0..n {
                    att.push((Tid(r.u64()?), Lsn(r.u64()?)));
                }
                let m = r.u32()? as usize;
                let mut dpt = Vec::with_capacity(m);
                for _ in 0..m {
                    dpt.push((PageId(r.u32()?), Lsn(r.u64()?)));
                }
                LogRecord::CheckpointEnd { att, dpt }
            }
            other => {
                return Err(Error::Corruption(format!(
                    "unknown log record kind {other}"
                )));
            }
        };
        r.expect_end()?;
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: LogRecord) {
        let enc = rec.encode();
        let dec = LogRecord::decode(&enc).unwrap();
        assert_eq!(rec, dec);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(LogRecord::Begin);
        roundtrip(LogRecord::Commit {
            ts: Timestamp::new(12345, 9),
        });
        roundtrip(LogRecord::Abort);
        roundtrip(LogRecord::End);
        roundtrip(LogRecord::AddVersion {
            tree: TreeId(3),
            page: PageId(17),
            key: b"key".to_vec(),
            data: b"value".to_vec(),
            stub: true,
        });
        roundtrip(LogRecord::ClrPopVersion {
            tree: TreeId(3),
            page: PageId(17),
            key: b"key".to_vec(),
            undo_next: Lsn(42),
        });
        roundtrip(LogRecord::InsertRecord {
            tree: TreeId(1),
            page: PageId(2),
            key: b"k".to_vec(),
            data: b"d".to_vec(),
        });
        roundtrip(LogRecord::UpdateRecord {
            tree: TreeId(1),
            page: PageId(2),
            key: b"k".to_vec(),
            old: b"o".to_vec(),
            new: b"n".to_vec(),
        });
        roundtrip(LogRecord::DeleteRecord {
            tree: TreeId(1),
            page: PageId(2),
            key: b"k".to_vec(),
            old: b"o".to_vec(),
        });
        roundtrip(LogRecord::ClrDeleteRecord {
            tree: TreeId(1),
            page: PageId(2),
            key: b"k".to_vec(),
            undo_next: Lsn(1),
        });
        roundtrip(LogRecord::ClrUpdateRecord {
            tree: TreeId(1),
            page: PageId(2),
            key: b"k".to_vec(),
            data: b"o".to_vec(),
            undo_next: Lsn(1),
        });
        roundtrip(LogRecord::ClrInsertRecord {
            tree: TreeId(1),
            page: PageId(2),
            key: b"k".to_vec(),
            data: b"o".to_vec(),
            undo_next: Lsn(1),
        });
        roundtrip(LogRecord::EagerStamp {
            tree: TreeId(2),
            page: PageId(4),
            key: b"ek".to_vec(),
            ts: Timestamp::new(80, 3),
        });
        roundtrip(LogRecord::PageImages {
            pages: vec![(PageId(5), vec![1, 2, 3]), (PageId(6), vec![4, 5])],
        });
        roundtrip(LogRecord::CheckpointBegin);
        roundtrip(LogRecord::CheckpointEnd {
            att: vec![(Tid(1), Lsn(10)), (Tid(2), Lsn(20))],
            dpt: vec![(PageId(3), Lsn(5))],
        });
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(LogRecord::decode(&[200]).is_err());
        assert!(LogRecord::decode(&[]).is_err());
        // Trailing bytes rejected.
        let mut enc = LogRecord::Begin.encode();
        enc.push(0);
        assert!(LogRecord::decode(&enc).is_err());
    }

    #[test]
    fn clr_classification() {
        let clr = LogRecord::ClrPopVersion {
            tree: TreeId(1),
            page: PageId(1),
            key: vec![],
            undo_next: Lsn(7),
        };
        assert!(clr.is_clr());
        assert_eq!(clr.undo_next(), Some(Lsn(7)));
        assert!(!LogRecord::Begin.is_clr());
        assert_eq!(LogRecord::Begin.undo_next(), None);
    }

    #[test]
    fn target_page_classification() {
        let rec = LogRecord::AddVersion {
            tree: TreeId(1),
            page: PageId(8),
            key: vec![1],
            data: vec![],
            stub: false,
        };
        assert_eq!(rec.target_page(), Some(PageId(8)));
        assert_eq!(LogRecord::CheckpointBegin.target_page(), None);
        // PageImages applies to many pages; handled specially.
        let imgs = LogRecord::PageImages { pages: vec![] };
        assert_eq!(imgs.target_page(), None);
    }
}
