//! Meta page (page 0): database bootstrap information.
//!
//! The meta page holds the tree directory — the stable `TreeId -> root
//! PageId` mapping that lets logical undo re-descend a tree even after its
//! root has moved — plus high-water marks (max assigned TID, last issued
//! timestamp) persisted at checkpoints so identifier monotonicity survives
//! restarts.
//!
//! The meta page travels through the buffer pool like any other page, and
//! structure modifications that change roots include its image in their
//! atomic multi-page image log record.

use immortaldb_common::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use immortaldb_common::{Error, PageId, Result, Tid, Timestamp, TreeId, PAGE_SIZE};

use crate::page::{Page, PageType, HEADER_SIZE};

const MAGIC: u64 = 0x494D_4D4F_5254_4C44; // "IMMORTLD"
const FORMAT_VERSION: u16 = 1;

const OFF_MAGIC: usize = HEADER_SIZE;
const OFF_VERSION: usize = HEADER_SIZE + 8;
const OFF_MAX_TID: usize = HEADER_SIZE + 10;
const OFF_LAST_TTIME: usize = HEADER_SIZE + 18;
const OFF_LAST_SN: usize = HEADER_SIZE + 26;
const OFF_TREE_COUNT: usize = HEADER_SIZE + 30;
const OFF_ENTRIES: usize = HEADER_SIZE + 34;
const ENTRY_SIZE: usize = 8; // tree_id u32 + root u32

/// Maximum number of trees the directory can hold.
pub const MAX_TREES: usize = (PAGE_SIZE - OFF_ENTRIES) / ENTRY_SIZE;

/// Typed view over the meta page.
pub struct MetaView;

impl MetaView {
    /// Format a fresh meta page.
    pub fn init(page: &mut Page) {
        page.format(PageId(0), PageType::Meta, 0, 0);
        let b = page.as_bytes_mut();
        put_u64(b, OFF_MAGIC, MAGIC);
        put_u16(b, OFF_VERSION, FORMAT_VERSION);
        put_u64(b, OFF_MAX_TID, 0);
        put_u64(b, OFF_LAST_TTIME, 0);
        put_u32(b, OFF_LAST_SN, 0);
        put_u32(b, OFF_TREE_COUNT, 0);
    }

    /// Validate magic and format version.
    pub fn validate(page: &Page) -> Result<()> {
        let b = page.as_bytes();
        if get_u64(b, OFF_MAGIC) != MAGIC {
            return Err(Error::Corruption("meta page magic mismatch".into()));
        }
        let v = get_u16(b, OFF_VERSION);
        if v != FORMAT_VERSION {
            return Err(Error::Corruption(format!("unsupported format version {v}")));
        }
        Ok(())
    }

    pub fn max_tid(page: &Page) -> Tid {
        Tid(get_u64(page.as_bytes(), OFF_MAX_TID))
    }

    pub fn set_max_tid(page: &mut Page, tid: Tid) {
        put_u64(page.as_bytes_mut(), OFF_MAX_TID, tid.0);
    }

    /// Last issued commit timestamp persisted at the most recent
    /// checkpoint; the clock must not issue anything ≤ this after restart.
    pub fn last_timestamp(page: &Page) -> Timestamp {
        let b = page.as_bytes();
        Timestamp {
            ttime: get_u64(b, OFF_LAST_TTIME),
            sn: get_u32(b, OFF_LAST_SN),
        }
    }

    pub fn set_last_timestamp(page: &mut Page, ts: Timestamp) {
        let b = page.as_bytes_mut();
        put_u64(b, OFF_LAST_TTIME, ts.ttime);
        put_u32(b, OFF_LAST_SN, ts.sn);
    }

    fn tree_count(page: &Page) -> usize {
        get_u32(page.as_bytes(), OFF_TREE_COUNT) as usize
    }

    fn entry(page: &Page, i: usize) -> (TreeId, PageId) {
        let b = page.as_bytes();
        let off = OFF_ENTRIES + i * ENTRY_SIZE;
        (TreeId(get_u32(b, off)), PageId(get_u32(b, off + 4)))
    }

    /// Root page of `tree`, if registered.
    pub fn tree_root(page: &Page, tree: TreeId) -> Option<PageId> {
        (0..Self::tree_count(page))
            .map(|i| Self::entry(page, i))
            .find(|(t, _)| *t == tree)
            .map(|(_, r)| r)
    }

    /// Register or update the root of `tree`.
    pub fn set_tree_root(page: &mut Page, tree: TreeId, root: PageId) -> Result<()> {
        let n = Self::tree_count(page);
        for i in 0..n {
            if Self::entry(page, i).0 == tree {
                let off = OFF_ENTRIES + i * ENTRY_SIZE + 4;
                put_u32(page.as_bytes_mut(), off, root.0);
                return Ok(());
            }
        }
        if n >= MAX_TREES {
            return Err(Error::Catalog(format!("tree directory full ({MAX_TREES})")));
        }
        let off = OFF_ENTRIES + n * ENTRY_SIZE;
        let b = page.as_bytes_mut();
        put_u32(b, off, tree.0);
        put_u32(b, off + 4, root.0);
        put_u32(b, OFF_TREE_COUNT, (n + 1) as u32);
        Ok(())
    }

    /// All registered trees.
    pub fn trees(page: &Page) -> Vec<(TreeId, PageId)> {
        (0..Self::tree_count(page))
            .map(|i| Self::entry(page, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_and_validate() {
        let mut p = Page::zeroed();
        MetaView::init(&mut p);
        MetaView::validate(&p).unwrap();
        assert_eq!(MetaView::max_tid(&p), Tid(0));
        assert_eq!(MetaView::last_timestamp(&p), Timestamp::ZERO);
        assert!(MetaView::trees(&p).is_empty());
    }

    #[test]
    fn validate_rejects_garbage() {
        let p = Page::zeroed();
        assert!(MetaView::validate(&p).is_err());
    }

    #[test]
    fn tree_directory_roundtrip() {
        let mut p = Page::zeroed();
        MetaView::init(&mut p);
        MetaView::set_tree_root(&mut p, TreeId(5), PageId(10)).unwrap();
        MetaView::set_tree_root(&mut p, TreeId(7), PageId(20)).unwrap();
        assert_eq!(MetaView::tree_root(&p, TreeId(5)), Some(PageId(10)));
        assert_eq!(MetaView::tree_root(&p, TreeId(7)), Some(PageId(20)));
        assert_eq!(MetaView::tree_root(&p, TreeId(9)), None);
        // Update in place.
        MetaView::set_tree_root(&mut p, TreeId(5), PageId(99)).unwrap();
        assert_eq!(MetaView::tree_root(&p, TreeId(5)), Some(PageId(99)));
        assert_eq!(MetaView::trees(&p).len(), 2);
    }

    #[test]
    fn watermarks_roundtrip() {
        let mut p = Page::zeroed();
        MetaView::init(&mut p);
        MetaView::set_max_tid(&mut p, Tid(123));
        MetaView::set_last_timestamp(&mut p, Timestamp::new(400, 7));
        assert_eq!(MetaView::max_tid(&p), Tid(123));
        assert_eq!(MetaView::last_timestamp(&p), Timestamp::new(400, 7));
    }

    #[test]
    fn directory_capacity_enforced() {
        let mut p = Page::zeroed();
        MetaView::init(&mut p);
        for i in 0..MAX_TREES {
            MetaView::set_tree_root(&mut p, TreeId(i as u32 + 1), PageId(1)).unwrap();
        }
        assert!(MetaView::set_tree_root(&mut p, TreeId(100_000), PageId(1)).is_err());
    }
}
