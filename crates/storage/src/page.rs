//! Slotted page layout (§3.2 of the paper).
//!
//! Every page is [`PAGE_SIZE`] bytes: a fixed header, a record heap
//! growing upward from the header, and a slot array growing downward from
//! the page end. Slots are kept sorted by the key of the record they point
//! at, so lookups are binary searches. For versioned (transaction-time)
//! pages a slot points at the *newest* version of its record; older
//! versions are reachable only through the intra-page version chain
//! (see [`crate::version`]).
//!
//! The header carries the two fields Immortal DB adds to the conventional
//! page header: the **history pointer** (page holding versions that once
//! lived here) and the **split time** (start of this page's time range),
//! plus the end of the time range for historical pages.

use immortaldb_common::codec::{get_u16, get_u32, get_u64, put_u16, put_u32, put_u64};
use immortaldb_common::time::SN_TID_MARK;
use immortaldb_common::{Error, Lsn, PageId, Result, Tid, Timestamp, PAGE_SIZE, VERSION_TAIL};

/// Size of the fixed page header in bytes.
pub const HEADER_SIZE: usize = 64;

/// Per-record header preceding the key bytes: `key_len:u16 | data_len:u16
/// | flags:u8`.
pub const REC_HDR: usize = 5;

// Header field offsets.
const OFF_TYPE: usize = 0;
const OFF_FLAGS: usize = 1;
const OFF_LEVEL: usize = 2;
const OFF_PAGE_ID: usize = 4;
const OFF_LSN: usize = 8;
const OFF_SLOT_COUNT: usize = 16;
const OFF_FREE_LOWER: usize = 18;
const OFF_FRAG: usize = 20;
const OFF_HISTORY: usize = 24;
const OFF_NEXT_LEAF: usize = 28;
const OFF_START_TTIME: usize = 32;
const OFF_START_SN: usize = 40;
const OFF_END_TTIME: usize = 44;
const OFF_END_SN: usize = 52;
/// Whole-page CRC, stamped by the disk manager on write and verified on
/// read (the field itself is zeroed while computing). In-memory pages
/// leave it zero. 4 bytes follow as reserved header space.
const OFF_CRC: usize = 56;

/// Page flags.
pub const FLAG_HISTORICAL: u8 = 0b0000_0001;
/// Set on leaf pages of transaction-time (or snapshot-enabled) tables:
/// records carry the 14-byte version tail.
pub const FLAG_VERSIONED: u8 = 0b0000_0010;

/// Record flags.
pub const RFLAG_DELETE_STUB: u8 = 0b0000_0001;
/// The record was logically removed (e.g. popped by transaction rollback)
/// and its bytes await compaction.
pub const RFLAG_DEAD: u8 = 0b0000_0010;
/// The record's data is a prefix/suffix delta against the next *newer*
/// version of the same chain (its walk-order predecessor), not a full
/// image. Only ever set on non-head records of historical pages; delta
/// records store no key bytes (`key_len == 0`). See
/// [`crate::version::apply_delta`].
pub const RFLAG_DELTA: u8 = 0b0000_0100;

/// What a page is used for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageType {
    /// Page 0: database metadata (tree directory, bootstrap info).
    Meta,
    /// B-tree leaf holding data records (current or historical).
    Leaf,
    /// B-tree internal node holding (separator key, child) entries.
    Index,
    /// Allocated but unused.
    Free,
}

impl PageType {
    fn to_u8(self) -> u8 {
        match self {
            PageType::Meta => 0,
            PageType::Leaf => 1,
            PageType::Index => 2,
            PageType::Free => 3,
        }
    }

    fn from_u8(v: u8) -> Result<PageType> {
        Ok(match v {
            0 => PageType::Meta,
            1 => PageType::Leaf,
            2 => PageType::Index,
            3 => PageType::Free,
            other => return Err(Error::Corruption(format!("unknown page type {other}"))),
        })
    }
}

/// An in-memory page image. Always exactly [`PAGE_SIZE`] bytes.
///
/// The byte array is stored inline (not boxed) so that a whole-struct
/// assignment (`*guard = new_page`) rewrites bytes in place instead of
/// swapping heap allocations — a stability requirement for the buffer
/// pool's optimistic (seqlock-style) readers, which may race a copy of
/// the frame's page image against a writer and rely on version
/// validation (not pointer liveness) to discard torn copies.
#[derive(Clone)]
pub struct Page {
    bytes: [u8; PAGE_SIZE],
}

impl Page {
    /// A zeroed page (type `Meta`/0 until formatted).
    pub fn zeroed() -> Page {
        Page {
            bytes: [0u8; PAGE_SIZE],
        }
    }

    /// Build a page from raw disk bytes.
    pub fn from_bytes(src: &[u8]) -> Result<Page> {
        if src.len() != PAGE_SIZE {
            return Err(Error::Corruption(format!(
                "page image of {} bytes (expected {PAGE_SIZE})",
                src.len()
            )));
        }
        let mut p = Page::zeroed();
        p.bytes.copy_from_slice(src);
        Ok(p)
    }

    /// Format this page as a fresh, empty page of the given type.
    pub fn format(&mut self, id: PageId, ptype: PageType, flags: u8, level: u16) {
        self.bytes.fill(0);
        self.bytes[OFF_TYPE] = ptype.to_u8();
        self.bytes[OFF_FLAGS] = flags;
        put_u16(&mut self.bytes[..], OFF_LEVEL, level);
        put_u32(&mut self.bytes[..], OFF_PAGE_ID, id.0);
        put_u16(&mut self.bytes[..], OFF_FREE_LOWER, HEADER_SIZE as u16);
        self.set_end_ts(Timestamp::MAX);
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..]
    }

    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[..]
    }

    // -- header accessors ------------------------------------------------

    pub fn page_type(&self) -> Result<PageType> {
        PageType::from_u8(self.bytes[OFF_TYPE])
    }

    pub fn flags(&self) -> u8 {
        self.bytes[OFF_FLAGS]
    }

    pub fn set_flags(&mut self, flags: u8) {
        self.bytes[OFF_FLAGS] = flags;
    }

    pub fn is_historical(&self) -> bool {
        self.flags() & FLAG_HISTORICAL != 0
    }

    pub fn is_versioned(&self) -> bool {
        self.flags() & FLAG_VERSIONED != 0
    }

    /// Tree level: 0 for leaves, >0 for index nodes.
    pub fn level(&self) -> u16 {
        get_u16(&self.bytes[..], OFF_LEVEL)
    }

    pub fn page_id(&self) -> PageId {
        PageId(get_u32(&self.bytes[..], OFF_PAGE_ID))
    }

    pub fn page_lsn(&self) -> Lsn {
        Lsn(get_u64(&self.bytes[..], OFF_LSN))
    }

    pub fn set_page_lsn(&mut self, lsn: Lsn) {
        put_u64(&mut self.bytes[..], OFF_LSN, lsn.0);
    }

    pub fn slot_count(&self) -> usize {
        get_u16(&self.bytes[..], OFF_SLOT_COUNT) as usize
    }

    fn set_slot_count(&mut self, n: usize) {
        put_u16(&mut self.bytes[..], OFF_SLOT_COUNT, n as u16);
    }

    /// First free byte of the record heap.
    pub fn free_lower(&self) -> usize {
        get_u16(&self.bytes[..], OFF_FREE_LOWER) as usize
    }

    fn set_free_lower(&mut self, v: usize) {
        put_u16(&mut self.bytes[..], OFF_FREE_LOWER, v as u16);
    }

    /// Bytes occupied by dead records, reclaimable by [`Self::compact`].
    pub fn frag_space(&self) -> usize {
        get_u16(&self.bytes[..], OFF_FRAG) as usize
    }

    pub(crate) fn add_frag(&mut self, n: usize) {
        let v = self.frag_space() + n;
        put_u16(&mut self.bytes[..], OFF_FRAG, v as u16);
    }

    fn set_frag(&mut self, n: usize) {
        put_u16(&mut self.bytes[..], OFF_FRAG, n as u16);
    }

    /// The history pointer: page holding versions that previously lived in
    /// this page's key range (next link of the time-split chain).
    pub fn history_page(&self) -> PageId {
        PageId(get_u32(&self.bytes[..], OFF_HISTORY))
    }

    pub fn set_history_page(&mut self, p: PageId) {
        put_u32(&mut self.bytes[..], OFF_HISTORY, p.0);
    }

    /// Right sibling for leaf scans (current pages only).
    pub fn next_leaf(&self) -> PageId {
        PageId(get_u32(&self.bytes[..], OFF_NEXT_LEAF))
    }

    pub fn set_next_leaf(&mut self, p: PageId) {
        put_u32(&mut self.bytes[..], OFF_NEXT_LEAF, p.0);
    }

    /// Start of this page's time range (the paper's "split time" header
    /// field). Versions living in this page all have lifetimes
    /// intersecting `[start_ts, end_ts)`.
    pub fn start_ts(&self) -> Timestamp {
        Timestamp {
            ttime: get_u64(&self.bytes[..], OFF_START_TTIME),
            sn: get_u32(&self.bytes[..], OFF_START_SN),
        }
    }

    pub fn set_start_ts(&mut self, ts: Timestamp) {
        put_u64(&mut self.bytes[..], OFF_START_TTIME, ts.ttime);
        put_u32(&mut self.bytes[..], OFF_START_SN, ts.sn);
    }

    /// End of this page's time range: `Timestamp::MAX` for current pages,
    /// the split time for historical pages.
    pub fn end_ts(&self) -> Timestamp {
        Timestamp {
            ttime: get_u64(&self.bytes[..], OFF_END_TTIME),
            sn: get_u32(&self.bytes[..], OFF_END_SN),
        }
    }

    pub fn set_end_ts(&mut self, ts: Timestamp) {
        put_u64(&mut self.bytes[..], OFF_END_TTIME, ts.ttime);
        put_u32(&mut self.bytes[..], OFF_END_SN, ts.sn);
    }

    // -- slot array -------------------------------------------------------

    /// Heap offset stored in slot `i`.
    pub fn slot(&self, i: usize) -> usize {
        debug_assert!(i < self.slot_count());
        get_u16(&self.bytes[..], PAGE_SIZE - 2 * (i + 1)) as usize
    }

    pub fn set_slot(&mut self, i: usize, off: usize) {
        debug_assert!(i < self.slot_count());
        put_u16(&mut self.bytes[..], PAGE_SIZE - 2 * (i + 1), off as u16);
    }

    /// Insert a new slot at index `i`, shifting later slots down.
    fn insert_slot(&mut self, i: usize, off: usize) {
        let n = self.slot_count();
        debug_assert!(i <= n);
        // Slot j lives at PAGE_SIZE - 2*(j+1); shifting "later" slots means
        // moving bytes of slots i..n two bytes lower in memory.
        let lo = PAGE_SIZE - 2 * (n + 1);
        let hi = PAGE_SIZE - 2 * i;
        self.bytes.copy_within(lo + 2..hi, lo);
        self.set_slot_count(n + 1);
        self.set_slot(i, off);
    }

    /// Add a slot at position `pos` pointing at an already allocated
    /// record (used when rebuilding chains during splits).
    pub(crate) fn add_slot_for(&mut self, pos: usize, off: usize) {
        self.insert_slot(pos, off);
    }

    /// Remove slot `i`, shifting later slots up.
    pub(crate) fn remove_slot(&mut self, i: usize) {
        let n = self.slot_count();
        debug_assert!(i < n);
        let lo = PAGE_SIZE - 2 * n;
        let hi = PAGE_SIZE - 2 * (i + 1);
        self.bytes.copy_within(lo..hi, lo + 2);
        self.set_slot_count(n - 1);
    }

    /// Contiguous free space between the heap and the slot array.
    pub fn contiguous_free(&self) -> usize {
        let slot_end = PAGE_SIZE - 2 * self.slot_count();
        slot_end.saturating_sub(self.free_lower())
    }

    /// Free space counting fragmentation (available after compaction).
    pub fn total_free(&self) -> usize {
        self.contiguous_free() + self.frag_space()
    }

    /// Fraction of the usable area occupied by live data (used to decide
    /// whether a time split should be followed by a key split).
    pub fn utilization(&self) -> f64 {
        let usable = (PAGE_SIZE - HEADER_SIZE) as f64;
        let used = usable - self.total_free() as f64;
        used / usable
    }

    // -- record access ----------------------------------------------------

    fn rec_key_len(&self, off: usize) -> usize {
        get_u16(&self.bytes[..], off) as usize
    }

    fn rec_data_len(&self, off: usize) -> usize {
        get_u16(&self.bytes[..], off + 2) as usize
    }

    pub fn rec_flags(&self, off: usize) -> u8 {
        self.bytes[off + 4]
    }

    pub fn set_rec_flags(&mut self, off: usize, flags: u8) {
        self.bytes[off + 4] = flags;
    }

    pub fn rec_is_stub(&self, off: usize) -> bool {
        self.rec_flags(off) & RFLAG_DELETE_STUB != 0
    }

    pub fn rec_is_delta(&self, off: usize) -> bool {
        self.rec_flags(off) & RFLAG_DELTA != 0
    }

    pub fn rec_key(&self, off: usize) -> &[u8] {
        let kl = self.rec_key_len(off);
        &self.bytes[off + REC_HDR..off + REC_HDR + kl]
    }

    pub fn rec_data(&self, off: usize) -> &[u8] {
        let kl = self.rec_key_len(off);
        let dl = self.rec_data_len(off);
        &self.bytes[off + REC_HDR + kl..off + REC_HDR + kl + dl]
    }

    /// Total on-page size of the record at `off` (accounts for the version
    /// tail iff this page is versioned).
    pub fn rec_size(&self, off: usize) -> usize {
        let tail = if self.is_versioned() { VERSION_TAIL } else { 0 };
        REC_HDR + self.rec_key_len(off) + self.rec_data_len(off) + tail
    }

    fn tail_off(&self, off: usize) -> usize {
        debug_assert!(self.is_versioned(), "version tail on unversioned page");
        off + REC_HDR + self.rec_key_len(off) + self.rec_data_len(off)
    }

    /// Version pointer: heap offset of the previous version of this record
    /// in the same page (0 = none).
    pub fn rec_vp(&self, off: usize) -> usize {
        let t = self.tail_off(off);
        get_u16(&self.bytes[..], t) as usize
    }

    pub fn set_rec_vp(&mut self, off: usize, vp: usize) {
        let t = self.tail_off(off);
        put_u16(&mut self.bytes[..], t, vp as u16);
    }

    /// Raw Ttime field (commit time, or the TID for non-timestamped
    /// records).
    pub fn rec_ttime(&self, off: usize) -> u64 {
        let t = self.tail_off(off);
        get_u64(&self.bytes[..], t + 2)
    }

    /// Raw SN field ([`SN_TID_MARK`] marks a non-timestamped record).
    pub fn rec_sn(&self, off: usize) -> u32 {
        let t = self.tail_off(off);
        get_u32(&self.bytes[..], t + 10)
    }

    /// Whether the record still carries a TID instead of a timestamp.
    pub fn rec_is_tid_marked(&self, off: usize) -> bool {
        self.rec_sn(off) == SN_TID_MARK
    }

    /// The TID of a non-timestamped record.
    pub fn rec_tid(&self, off: usize) -> Tid {
        debug_assert!(self.rec_is_tid_marked(off));
        Tid(self.rec_ttime(off))
    }

    /// The commit timestamp of a timestamped record.
    pub fn rec_timestamp(&self, off: usize) -> Timestamp {
        debug_assert!(!self.rec_is_tid_marked(off));
        Timestamp {
            ttime: self.rec_ttime(off),
            sn: self.rec_sn(off),
        }
    }

    /// Mark the record with the updating transaction's TID (stage II of
    /// the timestamping protocol).
    pub fn mark_rec_tid(&mut self, off: usize, tid: Tid) {
        let t = self.tail_off(off);
        put_u64(&mut self.bytes[..], t + 2, tid.0);
        put_u32(&mut self.bytes[..], t + 10, SN_TID_MARK);
    }

    /// Replace the TID with the transaction's timestamp (stage IV). This
    /// mutation is deliberately *not* logged (§2.2).
    pub fn stamp_rec(&mut self, off: usize, ts: Timestamp) {
        let t = self.tail_off(off);
        put_u64(&mut self.bytes[..], t + 2, ts.ttime);
        put_u32(&mut self.bytes[..], t + 10, ts.sn);
    }

    /// Copy a raw `(Ttime, SN)` tail verbatim — committed stamp or TID
    /// mark alike (chain rebuilds during packing must not reinterpret).
    pub(crate) fn set_rec_tail_raw(&mut self, off: usize, ttime: u64, sn: u32) {
        let t = self.tail_off(off);
        put_u64(&mut self.bytes[..], t + 2, ttime);
        put_u32(&mut self.bytes[..], t + 10, sn);
    }

    // -- heap allocation ---------------------------------------------------

    /// Append record bytes to the heap (no slot bookkeeping). Returns the
    /// record's heap offset, or [`Error::PageFull`].
    pub(crate) fn alloc_record(
        &mut self,
        key: &[u8],
        data: &[u8],
        rflags: u8,
        need_slot: bool,
    ) -> Result<usize> {
        let tail = if self.is_versioned() { VERSION_TAIL } else { 0 };
        let size = REC_HDR + key.len() + data.len() + tail;
        let slot_cost = if need_slot { 2 } else { 0 };
        if size + slot_cost > self.contiguous_free() {
            return Err(Error::PageFull);
        }
        let off = self.free_lower();
        put_u16(&mut self.bytes[..], off, key.len() as u16);
        put_u16(&mut self.bytes[..], off + 2, data.len() as u16);
        self.bytes[off + 4] = rflags;
        self.bytes[off + REC_HDR..off + REC_HDR + key.len()].copy_from_slice(key);
        self.bytes[off + REC_HDR + key.len()..off + REC_HDR + key.len() + data.len()]
            .copy_from_slice(data);
        if tail != 0 {
            // Zero the version tail; callers set VP/Ttime/SN explicitly.
            let t = off + REC_HDR + key.len() + data.len();
            self.bytes[t..t + VERSION_TAIL].fill(0);
        }
        self.set_free_lower(off + size);
        Ok(off)
    }

    // -- sorted record operations (index pages, unversioned leaves) --------

    /// Binary search the slot array for `key`. `Ok(i)` = slot `i` holds
    /// `key`; `Err(i)` = `key` belongs at slot position `i`.
    pub fn find_slot(&self, key: &[u8]) -> std::result::Result<usize, usize> {
        let n = self.slot_count();
        let mut lo = 0usize;
        let mut hi = n;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let k = self.rec_key(self.slot(mid));
            match k.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Insert `(key, data)` keeping slots sorted. Fails with
    /// [`Error::DuplicateKey`] if the key is present, [`Error::PageFull`]
    /// if there is no room.
    pub fn insert_sorted(&mut self, key: &[u8], data: &[u8], rflags: u8) -> Result<usize> {
        let pos = match self.find_slot(key) {
            Ok(_) => return Err(Error::DuplicateKey),
            Err(pos) => pos,
        };
        let off = self.alloc_record(key, data, rflags, true)?;
        self.insert_slot(pos, off);
        Ok(off)
    }

    /// Insert `(key, data)` keeping slots sorted, *allowing duplicate
    /// keys* (TSB-tree index nodes hold several time-slice entries per
    /// key boundary). A duplicate is inserted before its equals.
    pub fn insert_sorted_dup(&mut self, key: &[u8], data: &[u8], rflags: u8) -> Result<usize> {
        let pos = match self.find_slot(key) {
            Ok(pos) | Err(pos) => pos,
        };
        let off = self.alloc_record(key, data, rflags, true)?;
        self.insert_slot(pos, off);
        Ok(off)
    }

    /// Remove the record at slot `i` (marks the record dead and drops the
    /// slot).
    pub fn remove_record_at(&mut self, i: usize) {
        let off = self.slot(i);
        let size = self.rec_size(off);
        self.set_rec_flags(off, self.rec_flags(off) | RFLAG_DEAD);
        self.add_frag(size);
        self.remove_slot(i);
    }

    /// Mutable access to the data bytes of the record at `off` (fixed-size
    /// in-place rewrites, e.g. index-entry time ranges).
    pub fn rec_data_mut(&mut self, off: usize) -> &mut [u8] {
        let kl = self.rec_key_len(off);
        let dl = self.rec_data_len(off);
        &mut self.bytes[off + REC_HDR + kl..off + REC_HDR + kl + dl]
    }

    /// Insert allowing the caller to have pre-computed the slot position
    /// (used by versioned chains where the slot may already exist).
    pub(crate) fn insert_at(
        &mut self,
        pos: usize,
        key: &[u8],
        data: &[u8],
        rflags: u8,
    ) -> Result<usize> {
        let off = self.alloc_record(key, data, rflags, true)?;
        self.insert_slot(pos, off);
        Ok(off)
    }

    /// Replace the data of the record for `key` (unversioned pages only).
    /// Reuses the record bytes when the size matches; otherwise removes
    /// the old record and inserts the new one (compacting if necessary —
    /// removing first matters: a dead record still referenced by a slot
    /// would survive compaction and its space could not be counted on).
    pub fn update_sorted(&mut self, key: &[u8], data: &[u8]) -> Result<()> {
        let i = self.find_slot(key).map_err(|_| Error::KeyNotFound)?;
        let off = self.slot(i);
        if self.rec_data_len(off) == data.len() {
            let kl = self.rec_key_len(off);
            self.bytes[off + REC_HDR + kl..off + REC_HDR + kl + data.len()].copy_from_slice(data);
            return Ok(());
        }
        let rflags = self.rec_flags(off);
        let old_size = self.rec_size(off);
        let old_data = self.rec_data(off).to_vec();
        let tail = if self.is_versioned() { VERSION_TAIL } else { 0 };
        let need = REC_HDR + key.len() + data.len() + tail;
        if need > self.contiguous_free() + self.frag_space() + old_size {
            return Err(Error::PageFull);
        }
        // Remove (slot + dead mark) so compaction genuinely reclaims it.
        let size = self.rec_size(off);
        self.set_rec_flags(off, rflags | RFLAG_DEAD);
        self.add_frag(size);
        self.remove_slot(i);
        if need + 2 > self.contiguous_free() {
            self.compact()?;
        }
        match self.insert_sorted(key, data, rflags & !RFLAG_DEAD) {
            Ok(_) => Ok(()),
            Err(e) => {
                // Restore the old record so a failed update is a no-op.
                let _ = self.insert_sorted(key, &old_data, rflags & !RFLAG_DEAD);
                Err(e)
            }
        }
    }

    /// Remove the record for `key` (unversioned pages only).
    pub fn remove_sorted(&mut self, key: &[u8]) -> Result<()> {
        let i = self.find_slot(key).map_err(|_| Error::KeyNotFound)?;
        let off = self.slot(i);
        let size = self.rec_size(off);
        self.set_rec_flags(off, self.rec_flags(off) | RFLAG_DEAD);
        self.add_frag(size);
        self.remove_slot(i);
        Ok(())
    }

    /// Rebuild the heap, dropping dead records and preserving slot order
    /// and version-chain links. Safe on both versioned and unversioned
    /// pages.
    pub fn compact(&mut self) -> Result<()> {
        let versioned = self.is_versioned();
        let mut fresh = Page::zeroed();
        fresh.bytes[..HEADER_SIZE].copy_from_slice(&self.bytes[..HEADER_SIZE]);
        fresh.set_slot_count(0);
        fresh.set_free_lower(HEADER_SIZE);
        fresh.set_frag(0);
        let n = self.slot_count();
        for i in 0..n {
            // Copy the whole chain for this slot, newest first, relinking VPs.
            let mut src = self.slot(i);
            let mut prev_new: Option<usize> = None;
            let mut first_new = 0usize;
            loop {
                let off = fresh.alloc_record(
                    self.rec_key(src),
                    self.rec_data(src),
                    self.rec_flags(src),
                    prev_new.is_none(),
                )?;
                if versioned {
                    // Copy the raw tail (Ttime + SN); VP is relinked below.
                    let t_src = self.tail_off(src);
                    let t_dst = fresh.tail_off(off);
                    fresh.bytes[t_dst + 2..t_dst + VERSION_TAIL]
                        .copy_from_slice(&self.bytes[t_src + 2..t_src + VERSION_TAIL]);
                }
                match prev_new {
                    None => first_new = off,
                    Some(p) => fresh.set_rec_vp(p, off),
                }
                prev_new = Some(off);
                if !versioned {
                    break;
                }
                let vp = self.rec_vp(src);
                if vp == 0 {
                    break;
                }
                src = vp;
            }
            fresh.insert_slot(i, first_new);
        }
        *self = fresh;
        Ok(())
    }
}

/// Stamp the page-image CRC into a raw [`PAGE_SIZE`] buffer about to hit
/// disk. The CRC covers the whole image with the CRC field zeroed.
pub fn stamp_image_crc(buf: &mut [u8]) {
    debug_assert_eq!(buf.len(), PAGE_SIZE);
    put_u32(buf, OFF_CRC, 0);
    let crc = immortaldb_common::codec::crc32(buf);
    put_u32(buf, OFF_CRC, crc);
}

/// Verify the page-image CRC of a raw buffer just read from disk, zeroing
/// the CRC field in place (in-memory pages keep it zero). An all-zero
/// image passes: it is a freshly allocated, never-written page.
pub fn verify_image_crc(buf: &mut [u8]) -> bool {
    debug_assert_eq!(buf.len(), PAGE_SIZE);
    let stored = get_u32(buf, OFF_CRC);
    put_u32(buf, OFF_CRC, 0);
    if stored == 0 && buf.iter().all(|&b| b == 0) {
        return true;
    }
    immortaldb_common::codec::crc32(buf) == stored
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.page_id())
            .field("type", &self.page_type())
            .field("flags", &self.flags())
            .field("slots", &self.slot_count())
            .field("free", &self.contiguous_free())
            .field("start_ts", &self.start_ts())
            .field("end_ts", &self.end_ts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(versioned: bool) -> Page {
        let mut p = Page::zeroed();
        let flags = if versioned { FLAG_VERSIONED } else { 0 };
        p.format(PageId(5), PageType::Leaf, flags, 0);
        p
    }

    #[test]
    fn format_initializes_header() {
        let p = leaf(true);
        assert_eq!(p.page_id(), PageId(5));
        assert_eq!(p.page_type().unwrap(), PageType::Leaf);
        assert!(p.is_versioned());
        assert!(!p.is_historical());
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.free_lower(), HEADER_SIZE);
        assert_eq!(p.end_ts(), Timestamp::MAX);
        assert_eq!(p.start_ts(), Timestamp::ZERO);
    }

    #[test]
    fn insert_sorted_keeps_order() {
        let mut p = leaf(false);
        for k in [b"m", b"a", b"z", b"c"] {
            p.insert_sorted(k, b"v", 0).unwrap();
        }
        let keys: Vec<_> = (0..p.slot_count())
            .map(|i| p.rec_key(p.slot(i)).to_vec())
            .collect();
        assert_eq!(
            keys,
            vec![b"a".to_vec(), b"c".to_vec(), b"m".to_vec(), b"z".to_vec()]
        );
        assert!(matches!(
            p.insert_sorted(b"m", b"v", 0),
            Err(Error::DuplicateKey)
        ));
    }

    #[test]
    fn find_slot_boundaries() {
        let mut p = leaf(false);
        p.insert_sorted(b"b", b"1", 0).unwrap();
        p.insert_sorted(b"d", b"2", 0).unwrap();
        assert_eq!(p.find_slot(b"a"), Err(0));
        assert_eq!(p.find_slot(b"b"), Ok(0));
        assert_eq!(p.find_slot(b"c"), Err(1));
        assert_eq!(p.find_slot(b"d"), Ok(1));
        assert_eq!(p.find_slot(b"e"), Err(2));
    }

    #[test]
    fn update_same_size_in_place() {
        let mut p = leaf(false);
        p.insert_sorted(b"k", b"aaaa", 0).unwrap();
        let before = p.free_lower();
        p.update_sorted(b"k", b"bbbb").unwrap();
        assert_eq!(p.free_lower(), before);
        assert_eq!(p.rec_data(p.slot(0)), b"bbbb");
    }

    #[test]
    fn update_different_size_reallocates() {
        let mut p = leaf(false);
        p.insert_sorted(b"k", b"short", 0).unwrap();
        p.update_sorted(b"k", b"a much longer value").unwrap();
        assert_eq!(p.rec_data(p.slot(0)), b"a much longer value");
        assert!(p.frag_space() > 0);
    }

    #[test]
    fn remove_marks_dead_and_compact_reclaims() {
        let mut p = leaf(false);
        p.insert_sorted(b"a", b"1", 0).unwrap();
        p.insert_sorted(b"b", b"2", 0).unwrap();
        let free_before = p.contiguous_free();
        p.remove_sorted(b"a").unwrap();
        assert_eq!(p.slot_count(), 1);
        assert!(p.frag_space() > 0);
        p.compact().unwrap();
        assert_eq!(p.frag_space(), 0);
        assert!(p.contiguous_free() > free_before);
        assert_eq!(p.rec_key(p.slot(0)), b"b");
    }

    #[test]
    fn fills_up_and_reports_page_full() {
        let mut p = leaf(false);
        let data = vec![0u8; 500];
        let mut n = 0u32;
        loop {
            let key = n.to_be_bytes();
            match p.insert_sorted(&key, &data, 0) {
                Ok(_) => n += 1,
                Err(Error::PageFull) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        assert!(
            n >= 14,
            "8K page should hold at least 14 x 500B records, got {n}"
        );
        assert!(p.contiguous_free() < 510);
    }

    #[test]
    fn version_tail_roundtrip() {
        let mut p = leaf(true);
        let off = p.insert_sorted(b"k", b"v1", 0).unwrap();
        p.mark_rec_tid(off, Tid(42));
        assert!(p.rec_is_tid_marked(off));
        assert_eq!(p.rec_tid(off), Tid(42));
        p.stamp_rec(off, Timestamp::new(100, 3));
        assert!(!p.rec_is_tid_marked(off));
        assert_eq!(p.rec_timestamp(off), Timestamp::new(100, 3));
        p.set_rec_vp(off, 123);
        assert_eq!(p.rec_vp(off), 123);
    }

    #[test]
    fn compact_preserves_version_chains() {
        let mut p = leaf(true);
        // Build a 3-version chain for key "k" by hand.
        let o1 = p.insert_sorted(b"k", b"v1", 0).unwrap();
        p.stamp_rec(o1, Timestamp::new(20, 0));
        let o2 = p.alloc_record(b"k", b"v2", 0, false).unwrap();
        p.set_rec_vp(o2, o1);
        p.stamp_rec(o2, Timestamp::new(40, 0));
        p.set_slot(0, o2);
        let o3 = p.alloc_record(b"k", b"v3", 0, false).unwrap();
        p.set_rec_vp(o3, o2);
        p.mark_rec_tid(o3, Tid(9));
        p.set_slot(0, o3);
        // Add a dead record to create garbage.
        p.insert_sorted(b"zz", b"dead", 0).unwrap();
        p.remove_sorted(b"zz").unwrap();

        p.compact().unwrap();
        assert_eq!(p.slot_count(), 1);
        let newest = p.slot(0);
        assert_eq!(p.rec_data(newest), b"v3");
        assert!(p.rec_is_tid_marked(newest));
        assert_eq!(p.rec_tid(newest), Tid(9));
        let mid = p.rec_vp(newest);
        assert_eq!(p.rec_data(mid), b"v2");
        assert_eq!(p.rec_timestamp(mid), Timestamp::new(40, 0));
        let oldest = p.rec_vp(mid);
        assert_eq!(p.rec_data(oldest), b"v1");
        assert_eq!(p.rec_vp(oldest), 0);
        assert_eq!(p.frag_space(), 0);
    }

    #[test]
    fn clone_and_from_bytes_roundtrip() {
        let mut p = leaf(false);
        p.insert_sorted(b"x", b"y", 0).unwrap();
        let q = Page::from_bytes(p.as_bytes()).unwrap();
        assert_eq!(q.slot_count(), 1);
        assert_eq!(q.rec_key(q.slot(0)), b"x");
        assert!(Page::from_bytes(&[0u8; 100]).is_err());
    }

    #[test]
    fn image_crc_roundtrip_and_detection() {
        let mut p = leaf(false);
        p.insert_sorted(b"k", b"v", 0).unwrap();
        let mut buf = p.as_bytes().to_vec();
        stamp_image_crc(&mut buf);
        assert!(verify_image_crc(&mut buf.clone()));
        // A single flipped byte (torn/corrupt write) is detected.
        let mut torn = buf.clone();
        torn[HEADER_SIZE + 1] ^= 0xFF;
        assert!(!verify_image_crc(&mut torn));
        // A never-written page (all zeroes) passes.
        let mut zero = vec![0u8; PAGE_SIZE];
        assert!(verify_image_crc(&mut zero));
    }

    #[test]
    fn utilization_tracks_fill() {
        let mut p = leaf(false);
        assert!(p.utilization() < 0.01);
        let data = vec![7u8; 1000];
        for k in 0u8..6 {
            p.insert_sorted(&[k], &data, 0).unwrap();
        }
        assert!(p.utilization() > 0.7, "got {}", p.utilization());
    }
}
