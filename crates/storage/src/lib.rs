//! Page-based storage engine substrate for Immortal DB.
//!
//! This crate provides everything below the B-tree: slotted pages with the
//! Immortal DB record/page extensions ([`page`], [`version`]), a disk
//! manager and meta page ([`disk`], [`meta`]), an ARIES-style write-ahead
//! log ([`wal`], [`logrec`]), a buffer pool with a flush hook for lazy
//! timestamping ([`buffer`]), and crash recovery ([`recovery`]).
//!
//! The dependency inversion that makes lazy timestamping work across
//! layers is the [`TimestampResolver`] trait: the storage and B-tree
//! layers call it whenever they encounter a TID-marked record; the
//! transaction manager implements it over the VTT/PTT.

pub mod buffer;
pub mod disk;
pub mod logrec;
pub mod meta;
pub mod page;
pub mod recovery;
pub mod version;
pub mod vfs;
pub mod wal;

use immortaldb_common::{Tid, Timestamp};

/// Maps a transaction id to its commit timestamp, if committed.
///
/// Implemented by the transaction manager over the volatile timestamp
/// table (with persistent-table fallback). Returning `None` means the
/// transaction is still active (or was aborted and its versions are being
/// rolled back), so its versions are invisible and must not be stamped.
pub trait TimestampResolver: Send + Sync {
    /// Commit timestamp of `tid`, or `None` if not (yet) committed.
    fn resolve(&self, tid: Tid) -> Option<Timestamp>;
    /// Notification that `n` record versions of `tid` were just stamped
    /// (drives the VTT reference counts that gate PTT garbage collection).
    fn note_stamped(&self, _tid: Tid, _n: u32) {}
}

/// A resolver that knows nothing — usable before the transaction manager
/// is wired up and in tests.
pub struct NullResolver;

impl TimestampResolver for NullResolver {
    fn resolve(&self, _tid: Tid) -> Option<Timestamp> {
        None
    }
}
