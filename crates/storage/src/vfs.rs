//! Virtual file system seam.
//!
//! Every byte the engine persists — data pages, WAL frames, the recovery
//! master record — flows through the [`Vfs`] / [`VfsFile`] traits instead
//! of `std::fs` directly. Production uses [`StdFs`] (a thin wrapper over
//! positioned `File` I/O); the chaos crate wraps any `Vfs` in a
//! deterministic fault injector to simulate torn writes, failed fsyncs,
//! transient read errors and mid-operation crashes without touching the
//! engine itself.
//!
//! The trait surface is deliberately tiny and positional (`pread`/
//! `pwrite` style): no seek state, so one handle can serve concurrent
//! readers and the writer.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

use immortaldb_common::Result;

/// An open file: positioned reads/writes plus durability control.
pub trait VfsFile: Send + Sync {
    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()>;
    /// Write all of `data` at `offset`.
    fn write_all_at(&self, data: &[u8], offset: u64) -> Result<()>;
    /// Flush file contents to stable storage (`fdatasync`).
    fn sync(&self) -> Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> Result<u64>;
    /// True if the file is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Truncate (or extend with zeroes) to `len` bytes.
    fn set_len(&self, len: u64) -> Result<()>;
}

/// A file system: opens files and provides the whole-file operations the
/// recovery master record needs (atomic replace).
pub trait Vfs: Send + Sync {
    /// Open `path` read-write, creating it if absent (never truncating).
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>>;
    /// Read an entire small file (master record). `Ok(None)` if absent.
    fn read_file(&self, path: &Path) -> Result<Option<Vec<u8>>>;
    /// Atomically replace `path` with `data` (write temp, fsync, rename).
    fn write_file_atomic(&self, path: &Path, data: &[u8]) -> Result<()>;
    /// Remove a file; absence is not an error.
    fn remove_file(&self, path: &Path) -> Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production VFS: `std::fs` with positioned I/O.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

/// A [`VfsFile`] over a real `std::fs::File`.
pub struct StdFile {
    file: File,
}

impl VfsFile for StdFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        self.file.read_exact_at(buf, offset)?;
        Ok(())
    }

    fn write_all_at(&self, data: &[u8], offset: u64) -> Result<()> {
        self.file.write_all_at(data, offset)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }
}

impl Vfs for StdFs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Arc::new(StdFile { file }))
    }

    fn read_file(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn write_file_atomic(&self, path: &Path, data: &[u8]) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The default VFS as a trait object (what every `open(path)` convenience
/// constructor uses).
pub fn std_fs() -> Arc<dyn Vfs> {
    Arc::new(StdFs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("immortal-vfs-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn positioned_io_roundtrip() {
        let path = tmp("pos");
        let fs = StdFs;
        let f = fs.open(&path).unwrap();
        f.write_all_at(b"hello world", 0).unwrap();
        f.write_all_at(b"WORLD", 6).unwrap();
        let mut buf = [0u8; 11];
        f.read_exact_at(&mut buf, 0).unwrap();
        assert_eq!(&buf, b"hello WORLD");
        assert_eq!(f.len().unwrap(), 11);
        f.set_len(5).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        f.sync().unwrap();
        fs.remove_file(&path).unwrap();
        assert!(!fs.exists(&path));
    }

    #[test]
    fn atomic_file_replace() {
        let path = tmp("atomic");
        let fs = StdFs;
        assert_eq!(fs.read_file(&path).unwrap(), None);
        fs.write_file_atomic(&path, b"v1").unwrap();
        assert_eq!(fs.read_file(&path).unwrap(), Some(b"v1".to_vec()));
        fs.write_file_atomic(&path, b"v2").unwrap();
        assert_eq!(fs.read_file(&path).unwrap(), Some(b"v2".to_vec()));
        fs.remove_file(&path).unwrap();
        // Removing a missing file is not an error.
        fs.remove_file(&path).unwrap();
    }
}
