//! Write-ahead log manager.
//!
//! Framing per record: `len:u32 | crc:u32 | body`, where `body` is
//! `tid:u64 | prev_lsn:u64 | encoded LogRecord`, `len = body.len()` and
//! `crc = crc32(body)`. A record's LSN is the file offset of its length
//! field, so LSNs are strictly increasing and recovery can seek directly.
//! A torn tail (zero length, truncated body, CRC mismatch) cleanly ends
//! the scan.
//!
//! Appends accumulate in an in-memory buffer; [`Wal::flush`] writes (and
//! optionally fsyncs) it. The buffer pool calls [`Wal::flush_to`] before
//! writing any page, enforcing the WAL rule.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use immortaldb_common::codec::crc32;
use immortaldb_common::{Error, Lsn, Result, Tid};
use immortaldb_obs::MetricsRegistry;

use crate::logrec::LogRecord;
use crate::vfs::{std_fs, Vfs, VfsFile};

/// Size of the per-record frame header (`len` + `crc`).
const FRAME_HDR: u64 = 8;
/// Body prefix: `tid` + `prev_lsn`.
const BODY_HDR: usize = 16;
/// File magic at offset 0; real LSNs therefore start at 8, keeping LSN 0
/// unambiguous as [`immortaldb_common::NULL_LSN`].
const WAL_MAGIC: &[u8; 8] = b"IMDBWAL1";
/// First valid record LSN.
pub const WAL_START: Lsn = Lsn(8);

/// Durability level applied when flushing the log at commit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Durability {
    /// Write to the OS page cache only; fsync happens at checkpoints.
    /// Survives process crashes (the failure model of the experiments) but
    /// not OS crashes since the last checkpoint.
    Buffered,
    /// fsync on every commit.
    Fsync,
}

/// Group-commit tuning for [`Wal::commit_durable`].
///
/// With group commit enabled, concurrent committers share fsyncs through
/// a leader/follower barrier: the first committer to reach the barrier
/// becomes the leader and syncs once for everyone queued behind it.
/// Batches form naturally while a sync is in flight — committers that
/// arrive during the leader's fsync pile up and are covered by the next
/// leader's single sync.
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitConfig {
    pub enabled: bool,
    /// Stop gathering early once this many committers are at the barrier.
    /// Only bounds the explicit gather wait; a single write+fsync always
    /// covers the whole buffer regardless.
    pub max_batch: usize,
    /// How long a leader waits for stragglers before syncing. Zero (the
    /// default) means sync immediately and rely on in-flight-sync
    /// piggybacking, which adds no latency for a lone committer.
    pub max_wait: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            enabled: true,
            max_batch: 64,
            max_wait: Duration::ZERO,
        }
    }
}

struct WalInner {
    /// File offset where the in-memory buffer begins (== durable length).
    buf_start: u64,
    buf: Vec<u8>,
}

/// Shared state of the commit barrier, guarded by `GroupBarrier::inner`.
struct GroupInner {
    /// Highest LSN known fsynced by a group leader.
    durable: u64,
    /// A leader currently owns the sync (holds the barrier lock while
    /// writing + fsyncing, so this is only observed `true` by threads
    /// that slipped in during a leader's condvar gather wait).
    leader_active: bool,
    /// Followers parked on `done` (used by a gathering leader to size its
    /// batch against `max_batch`).
    parked: usize,
    /// A leader's failed sync attempt: `(attempted end LSN, error)`.
    /// Every committer whose records the attempt covered must see the
    /// error — no one in a failed batch is acknowledged. Cleared once a
    /// later successful sync covers the attempted LSN.
    failed: Option<(u64, String)>,
}

struct GroupBarrier {
    inner: Mutex<GroupInner>,
    /// Signalled by arriving followers; wakes a gathering leader.
    arrivals: Condvar,
    /// Signalled when a sync attempt (success or failure) completes.
    done: Condvar,
}

/// The write-ahead log.
pub struct Wal {
    path: PathBuf,
    /// The VFS the log (and the recovery master record next to it) lives
    /// on.
    vfs: Arc<dyn Vfs>,
    file: Arc<dyn VfsFile>,
    inner: Mutex<WalInner>,
    /// Highest LSN guaranteed written to the file (not necessarily
    /// fsynced).
    written_lsn: AtomicU64,
    /// Highest LSN known fsynced via the group-commit path (fast-path
    /// mirror of `GroupInner::durable`).
    durable_lsn: AtomicU64,
    /// Committers currently inside `commit_durable` (sizes batches for
    /// the `wal.batch_size` metric; includes threads still blocked on the
    /// barrier mutex, which `GroupInner::parked` cannot see).
    commit_waiters: AtomicU64,
    group_cfg: GroupCommitConfig,
    group: GroupBarrier,
    metrics: MetricsRegistry,
}

/// A decoded WAL entry together with its framing metadata.
#[derive(Debug, Clone)]
pub struct WalEntry {
    pub lsn: Lsn,
    pub tid: Tid,
    pub prev_lsn: Lsn,
    pub record: LogRecord,
    /// LSN of the next record (this record's end offset).
    pub next_lsn: Lsn,
}

impl Wal {
    /// Open (or create) the log at `path`, positioned to append after the
    /// last complete record. Records into a private metrics registry; use
    /// [`Self::with_metrics`] to share the engine-wide one.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        Self::with_metrics(path, MetricsRegistry::new())
    }

    /// [`Self::open`], recording into a shared registry.
    pub fn with_metrics(path: impl AsRef<Path>, metrics: MetricsRegistry) -> Result<Wal> {
        Self::open_with(std_fs(), path, metrics)
    }

    /// [`Self::open`] through the given VFS.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        metrics: MetricsRegistry,
    ) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let file = vfs.open(&path)?;
        if file.len()? < WAL_START.0 {
            file.set_len(0)?;
            file.write_all_at(WAL_MAGIC, 0)?;
        } else {
            let mut magic = [0u8; 8];
            file.read_exact_at(&mut magic, 0)?;
            if &magic != WAL_MAGIC {
                return Err(Error::Corruption("WAL magic mismatch".into()));
            }
        }
        // Find the end of the valid prefix so a torn tail is overwritten.
        let end = scan_valid_end(file.as_ref())?;
        file.set_len(end)?;
        metrics.wal.end_lsn.set(end);
        Ok(Wal {
            path,
            vfs,
            file,
            inner: Mutex::new(WalInner {
                buf_start: end,
                buf: Vec::with_capacity(64 * 1024),
            }),
            written_lsn: AtomicU64::new(end),
            durable_lsn: AtomicU64::new(0),
            commit_waiters: AtomicU64::new(0),
            group_cfg: GroupCommitConfig::default(),
            group: GroupBarrier {
                inner: Mutex::new(GroupInner {
                    durable: 0,
                    leader_active: false,
                    parked: 0,
                    failed: None,
                }),
                arrivals: Condvar::new(),
                done: Condvar::new(),
            },
            metrics,
        })
    }

    /// Configure the group-commit barrier (call before sharing the log
    /// across threads; the engine sets this from `DbConfig::group_commit`
    /// at open).
    pub fn set_group_commit(&mut self, cfg: GroupCommitConfig) {
        self.group_cfg = cfg;
    }

    /// The active group-commit configuration.
    pub fn group_commit(&self) -> GroupCommitConfig {
        self.group_cfg
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The VFS this log lives on (also used for the recovery master
    /// record, which sits next to the log file).
    pub fn vfs(&self) -> &Arc<dyn Vfs> {
        &self.vfs
    }

    /// The registry this log records into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Append a record; returns its LSN. The record is buffered — call
    /// [`Self::flush`] (or let the buffer pool's WAL-rule flush do it) to
    /// make it durable.
    pub fn append(&self, tid: Tid, prev_lsn: Lsn, record: &LogRecord) -> Lsn {
        let mut body = Vec::with_capacity(BODY_HDR + 32);
        body.extend_from_slice(&tid.0.to_le_bytes());
        body.extend_from_slice(&prev_lsn.0.to_le_bytes());
        body.extend_from_slice(&record.encode());
        let crc = crc32(&body);
        self.metrics.wal.appends.inc();
        self.metrics.wal.bytes.add(FRAME_HDR + body.len() as u64);
        let mut inner = self.inner.lock();
        let lsn = Lsn(inner.buf_start + inner.buf.len() as u64);
        inner
            .buf
            .extend_from_slice(&(body.len() as u32).to_le_bytes());
        inner.buf.extend_from_slice(&crc.to_le_bytes());
        inner.buf.extend_from_slice(&body);
        self.metrics
            .wal
            .end_lsn
            .set(inner.buf_start + inner.buf.len() as u64);
        lsn
    }

    /// The LSN one past the last appended record (the "end of log"). Used
    /// for the VTT `stable_lsn` bookkeeping that gates PTT GC.
    pub fn end_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.buf_start + inner.buf.len() as u64)
    }

    /// Highest LSN written to the file.
    pub fn written_lsn(&self) -> Lsn {
        Lsn(self.written_lsn.load(Ordering::SeqCst))
    }

    /// Write the whole buffer out (optionally fsync).
    ///
    /// The buffer is only consumed once the write succeeds: a failed (or
    /// torn) write leaves it intact, and the positioned rewrite at
    /// `buf_start` on the next flush is idempotent.
    pub fn flush(&self, durability: Durability) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.buf.is_empty() {
            let start = inner.buf_start;
            self.file.write_all_at(&inner.buf, start)?;
            inner.buf_start += inner.buf.len() as u64;
            inner.buf.clear();
            let start = inner.buf_start;
            self.written_lsn.store(start, Ordering::SeqCst);
        }
        if durability == Durability::Fsync {
            self.metrics.wal.fsyncs.inc();
            let _timer = self.metrics.wal.fsync_ns.start_timer();
            self.file.sync()?;
        }
        Ok(())
    }

    /// Write the buffer out without fsyncing and without holding the
    /// buffer lock any longer than the write itself. Returns the covered
    /// LSN: everything below it is in the file once this call returns.
    /// Unlike [`Self::flush`], a group leader can fsync *after* this
    /// returns while new appends proceed — that overlap is what lets the
    /// next batch form during the current batch's fsync.
    fn write_buffer(&self) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        if !inner.buf.is_empty() {
            let start = inner.buf_start;
            self.file.write_all_at(&inner.buf, start)?;
            inner.buf_start += inner.buf.len() as u64;
            inner.buf.clear();
            let start = inner.buf_start;
            self.written_lsn.store(start, Ordering::SeqCst);
        }
        Ok(Lsn(inner.buf_start))
    }

    /// Highest LSN known durable (fsynced) through the group-commit path.
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable_lsn.load(Ordering::SeqCst))
    }

    /// Make everything up to `upto` durable at the given durability level,
    /// sharing fsyncs between concurrent committers when group commit is
    /// enabled (the commit barrier).
    ///
    /// `Buffered` just writes the buffer (the off-switch semantics of
    /// [`Durability`] are preserved: with group commit disabled, `Fsync`
    /// falls back to one [`Self::flush`]` + fsync per caller). Returns
    /// only once the caller's records at or below `upto` are durable, or
    /// with the error of the sync attempt that covered them — a failed
    /// batch acknowledges nobody.
    pub fn commit_durable(&self, upto: Lsn, durability: Durability) -> Result<()> {
        if durability == Durability::Buffered {
            return self.flush(Durability::Buffered);
        }
        if !self.group_cfg.enabled {
            return self.flush(Durability::Fsync);
        }
        // Fast path: a leader already synced past us.
        if self.durable_lsn.load(Ordering::SeqCst) >= upto.0 {
            return Ok(());
        }
        self.commit_waiters.fetch_add(1, Ordering::SeqCst);
        let res = self.commit_barrier(upto);
        self.commit_waiters.fetch_sub(1, Ordering::SeqCst);
        res
    }

    fn commit_barrier(&self, upto: Lsn) -> Result<()> {
        let mut g = self.group.inner.lock();
        loop {
            if let Some((attempted, msg)) = &g.failed {
                // Our records were part of a sync attempt that failed:
                // all-or-nothing, nobody in that batch commits.
                if *attempted >= upto.0 {
                    return Err(Error::Io(std::io::Error::other(format!(
                        "group commit batch failed: {msg}"
                    ))));
                }
            }
            if g.durable >= upto.0 {
                return Ok(());
            }
            if !g.leader_active {
                // Become the leader for the next batch.
                g.leader_active = true;
                let cfg = self.group_cfg;
                if cfg.max_wait > Duration::ZERO {
                    // Gather: give stragglers a bounded window to join
                    // (the condvar wait releases the barrier lock so
                    // they can park).
                    let timer = self.metrics.wal.leader_waits_ns.start_timer();
                    let deadline = Instant::now() + cfg.max_wait;
                    while g.parked + 1 < cfg.max_batch {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        if self
                            .group
                            .arrivals
                            .wait_for(&mut g, deadline - now)
                            .timed_out()
                        {
                            break;
                        }
                    }
                    drop(timer);
                }
                let batch = self.commit_waiters.load(Ordering::SeqCst).max(1);
                // Sync with the barrier UNLOCKED: committers arriving
                // during the fsync append their records and park, forming
                // the next batch, and followers satisfied by an earlier
                // sync drain without waiting on us. `leader_active` keeps
                // the sync single-flight.
                drop(g);
                let res = match self.write_buffer() {
                    Ok(covered) => {
                        self.metrics.wal.fsyncs.inc();
                        let timer = self.metrics.wal.fsync_ns.start_timer();
                        let sync = self.file.sync();
                        drop(timer);
                        match sync {
                            Ok(()) => Ok(covered),
                            // Failed fsync: exactly the records the write
                            // covered were attempted and are not durable.
                            Err(e) => Err((covered.0, e)),
                        }
                    }
                    // Failed write: the buffer (everything appended so
                    // far) stays queued; treat it all as attempted.
                    Err(e) => Err((self.end_lsn().0, e)),
                };
                g = self.group.inner.lock();
                match res {
                    Ok(covered) => {
                        g.durable = g.durable.max(covered.0);
                        self.durable_lsn.store(g.durable, Ordering::SeqCst);
                        self.metrics.wal.durable_lsn.set(g.durable);
                        if let Some((attempted, _)) = g.failed {
                            if attempted <= g.durable {
                                g.failed = None;
                            }
                        }
                        self.metrics.wal.group_commits.inc();
                        self.metrics.wal.batch_size.observe(batch);
                    }
                    Err((attempted, e)) => {
                        // No committer whose records the attempt covered
                        // may be acknowledged: all-or-nothing per batch.
                        g.failed = Some((attempted.max(g.durable), e.to_string()));
                    }
                }
                g.leader_active = false;
                self.group.done.notify_all();
                // Loop to observe the outcome exactly like a follower
                // would (our own records were covered by the attempt).
            } else {
                g.parked += 1;
                self.group.arrivals.notify_one();
                self.group.done.wait(&mut g);
                g.parked -= 1;
            }
        }
    }

    /// Ensure everything up to and including `lsn` is in the file (the
    /// WAL rule, called by the buffer pool before page writes).
    pub fn flush_to(&self, lsn: Lsn) -> Result<()> {
        if self.written_lsn().0 > lsn.0 {
            return Ok(());
        }
        self.flush(Durability::Buffered)
    }

    /// Iterate over all complete records starting at `from` (file only:
    /// call [`Self::flush`] first if buffered records must be visible).
    pub fn iter_from(&self, from: Lsn) -> Result<WalIter> {
        // Make sure everything appended so far is scannable.
        self.flush(Durability::Buffered)?;
        let len = self.file.len()?;
        Ok(WalIter {
            file: Arc::clone(&self.file),
            pos: from.0.max(WAL_START.0),
            end: len,
        })
    }

    /// Read and decode the single record at `lsn`.
    pub fn read_at(&self, lsn: Lsn) -> Result<WalEntry> {
        let mut it = self.iter_from(lsn)?;
        it.next()
            .transpose()?
            .ok_or_else(|| Error::Corruption(format!("no log record at {lsn:?}")))
    }

    /// Read raw, frame-aligned log bytes starting at `from` for WAL
    /// shipping: flushes the append buffer, then returns up to
    /// `max_bytes` of *complete* records (always at least one whole
    /// record when any exists, so a record larger than the budget still
    /// ships) together with the LSN just past them. An empty slice with
    /// `next == from` means the subscriber is caught up.
    pub fn read_raw(&self, from: Lsn, max_bytes: usize) -> Result<(Vec<u8>, Lsn)> {
        self.flush(Durability::Buffered)?;
        let end = self.file.len()?;
        let start = from.0.max(WAL_START.0);
        let mut pos = start;
        while pos + FRAME_HDR <= end {
            let mut hdr = [0u8; 8];
            self.file.read_exact_at(&mut hdr, pos)?;
            let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as u64;
            if len == 0 || pos + FRAME_HDR + len > end {
                // Never ship a torn tail (only possible under fault
                // injection; normal flushes end on record boundaries).
                break;
            }
            let next = pos + FRAME_HDR + len;
            if pos > start && (next - start) as usize > max_bytes {
                break;
            }
            pos = next;
        }
        let mut buf = vec![0u8; (pos - start) as usize];
        if !buf.is_empty() {
            self.file.read_exact_at(&mut buf, start)?;
        }
        Ok((buf, Lsn(pos)))
    }

    /// Replication apply: append raw frame-aligned bytes shipped from a
    /// primary at exactly offset `at` (which must be the current end of
    /// this log). The local append buffer must be empty — replicas never
    /// write their own records — so the shipped file stays a
    /// byte-identical prefix of the primary's and primary LSNs remain
    /// valid here. Returns the new end-of-log LSN.
    pub fn append_raw(&self, at: Lsn, bytes: &[u8]) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        if !inner.buf.is_empty() {
            return Err(Error::Internal(
                "append_raw: local records buffered on a replica log".into(),
            ));
        }
        if at.0 != inner.buf_start {
            return Err(Error::Corruption(format!(
                "replication stream out of order: batch starts at {}, log ends at {}",
                at.0, inner.buf_start
            )));
        }
        self.file.write_all_at(bytes, at.0)?;
        inner.buf_start += bytes.len() as u64;
        self.written_lsn.store(inner.buf_start, Ordering::SeqCst);
        self.metrics.wal.end_lsn.set(inner.buf_start);
        Ok(Lsn(inner.buf_start))
    }
}

/// Sequential reader over the log file (shares the writer's handle;
/// positioned reads carry no cursor state).
pub struct WalIter {
    file: Arc<dyn VfsFile>,
    pos: u64,
    end: u64,
}

impl WalIter {
    fn read_exact_at(&mut self, buf: &mut [u8], off: u64) -> Result<()> {
        self.file.read_exact_at(buf, off)
    }
}

impl Iterator for WalIter {
    type Item = Result<WalEntry>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos + FRAME_HDR > self.end {
            return None;
        }
        let mut hdr = [0u8; 8];
        if let Err(e) = self.read_exact_at(&mut hdr, self.pos) {
            return Some(Err(e));
        }
        let len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as u64;
        let crc = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]);
        if len == 0 || self.pos + FRAME_HDR + len > self.end {
            // Torn tail: end of valid log.
            return None;
        }
        let mut body = vec![0u8; len as usize];
        if let Err(e) = self.read_exact_at(&mut body, self.pos + FRAME_HDR) {
            return Some(Err(e));
        }
        if crc32(&body) != crc {
            // Corrupt/torn record ends the scan.
            return None;
        }
        let tid = Tid(u64::from_le_bytes(body[0..8].try_into().unwrap()));
        let prev_lsn = Lsn(u64::from_le_bytes(body[8..16].try_into().unwrap()));
        let record = match LogRecord::decode(&body[BODY_HDR..]) {
            Ok(r) => r,
            Err(e) => return Some(Err(e)),
        };
        let lsn = Lsn(self.pos);
        self.pos += FRAME_HDR + len;
        Some(Ok(WalEntry {
            lsn,
            tid,
            prev_lsn,
            record,
            next_lsn: Lsn(self.pos),
        }))
    }
}

/// Scan the file from the start and return the offset just past the last
/// complete, CRC-valid record.
fn scan_valid_end(file: &dyn VfsFile) -> Result<u64> {
    let len = file.len()?;
    let mut pos = WAL_START.0;
    loop {
        if pos + FRAME_HDR > len {
            return Ok(pos);
        }
        let mut hdr = [0u8; 8];
        file.read_exact_at(&mut hdr, pos)?;
        let rec_len = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]) as u64;
        let crc = u32::from_le_bytes([hdr[4], hdr[5], hdr[6], hdr[7]]);
        if rec_len == 0 || pos + FRAME_HDR + rec_len > len {
            return Ok(pos);
        }
        let mut body = vec![0u8; rec_len as usize];
        file.read_exact_at(&mut body, pos + FRAME_HDR)?;
        if crc32(&body) != crc {
            return Ok(pos);
        }
        pos += FRAME_HDR + rec_len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use immortaldb_common::{PageId, Timestamp, TreeId};
    use std::fs::OpenOptions;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("immortal-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_flush_iterate() {
        let path = tmp("basic");
        let wal = Wal::open(&path).unwrap();
        let l1 = wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
        let l2 = wal.append(
            Tid(1),
            l1,
            &LogRecord::AddVersion {
                tree: TreeId(5),
                page: PageId(3),
                key: b"k".to_vec(),
                data: b"v".to_vec(),
                stub: false,
            },
        );
        let l3 = wal.append(
            Tid(1),
            l2,
            &LogRecord::Commit {
                ts: Timestamp::new(20, 0),
            },
        );
        assert!(l1 < l2 && l2 < l3);
        wal.flush(Durability::Fsync).unwrap();
        let entries: Vec<_> = wal.iter_from(Lsn(0)).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].record, LogRecord::Begin);
        assert_eq!(entries[1].prev_lsn, l1);
        assert_eq!(entries[2].lsn, l3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_at_fetches_single_record() {
        let path = tmp("readat");
        let wal = Wal::open(&path).unwrap();
        wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
        let l2 = wal.append(Tid(1), Lsn(0), &LogRecord::Abort);
        wal.flush(Durability::Buffered).unwrap();
        let e = wal.read_at(l2).unwrap();
        assert_eq!(e.record, LogRecord::Abort);
        assert_eq!(e.tid, Tid(1));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_trimmed_on_reopen() {
        let path = tmp("torn");
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
            wal.append(Tid(1), Lsn(0), &LogRecord::End);
            wal.flush(Durability::Fsync).unwrap();
        }
        // Simulate a torn write: append garbage bytes.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF, 0x03, 0x00, 0x00, 0xAA]).unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        let entries: Vec<_> = wal.iter_from(Lsn(0)).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 2);
        // New appends land where the garbage was.
        let l = wal.append(Tid(2), Lsn(0), &LogRecord::Begin);
        wal.flush(Durability::Buffered).unwrap();
        let entries: Vec<_> = wal.iter_from(Lsn(0)).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[2].lsn, l);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_every_truncation_point_replays_prefix() {
        // Cut the file at every byte offset inside the last two records —
        // both hard truncation and garbage-fill (a torn sector write) —
        // and assert reopen replays exactly the records whose bytes fully
        // survive, ignoring the tail.
        let path = tmp("everyoff");
        let wal = Wal::open(&path).unwrap();
        wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
        let l2 = wal.append(
            Tid(1),
            Lsn(0),
            &LogRecord::Commit {
                ts: Timestamp::new(20, 0),
            },
        );
        let l3 = wal.append(Tid(1), l2, &LogRecord::End);
        wal.flush(Durability::Fsync).unwrap();
        let end = wal.end_lsn();
        drop(wal);
        let full = std::fs::read(&path).unwrap();
        assert_eq!(full.len() as u64, end.0);
        for cut in l2.0..end.0 {
            let expect = if cut >= l3.0 { 2 } else { 1 };
            // Hard truncation at `cut`.
            std::fs::write(&path, &full[..cut as usize]).unwrap();
            let wal = Wal::open(&path).unwrap();
            let n = wal.iter_from(Lsn(0)).unwrap().fold(0, |n, e| {
                e.unwrap();
                n + 1
            });
            assert_eq!(n, expect, "truncated at {cut}");
            drop(wal);
            // Garbage tail: the cut record's remaining bytes replaced.
            let mut garbled = full.clone();
            garbled[cut as usize..].fill(0xAA);
            std::fs::write(&path, &garbled).unwrap();
            let wal = Wal::open(&path).unwrap();
            let n = wal.iter_from(Lsn(0)).unwrap().fold(0, |n, e| {
                e.unwrap();
                n + 1
            });
            assert_eq!(n, expect, "garbled from {cut}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_record_ends_scan() {
        let path = tmp("crc");
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
            let l2 = wal.append(Tid(1), Lsn(0), &LogRecord::End);
            wal.flush(Durability::Fsync).unwrap();
            // Flip a byte inside the second record's body.
            use std::os::unix::fs::FileExt;
            let f = OpenOptions::new().write(true).open(&path).unwrap();
            f.write_all_at(&[0x77], l2.0 + FRAME_HDR + 2).unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        let entries: Vec<_> = wal.iter_from(Lsn(0)).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flush_to_honors_wal_rule() {
        let path = tmp("rule");
        let wal = Wal::open(&path).unwrap();
        let l1 = wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
        assert_eq!(wal.written_lsn(), WAL_START);
        wal.flush_to(l1).unwrap();
        assert!(wal.written_lsn() > l1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn end_lsn_tracks_appends() {
        let path = tmp("endlsn");
        let wal = Wal::open(&path).unwrap();
        let e0 = wal.end_lsn();
        wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
        assert!(wal.end_lsn() > e0);
        std::fs::remove_file(&path).unwrap();
    }

    /// The LSN just past a single appended record (commit_durable's wait
    /// target for that record).
    fn past(wal: &Wal, tid: u64) -> Lsn {
        let lsn = wal.append(Tid(tid), Lsn(0), &LogRecord::Begin);
        Lsn(lsn.0 + 1)
    }

    #[test]
    fn group_commit_batches_under_contention() {
        // 8 committer threads with a gather window: far fewer fsyncs
        // than commits, and at least one multi-committer batch.
        let path = tmp("gcbatch");
        let mut wal = Wal::open(&path).unwrap();
        wal.set_group_commit(GroupCommitConfig {
            enabled: true,
            max_batch: 8,
            max_wait: Duration::from_millis(10),
        });
        let wal = std::sync::Arc::new(wal);
        let threads: u64 = 8;
        let per: u64 = 25;
        std::thread::scope(|s| {
            for t in 0..threads {
                let wal = std::sync::Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..per {
                        let upto = past(&wal, t * 1000 + i);
                        wal.commit_durable(upto, Durability::Fsync).unwrap();
                        assert!(wal.durable_lsn() >= upto);
                    }
                });
            }
        });
        let m = wal.metrics();
        let commits = threads * per;
        assert!(
            m.wal.fsyncs.get() < commits,
            "no batching: {} fsyncs for {commits} commits",
            m.wal.fsyncs.get()
        );
        assert!(m.wal.group_commits.get() >= 1);
        assert!(
            m.wal.batch_size.snapshot().max >= 2,
            "no batch ever had more than one committer"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_max_wait_flushes_singleton_batch() {
        // A lone committer with a gather window must not wait for
        // followers that never come: the max-wait timeout fires and the
        // batch of one syncs.
        let path = tmp("gcsingle");
        let mut wal = Wal::open(&path).unwrap();
        let wait = Duration::from_millis(20);
        wal.set_group_commit(GroupCommitConfig {
            enabled: true,
            max_batch: 64,
            max_wait: wait,
        });
        let upto = past(&wal, 1);
        let t0 = std::time::Instant::now();
        wal.commit_durable(upto, Durability::Fsync).unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(15),
            "leader skipped the gather window: {elapsed:?}"
        );
        assert!(wal.durable_lsn() >= upto);
        let m = wal.metrics();
        assert_eq!(m.wal.group_commits.get(), 1);
        assert_eq!(m.wal.batch_size.snapshot().max, 1);
        assert_eq!(m.wal.leader_waits_ns.snapshot().count, 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_zero_wait_adds_no_latency_for_lone_committer() {
        // The default config (max_wait = 0) must behave like a plain
        // fsync for a single committer: no gather stall.
        let path = tmp("gczero");
        let wal = Wal::open(&path).unwrap();
        assert!(wal.group_commit().enabled);
        let upto = past(&wal, 1);
        wal.commit_durable(upto, Durability::Fsync).unwrap();
        assert!(wal.durable_lsn() >= upto);
        assert_eq!(wal.metrics().wal.leader_waits_ns.snapshot().count, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_disabled_falls_back_to_per_commit_fsync() {
        let path = tmp("gcoff");
        let mut wal = Wal::open(&path).unwrap();
        wal.set_group_commit(GroupCommitConfig {
            enabled: false,
            ..GroupCommitConfig::default()
        });
        for i in 0..5 {
            let upto = past(&wal, i);
            wal.commit_durable(upto, Durability::Fsync).unwrap();
        }
        let m = wal.metrics();
        assert_eq!(m.wal.fsyncs.get(), 5);
        assert_eq!(m.wal.group_commits.get(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn iter_stops_at_torn_tail_and_resumes_after_next_flush() {
        // The shipper's core loop: an iterator taken while a torn tail
        // sits past the valid prefix must stop cleanly (no error), and a
        // fresh iterator from the stop point must pick up the records the
        // next flush lays down over the garbage.
        let path = tmp("resume");
        let wal = Wal::open(&path).unwrap();
        wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
        let l2 = wal.append(Tid(1), Lsn(0), &LogRecord::End);
        wal.flush(Durability::Fsync).unwrap();
        let valid_end = wal.end_lsn();
        // Torn tail: garbage written past the valid prefix, as a crashed
        // writer would leave it (bypassing the Wal's own buffer).
        wal.file
            .write_all_at(&[0x2C, 0x00, 0x00, 0x00, 0xAA, 0xBB], valid_end.0)
            .unwrap();
        let mut it = wal.iter_from(Lsn(0)).unwrap();
        let mut last_end = Lsn(0);
        let mut n = 0;
        for e in &mut it {
            let e = e.unwrap();
            last_end = e.next_lsn;
            n += 1;
        }
        assert_eq!(n, 2, "torn tail must end the scan cleanly");
        assert_eq!(last_end, valid_end);
        assert!(last_end > l2);
        // Writer keeps going: the next flush overwrites the garbage.
        let l3 = wal.append(Tid(2), Lsn(0), &LogRecord::Begin);
        let l4 = wal.append(Tid(2), l3, &LogRecord::Abort);
        wal.flush(Durability::Buffered).unwrap();
        // Resume exactly where the last scan stopped: a fresh iterator
        // (iter_from snapshots the file length) sees only the new records.
        let resumed: Vec<_> = wal
            .iter_from(last_end)
            .unwrap()
            .map(|e| e.unwrap())
            .collect();
        assert_eq!(resumed.len(), 2);
        assert_eq!(resumed[0].lsn, l3);
        assert_eq!(resumed[1].lsn, l4);
        assert_eq!(resumed[1].record, LogRecord::Abort);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_raw_ships_whole_records_within_budget() {
        let path = tmp("readraw");
        let wal = Wal::open(&path).unwrap();
        let l1 = wal.append(Tid(1), Lsn(0), &LogRecord::Begin);
        let l2 = wal.append(Tid(1), l1, &LogRecord::End);
        let l3 = wal.append(Tid(2), Lsn(0), &LogRecord::Begin);
        let end = wal.end_lsn();
        // Tiny budget: still ships the first whole record.
        let (bytes, next) = wal.read_raw(WAL_START, 1).unwrap();
        assert_eq!(next, l2);
        assert_eq!(bytes.len() as u64, l2.0 - l1.0);
        // Budget for two records exactly.
        let (bytes, next) = wal.read_raw(WAL_START, (l3.0 - l1.0) as usize).unwrap();
        assert_eq!(next, l3);
        assert_eq!(bytes.len() as u64, l3.0 - l1.0);
        // Large budget: everything; then caught-up returns empty.
        let (bytes, next) = wal.read_raw(WAL_START, 1 << 20).unwrap();
        assert_eq!(next, end);
        assert_eq!(bytes.len() as u64, end.0 - WAL_START.0);
        let (bytes, next) = wal.read_raw(end, 1 << 20).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(next, end);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_raw_replays_byte_identical_prefix() {
        let src = tmp("rawsrc");
        let dst = tmp("rawdst");
        let primary = Wal::open(&src).unwrap();
        let l1 = primary.append(Tid(1), Lsn(0), &LogRecord::Begin);
        primary.append(
            Tid(1),
            l1,
            &LogRecord::Commit {
                ts: Timestamp::new(40, 1),
            },
        );
        let replica = Wal::open(&dst).unwrap();
        // Ship in two batches and verify LSN-for-LSN equality.
        let (b1, n1) = primary.read_raw(WAL_START, 1).unwrap();
        assert_eq!(replica.append_raw(WAL_START, &b1).unwrap(), n1);
        // Out-of-order batch is rejected.
        assert!(replica.append_raw(WAL_START, &b1).is_err());
        let (b2, n2) = primary.read_raw(n1, 1 << 20).unwrap();
        assert_eq!(replica.append_raw(n1, &b2).unwrap(), n2);
        let a: Vec<_> = primary
            .iter_from(Lsn(0))
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.lsn, e.tid, e.record)
            })
            .collect();
        let b: Vec<_> = replica
            .iter_from(Lsn(0))
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (e.lsn, e.tid, e.record)
            })
            .collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        std::fs::remove_file(&src).unwrap();
        std::fs::remove_file(&dst).unwrap();
    }

    #[test]
    fn end_and_durable_lsn_gauges_track_log_state() {
        let path = tmp("gauges");
        let wal = Wal::open(&path).unwrap();
        let m = wal.metrics().clone();
        assert_eq!(m.wal.end_lsn.get(), WAL_START.0);
        let upto = past(&wal, 1);
        assert_eq!(m.wal.end_lsn.get(), wal.end_lsn().0);
        wal.commit_durable(upto, Durability::Fsync).unwrap();
        assert_eq!(m.wal.durable_lsn.get(), wal.durable_lsn().0);
        assert!(m.wal.durable_lsn.get() >= upto.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_commit_buffered_durability_skips_fsync() {
        let path = tmp("gcbuf");
        let wal = Wal::open(&path).unwrap();
        let upto = past(&wal, 1);
        wal.commit_durable(upto, Durability::Buffered).unwrap();
        // Written to the file (scannable) but never fsynced.
        assert!(wal.written_lsn() >= upto);
        assert_eq!(wal.metrics().wal.fsyncs.get(), 0);
        let n = wal.iter_from(Lsn(0)).unwrap().count();
        assert_eq!(n, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
