//! Property-based tests for the storage substrate: slotted-page
//! operations against a model, compaction transparency, and the
//! time-split invariant ("each page contains all the versions that are
//! alive in the key and time region of the page").

use std::collections::{BTreeMap, HashMap};

use proptest::prelude::*;

use immortaldb_common::{PageId, Tid, Timestamp};
use immortaldb_storage::page::{Page, PageType, FLAG_VERSIONED};
use immortaldb_storage::version::{self, Visible};
use immortaldb_storage::TimestampResolver;

struct NoResolver;
impl TimestampResolver for NoResolver {
    fn resolve(&self, _tid: Tid) -> Option<Timestamp> {
        None
    }
}

#[derive(Debug, Clone)]
enum PageOp {
    Insert { key: u8, len: usize },
    Update { key: u8, len: usize },
    Remove { key: u8 },
    Compact,
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        4 => (any::<u8>(), 1..120usize).prop_map(|(key, len)| PageOp::Insert { key, len }),
        3 => (any::<u8>(), 1..120usize).prop_map(|(key, len)| PageOp::Update { key, len }),
        2 => any::<u8>().prop_map(|key| PageOp::Remove { key }),
        1 => Just(PageOp::Compact),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Unversioned slotted-page operations match a BTreeMap model; slots
    /// stay sorted; compaction is content-transparent.
    #[test]
    fn slotted_page_matches_model(ops in proptest::collection::vec(page_op(), 1..150)) {
        let mut page = Page::zeroed();
        page.format(PageId(3), PageType::Leaf, 0, 0);
        let mut model: BTreeMap<u8, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                PageOp::Insert { key, len } => {
                    let data = vec![key ^ 0x5A; len];
                    match page.insert_sorted(&[key], &data, 0) {
                        Ok(_) => {
                            prop_assert!(!model.contains_key(&key));
                            model.insert(key, data);
                        }
                        Err(immortaldb_common::Error::DuplicateKey) => {
                            prop_assert!(model.contains_key(&key));
                        }
                        Err(immortaldb_common::Error::PageFull) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PageOp::Update { key, len } => {
                    let data = vec![key ^ 0xA5; len];
                    match page.update_sorted(&[key], &data) {
                        Ok(()) => {
                            prop_assert!(model.contains_key(&key));
                            model.insert(key, data);
                        }
                        Err(immortaldb_common::Error::KeyNotFound) => {
                            prop_assert!(!model.contains_key(&key));
                        }
                        Err(immortaldb_common::Error::PageFull) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PageOp::Remove { key } => {
                    match page.remove_sorted(&[key]) {
                        Ok(()) => {
                            prop_assert!(model.remove(&key).is_some());
                        }
                        Err(immortaldb_common::Error::KeyNotFound) => {
                            prop_assert!(!model.contains_key(&key));
                        }
                        Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                    }
                }
                PageOp::Compact => {
                    page.compact().unwrap();
                    prop_assert_eq!(page.frag_space(), 0);
                }
            }
            // Full-content comparison + sortedness after every step.
            prop_assert_eq!(page.slot_count(), model.len());
            let mut prev: Option<Vec<u8>> = None;
            for i in 0..page.slot_count() {
                let off = page.slot(i);
                let k = page.rec_key(off).to_vec();
                if let Some(p) = &prev {
                    prop_assert!(p < &k, "slots sorted");
                }
                let expect = model.get(&k[0]).expect("model has key");
                prop_assert_eq!(page.rec_data(off), expect.as_slice());
                prev = Some(k);
            }
        }
    }

    /// The time-split invariant: for any set of stamped version chains and
    /// any split time, every version alive at time `t` is findable in the
    /// page covering `t` (history page for t < split, current for
    /// t >= split), with exactly the value the pre-split page reports.
    #[test]
    fn time_split_preserves_every_time_slice(
        // Per key: number of versions (committed at ticks 1..=n) and
        // whether the chain ends in a delete stub.
        chains in proptest::collection::vec((1..8u64, any::<bool>()), 1..12),
        split_tick in 1..10u64,
    ) {
        let mut page = Page::zeroed();
        page.format(PageId(5), PageType::Leaf, FLAG_VERSIONED, 0);
        let resolver = NoResolver;
        let mut tid = 0u64;
        // Build chains: key k gets versions at ticks 1..=n_k spaced by key
        // to vary lifetimes, optionally a stub at n_k+1.
        type Versions = Vec<(Timestamp, Option<Vec<u8>>)>;
        let mut stamps: HashMap<u8, Versions> = HashMap::new();
        for (k, (nvers, ends_deleted)) in chains.iter().enumerate() {
            let key = [k as u8];
            let (nvers, ends_deleted) = (*nvers, *ends_deleted);
            for v in 1..=nvers {
                tid += 1;
                let off = version::add_version(
                    &mut page, &key, format!("k{k}v{v}").as_bytes(), false, Tid(tid),
                ).unwrap();
                let ts = Timestamp::new(v * 20, k as u32);
                page.stamp_rec(off, ts);
                stamps.entry(k as u8).or_default()
                    .push((ts, Some(format!("k{k}v{v}").into_bytes())));
            }
            if ends_deleted {
                tid += 1;
                let off = version::add_version(&mut page, &key, &[], true, Tid(tid)).unwrap();
                let ts = Timestamp::new((nvers + 1) * 20, k as u32);
                page.stamp_rec(off, ts);
                stamps.entry(k as u8).or_default().push((ts, None));
            }
        }
        let split_ts = Timestamp::new(split_tick * 20, 0);
        if split_ts <= page.start_ts() {
            return Ok(());
        }
        let (hist, cur, _) = version::time_split(&page, split_ts, PageId(99)).unwrap();

        // Probe every (key, tick) instant against the pre-split truth.
        for probe_tick in 0..12u64 {
            let t = Timestamp::new(probe_tick * 20, 1_000_000);
            let target = if t >= split_ts { &cur } else { &hist };
            for (key, versions) in &stamps {
                // Model answer: newest version with ts <= t.
                let expect = versions.iter().rev().find(|(ts, _)| *ts <= t)
                    .map(|(_, v)| v.clone());
                let got = match target.find_slot(&[*key]) {
                    Ok(i) => match version::visible_as_of(target, i, t, None, &resolver) {
                        Visible::Version(off) => Some(Some(target.rec_data(off).to_vec())),
                        Visible::Deleted => Some(None),
                        Visible::NotHere => None,
                    },
                    Err(_) => None,
                };
                match expect {
                    // A deletion may surface as an explicit stub or — per
                    // the paper's rule that stubs older than the split
                    // time are removed from the current page — as plain
                    // absence. Both mean "no row at t".
                    Some(None) => {
                        prop_assert!(got == Some(None) || got.is_none(),
                            "key {key} at tick {probe_tick}: expected deleted, got {got:?}");
                    }
                    None => {
                        // Didn't exist at t: page must report NotHere/absent
                        // (a Deleted report is also unreachable here since
                        // the first version is never a stub).
                        prop_assert!(got.is_none(),
                            "key {key} at tick {probe_tick}: expected absent, got {got:?}");
                    }
                    Some(val) => {
                        prop_assert_eq!(got, Some(val),
                            "key {} at tick {}", key, probe_tick);
                    }
                }
            }
        }
    }

    /// Versioned-page compaction preserves every chain byte-for-byte.
    #[test]
    fn compaction_preserves_version_chains(
        nkeys in 1..10usize,
        nvers in 1..6u64,
    ) {
        let mut page = Page::zeroed();
        page.format(PageId(7), PageType::Leaf, FLAG_VERSIONED, 0);
        let mut tid = 0u64;
        for k in 0..nkeys {
            for v in 1..=nvers {
                tid += 1;
                let off = version::add_version(
                    &mut page, &[k as u8], format!("{k}:{v}").as_bytes(), false, Tid(tid),
                ).unwrap();
                page.stamp_rec(off, Timestamp::new(v * 20, 0));
            }
        }
        // Pop one version to create garbage, then compact.
        tid += 1;
        version::add_version(&mut page, &[0], b"temp", false, Tid(tid)).unwrap();
        version::pop_newest(&mut page, &[0], Tid(tid)).unwrap();
        let before: Vec<Vec<Vec<u8>>> = (0..page.slot_count())
            .map(|i| version::chain_offsets(&page, i)
                .iter().map(|&o| page.rec_data(o).to_vec()).collect())
            .collect();
        page.compact().unwrap();
        let after: Vec<Vec<Vec<u8>>> = (0..page.slot_count())
            .map(|i| version::chain_offsets(&page, i)
                .iter().map(|&o| page.rec_data(o).to_vec()).collect())
            .collect();
        prop_assert_eq!(before, after);
        prop_assert_eq!(page.frag_space(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// Prefix/suffix delta encoding round-trips for arbitrary byte pairs,
    /// including pathological overlaps (empty, identical, contained).
    #[test]
    fn delta_encoding_round_trips(
        base in proptest::collection::vec(any::<u8>(), 0..300),
        new in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let delta = version::encode_delta(&base, &new);
        let back = version::apply_delta(&base, &delta).unwrap();
        prop_assert_eq!(back, new);
    }

    /// Deltas against a shared prefix/suffix shrink to (roughly) the size
    /// of the differing middle, and still round-trip.
    #[test]
    fn delta_encoding_exploits_overlap(
        prefix in proptest::collection::vec(any::<u8>(), 0..120),
        mid_a in proptest::collection::vec(any::<u8>(), 1..40),
        mid_b in proptest::collection::vec(any::<u8>(), 1..40),
        suffix in proptest::collection::vec(any::<u8>(), 0..120),
    ) {
        let base: Vec<u8> = [prefix.clone(), mid_a, suffix.clone()].concat();
        let new: Vec<u8> = [prefix, mid_b.clone(), suffix].concat();
        let delta = version::encode_delta(&base, &new);
        prop_assert!(
            delta.len() <= mid_b.len() + 20,
            "delta {} bytes vs middle {}", delta.len(), mid_b.len()
        );
        prop_assert_eq!(version::apply_delta(&base, &delta).unwrap(), new);
    }

    /// Packing a chain delta-encoded and materializing it back is
    /// lossless: every version's bytes, timestamp and flags survive.
    #[test]
    fn pack_chain_round_trips(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..120), 1..20),
    ) {
        use immortaldb_storage::version::ChainVersion;
        // Newest-first chain with strictly decreasing timestamps.
        let n = payloads.len() as u64;
        let vers: Vec<ChainVersion> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| ChainVersion {
                data: p.clone(),
                flags: 0,
                ttime: (n - i as u64) * 10,
                sn: 0,
            })
            .collect();
        let mut page = Page::zeroed();
        page.format(PageId(9), PageType::Leaf, FLAG_VERSIONED, 0);
        version::pack_chain_into(&mut page, b"key", &vers).unwrap();
        let (back, _) = version::materialize_chain(&page, 0).unwrap();
        prop_assert_eq!(back.len(), vers.len());
        for (a, b) in back.iter().zip(vers.iter()) {
            prop_assert_eq!(&a.data, &b.data);
            prop_assert_eq!(a.ttime, b.ttime);
        }
    }
}
