//! Singleflight regression tests: concurrent misses on one cold page
//! must collapse into exactly one disk read, and eviction/re-fetch races
//! across shards must never surface a stale or torn page image.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use immortaldb_common::{PageId, Result};
use immortaldb_obs::MetricsRegistry;
use immortaldb_storage::buffer::BufferPool;
use immortaldb_storage::disk::DiskManager;
use immortaldb_storage::page::{Page, PageType};
use immortaldb_storage::vfs::{StdFs, Vfs, VfsFile};
use immortaldb_storage::wal::Wal;

/// A VFS whose data-file reads, once armed, stall until the pool's
/// `buffer.singleflight_waits` counter reaches a target. This pins the
/// race deterministically: the loader thread cannot complete its disk
/// read until every other fetcher has parked on the in-flight token.
struct GateVfs {
    inner: StdFs,
    armed: Arc<AtomicBool>,
    metrics: MetricsRegistry,
    target_waits: u64,
}

struct GateFile {
    inner: Arc<dyn VfsFile>,
    armed: Arc<AtomicBool>,
    metrics: MetricsRegistry,
    target_waits: u64,
}

impl VfsFile for GateFile {
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<()> {
        if self.armed.load(Ordering::SeqCst) {
            let deadline = Instant::now() + Duration::from_secs(10);
            while self.metrics.buffer.singleflight_waits.get() < self.target_waits {
                assert!(
                    Instant::now() < deadline,
                    "fetchers never parked on the in-flight token"
                );
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        self.inner.read_exact_at(buf, offset)
    }
    fn write_all_at(&self, data: &[u8], offset: u64) -> Result<()> {
        self.inner.write_all_at(data, offset)
    }
    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
    fn len(&self) -> Result<u64> {
        self.inner.len()
    }
    fn set_len(&self, len: u64) -> Result<()> {
        self.inner.set_len(len)
    }
}

impl Vfs for GateVfs {
    fn open(&self, path: &Path) -> Result<Arc<dyn VfsFile>> {
        Ok(Arc::new(GateFile {
            inner: self.inner.open(path)?,
            armed: Arc::clone(&self.armed),
            metrics: self.metrics.clone(),
            target_waits: self.target_waits,
        }))
    }
    fn read_file(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        self.inner.read_file(path)
    }
    fn write_file_atomic(&self, path: &Path, data: &[u8]) -> Result<()> {
        self.inner.write_file_atomic(path, data)
    }
    fn remove_file(&self, path: &Path) -> Result<()> {
        self.inner.remove_file(path)
    }
    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

fn temp_pair(name: &str) -> (PathBuf, PathBuf) {
    let mut db = std::env::temp_dir();
    db.push(format!("immortal-sf-{name}-{}.db", std::process::id()));
    let mut wal = std::env::temp_dir();
    wal.push(format!("immortal-sf-{name}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(&wal);
    (db, wal)
}

/// Allocate a page on disk whose single record identifies it (data =
/// page id, repeated), bypassing the pool so it starts cold.
fn write_cold_page(disk: &DiskManager) -> PageId {
    let id = disk.allocate().unwrap();
    let mut page = Page::zeroed();
    page.format(id, PageType::Leaf, 0, 0);
    let tag = (id.0 as u8).wrapping_add(1);
    page.insert_sorted(b"id", &[tag; 32], 0).unwrap();
    disk.write_page(&page).unwrap();
    id
}

fn check_frame(frame: &immortaldb_storage::buffer::Frame, id: PageId) {
    let g = frame.read();
    assert_eq!(g.page_id(), id);
    let tag = (id.0 as u8).wrapping_add(1);
    assert_eq!(g.rec_data(g.slot(0)), &[tag; 32][..]);
}

/// K threads fetching one cold page produce exactly one disk read; the
/// other K-1 park on the singleflight token and share the loaded frame.
#[test]
fn concurrent_cold_fetch_issues_one_disk_read() {
    const K: usize = 8;
    let (db, wal) = temp_pair("cold");
    let metrics = MetricsRegistry::new();
    let armed = Arc::new(AtomicBool::new(false));
    let vfs = Arc::new(GateVfs {
        inner: StdFs,
        armed: Arc::clone(&armed),
        metrics: metrics.clone(),
        target_waits: (K - 1) as u64,
    });
    let (disk, _) = DiskManager::open_with(vfs, &db).unwrap();
    let disk = Arc::new(disk);
    let w = Arc::new(Wal::open(&wal).unwrap());
    let id = write_cold_page(&disk);
    let pool = BufferPool::with_config(Arc::clone(&disk), Arc::clone(&w), 16, 4, metrics.clone());

    let reads_before = metrics.disk.reads.get();
    armed.store(true, Ordering::SeqCst);
    let frames: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..K)
            .map(|_| {
                let pool = &pool;
                scope.spawn(move || pool.fetch(id).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    armed.store(false, Ordering::SeqCst);

    assert_eq!(
        metrics.disk.reads.get() - reads_before,
        1,
        "K concurrent misses must collapse into one disk read"
    );
    assert_eq!(metrics.buffer.misses.get(), 1);
    assert_eq!(metrics.buffer.singleflight_waits.get(), (K - 1) as u64);
    for f in &frames {
        assert!(Arc::ptr_eq(f, &frames[0]), "all fetchers share one frame");
        check_frame(f, id);
    }
    drop(frames);
    drop(pool);
    let _ = std::fs::remove_file(db);
    let _ = std::fs::remove_file(wal);
}

/// Eviction/re-fetch race: a tiny pool thrashing over many clean pages
/// from several threads. Every fetch — whether it hit, waited on an
/// in-flight load, or re-read an evicted page — must return that page's
/// own image, and the pool must stay within capacity bounds.
#[test]
fn eviction_refetch_race_returns_correct_images() {
    const PAGES: u32 = 64;
    const THREADS: u64 = 4;
    const OPS: u32 = 4_000;
    let (db, wal) = temp_pair("evict-race");
    let metrics = MetricsRegistry::new();
    let (disk, _) = DiskManager::open(&db).unwrap();
    let disk = Arc::new(disk);
    let w = Arc::new(Wal::open(&wal).unwrap());
    let ids: Vec<PageId> = (0..PAGES).map(|_| write_cold_page(&disk)).collect();
    // Capacity far below the working set: almost every fetch evicts a
    // clean frame from some shard while other threads re-fetch it.
    let pool = BufferPool::with_config(Arc::clone(&disk), Arc::clone(&w), 8, 8, metrics.clone());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let pool = &pool;
            let ids = &ids;
            scope.spawn(move || {
                let mut rng = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                for _ in 0..OPS {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let id = ids[(rng % ids.len() as u64) as usize];
                    let frame = pool.fetch(id).unwrap();
                    check_frame(&frame, id);
                }
            });
        }
    });

    assert!(
        metrics.disk.reads.get() > PAGES as u64,
        "thrashing must have re-read evicted pages"
    );
    assert_eq!(
        metrics.buffer.fetches.get(),
        THREADS * OPS as u64,
        "every fetch accounted"
    );
    drop(pool);
    let _ = std::fs::remove_file(db);
    let _ = std::fs::remove_file(wal);
}
