//! Property tests for the optimistic page-latch protocol (DESIGN.md
//! §11): the seqlock version counter, torn-copy rejection, the bounded
//! retry loop, and the pessimistic fallback.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use immortaldb_storage::buffer::{BufferPool, FrameRef, OPTIMISTIC_RETRIES};
use immortaldb_storage::disk::DiskManager;
use immortaldb_storage::page::PageType;
use immortaldb_storage::wal::Wal;

fn setup(name: &str, capacity: usize) -> (BufferPool, PathBuf, PathBuf) {
    let mut db = std::env::temp_dir();
    db.push(format!(
        "immortal-latchprop-{name}-{}.db",
        std::process::id()
    ));
    let mut wal = std::env::temp_dir();
    wal.push(format!(
        "immortal-latchprop-{name}-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&db);
    let _ = std::fs::remove_file(&wal);
    let (disk, _) = DiskManager::open(&db).unwrap();
    let w = Arc::new(Wal::open(&wal).unwrap());
    let pool = BufferPool::new(Arc::new(disk), Arc::clone(&w), capacity);
    (pool, db, wal)
}

fn cleanup(db: PathBuf, wal: PathBuf) {
    let _ = std::fs::remove_file(db);
    let _ = std::fs::remove_file(wal);
}

/// A frame with one fixed-size record readers can check for tearing:
/// every byte of the record must always hold the same value.
fn uniform_frame(pool: &BufferPool, len: usize) -> FrameRef {
    let f = pool.new_page(PageType::Leaf, 0, 0).unwrap();
    {
        let mut g = f.write();
        g.insert_sorted(b"torn", &vec![0u8; len], 0).unwrap();
    }
    f
}

/// Seeded multi-threaded stress: a writer rewrites the record's bytes to
/// a new uniform value under the write latch while readers copy it via
/// the optimistic protocol. A torn copy that survived validation would
/// show up as a record with mixed byte values.
fn torn_read_stress(seed: u64, writes: u32, readers: usize, len: usize) {
    let (pool, db, wal) = setup(&format!("torn-{seed}"), 16);
    let frame = uniform_frame(&pool, len);
    let metrics = pool.metrics().clone();
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let frame = &frame;
        let done = &done;
        let metrics = &metrics;
        scope.spawn(move || {
            let mut v = seed as u8;
            for _ in 0..writes {
                let mut g = frame.write();
                let off = g.slot(0);
                g.rec_data_mut(off).fill(v);
                v = v.wrapping_add(1);
            }
            done.store(true, Ordering::Release);
        });
        for _ in 0..readers {
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    let uniform = frame.read_optimistic(metrics, |p| {
                        let d = p.rec_data(p.slot(0));
                        d.iter().all(|b| *b == d[0])
                    });
                    assert!(uniform, "optimistic read observed a torn record");
                }
            });
        }
    });
    drop(frame);
    drop(pool);
    cleanup(db, wal);
}

#[test]
fn no_torn_reads_under_concurrent_writes_seed1() {
    torn_read_stress(0xA11CE, 3_000, 2, 512);
}

#[test]
fn no_torn_reads_under_concurrent_writes_seed2() {
    torn_read_stress(0xB0B, 3_000, 2, 2_048);
}

/// With a writer holding the latch, every `read_optimistic` burns exactly
/// `OPTIMISTIC_RETRIES` attempts and then engages the pessimistic
/// fallback — which blocks until the writer releases and then sees the
/// committed state.
#[test]
fn retry_bound_respected_and_fallback_engages() {
    let (pool, db, wal) = setup("fallback", 16);
    let frame = uniform_frame(&pool, 64);
    let metrics = pool.metrics().clone();
    for round in 1..=3u64 {
        let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();
        std::thread::scope(|scope| {
            let frame = &frame;
            scope.spawn(move || {
                let mut g = frame.write();
                let off = g.slot(0);
                g.rec_data_mut(off).fill(round as u8);
                held_tx.send(()).unwrap();
                // Keep the counter odd long past the (nanosecond-scale)
                // optimistic attempts; the fallback read blocks on the
                // latch until this guard drops.
                std::thread::sleep(std::time::Duration::from_millis(30));
            });
            held_rx.recv().unwrap();
            assert_eq!(frame.latch_version() & 1, 1, "writer must hold the latch");
            let seen = frame.read_optimistic(&metrics, |p| p.rec_data(p.slot(0))[0]);
            assert_eq!(seen, round as u8, "fallback must see the writer's data");
        });
        assert_eq!(
            metrics.latch.optimistic_retries.get(),
            round * OPTIMISTIC_RETRIES as u64,
            "each blocked read burns exactly OPTIMISTIC_RETRIES attempts"
        );
        assert_eq!(metrics.latch.pessimistic_fallbacks.get(), round);
    }
    drop(frame);
    drop(pool);
    cleanup(db, wal);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// Seqlock parity invariant: the counter is even whenever no writer
    /// is active, each write-latch hold advances it by exactly 2, and
    /// optimistic reads succeed between (never during) writes.
    #[test]
    fn version_parity_tracks_writers(ops in proptest::collection::vec(any::<bool>(), 1..60)) {
        let (pool, db, wal) = setup("parity", 16);
        let frame = uniform_frame(&pool, 32);
        let base = frame.latch_version(); // setup already wrote once
        let mut writes = 0u64;
        for do_write in ops {
            if do_write {
                let before = frame.latch_version();
                prop_assert_eq!(before & 1, 0);
                {
                    let mut g = frame.write();
                    prop_assert_eq!(frame.latch_version(), before + 1); // odd: writer active
                    let off = g.slot(0);
                    g.rec_data_mut(off).fill(writes as u8);
                }
                prop_assert_eq!(frame.latch_version(), before + 2);
                writes += 1;
            } else {
                let seen = frame.try_read_optimistic(|p| p.rec_data(p.slot(0))[0]);
                // No writer is active, so the attempt must validate and
                // must see the last committed fill value.
                prop_assert_eq!(seen, Some(writes.saturating_sub(1) as u8));
            }
        }
        prop_assert_eq!(frame.latch_version(), base + writes * 2);
        drop(frame);
        drop(pool);
        cleanup(db, wal);
    }
}
