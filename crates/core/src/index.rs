//! Table index dispatch: every table is backed either by the page-chain
//! B+tree (the paper's implemented design) or by a TSB-tree (§7.2's
//! temporal index, where AS OF descends directly to historical pages).

use std::sync::Arc;

use immortaldb_btree::{
    BTree, CompactionStats, HeadVersion, HistoryStats, HistoryVersion, ScanItem, TemporalVersion,
};
use immortaldb_common::{Error, Lsn, PageId, Result, Tid, Timestamp, TreeId};
use immortaldb_storage::TimestampResolver;
use immortaldb_tsb::TsbTree;

/// Which index structure backs a table (persisted in the catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// B+tree with time-split history page chains (the paper's prototype).
    Chain,
    /// Time-split B-tree: key-time rectangles, direct AS OF access.
    Tsb,
}

/// A handle to a table's index structure.
#[derive(Clone)]
pub enum TableIndex {
    Chain(Arc<BTree>),
    Tsb(Arc<TsbTree>),
}

impl TableIndex {
    pub fn kind(&self) -> IndexKind {
        match self {
            TableIndex::Chain(_) => IndexKind::Chain,
            TableIndex::Tsb(_) => IndexKind::Tsb,
        }
    }

    pub fn tree_id(&self) -> TreeId {
        match self {
            TableIndex::Chain(t) => t.tree_id(),
            TableIndex::Tsb(t) => t.tree_id(),
        }
    }

    fn chain(&self) -> Result<&Arc<BTree>> {
        match self {
            TableIndex::Chain(t) => Ok(t),
            TableIndex::Tsb(_) => Err(Error::Internal(
                "operation requires the page-chain index".into(),
            )),
        }
    }

    /// `(time splits, key splits)` since this handle opened.
    pub fn split_counts(&self) -> (u32, u32) {
        match self {
            TableIndex::Chain(t) => t.split_counts(),
            TableIndex::Tsb(t) => t.split_counts(),
        }
    }

    // -- versioned writes ---------------------------------------------------

    pub fn insert(
        &self,
        tid: Tid,
        prev: Lsn,
        key: &[u8],
        data: &[u8],
        r: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        match self {
            TableIndex::Chain(t) => t.insert(tid, prev, key, data, r),
            TableIndex::Tsb(t) => t.insert(tid, prev, key, data, r),
        }
    }

    /// Insert many rows in one call. On a TSB table, runs of rows landing
    /// on the same leaf are applied under one latch acquisition and one
    /// dirty marking (batched ingest); on a chain table it degrades to a
    /// per-row loop. Rows must be sorted by the caller for the batching
    /// to find runs.
    pub fn insert_batch(
        &self,
        tid: Tid,
        prev: Lsn,
        rows: &[(Vec<u8>, Vec<u8>)],
        r: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        match self {
            TableIndex::Chain(t) => {
                let mut last = prev;
                for (key, data) in rows {
                    last = t.insert(tid, last, key, data, r)?;
                }
                Ok(last)
            }
            TableIndex::Tsb(t) => t.insert_batch(tid, prev, rows, r),
        }
    }

    pub fn update(
        &self,
        tid: Tid,
        prev: Lsn,
        key: &[u8],
        data: &[u8],
        r: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        match self {
            TableIndex::Chain(t) => t.update(tid, prev, key, data, r),
            TableIndex::Tsb(t) => t.update(tid, prev, key, data, r),
        }
    }

    pub fn delete(
        &self,
        tid: Tid,
        prev: Lsn,
        key: &[u8],
        r: &dyn TimestampResolver,
    ) -> Result<Lsn> {
        match self {
            TableIndex::Chain(t) => t.delete(tid, prev, key, r),
            TableIndex::Tsb(t) => t.delete(tid, prev, key, r),
        }
    }

    // -- versioned reads ------------------------------------------------------

    pub fn get_current(
        &self,
        key: &[u8],
        own: Option<Tid>,
        r: &dyn TimestampResolver,
    ) -> Result<Option<Vec<u8>>> {
        match self {
            TableIndex::Chain(t) => t.get_current(key, own, r),
            TableIndex::Tsb(t) => t.get_current(key, own, r),
        }
    }

    pub fn get_as_of(
        &self,
        key: &[u8],
        as_of: Timestamp,
        own: Option<Tid>,
        r: &dyn TimestampResolver,
    ) -> Result<Option<Vec<u8>>> {
        match self {
            TableIndex::Chain(t) => t.get_as_of(key, as_of, own, r),
            TableIndex::Tsb(t) => t.get_as_of(key, as_of, own, r),
        }
    }

    pub fn scan_as_of(
        &self,
        as_of: Timestamp,
        own: Option<Tid>,
        r: &dyn TimestampResolver,
    ) -> Result<Vec<ScanItem>> {
        match self {
            TableIndex::Chain(t) => t.scan_as_of(as_of, own, r),
            TableIndex::Tsb(t) => Ok(t
                .scan_as_of(as_of, own, r)?
                .into_iter()
                .map(|(key, data)| ScanItem { key, data })
                .collect()),
        }
    }

    pub fn scan_current(
        &self,
        own: Option<Tid>,
        r: &dyn TimestampResolver,
    ) -> Result<Vec<ScanItem>> {
        self.scan_as_of(Timestamp::MAX, own, r)
    }

    pub fn head_version(&self, key: &[u8], r: &dyn TimestampResolver) -> Result<HeadVersion> {
        match self {
            TableIndex::Chain(t) => t.head_version(key, r),
            TableIndex::Tsb(t) => t.head_version(key, r),
        }
    }

    /// Time-range scan: every committed version with a timestamp in
    /// `[lo, hi]` plus each key's base version (newest below `lo`). On a
    /// TSB table this is ONE rectangle-filtered index walk that visits
    /// each historical page once; on a chain table each leaf's history
    /// chain is walked once.
    pub fn versions_between(
        &self,
        lo: Timestamp,
        hi: Timestamp,
        r: &dyn TimestampResolver,
    ) -> Result<Vec<TemporalVersion>> {
        match self {
            TableIndex::Chain(t) => t.versions_between(lo, hi, r),
            TableIndex::Tsb(t) => t.versions_between(lo, hi, r),
        }
    }

    pub fn history_of(&self, key: &[u8], r: &dyn TimestampResolver) -> Result<Vec<HistoryVersion>> {
        match self {
            TableIndex::Chain(t) => t.history_of(key, r),
            TableIndex::Tsb(t) => t.history_of(key, r),
        }
    }

    pub fn eager_stamp(
        &self,
        tid: Tid,
        prev: Lsn,
        key: &[u8],
        ts: Timestamp,
    ) -> Result<(Lsn, u32)> {
        match self {
            TableIndex::Chain(t) => t.eager_stamp(tid, prev, key, ts),
            TableIndex::Tsb(t) => t.eager_stamp(tid, prev, key, ts),
        }
    }

    /// Snapshot-version pruning — only snapshot-enabled tables, which are
    /// always chain-indexed.
    pub fn prune_snapshot_versions(&self, key: &[u8], watermark: Timestamp) -> Result<usize> {
        self.chain()?.prune_snapshot_versions(key, watermark)
    }

    /// Vacuum support: stamp every committed TID-marked record.
    pub fn stamp_all(&self, r: &dyn TimestampResolver) -> Result<u64> {
        match self {
            TableIndex::Chain(t) => t.stamp_all(r),
            TableIndex::Tsb(t) => t.stamp_all(r),
        }
    }

    // -- history compaction ---------------------------------------------------

    /// One compaction pass over this table's historical pages.
    pub fn compact_history(&self) -> Result<CompactionStats> {
        match self {
            TableIndex::Chain(t) => t.compact_history(),
            TableIndex::Tsb(t) => t.compact_history(),
        }
    }

    /// Shape of this table's version store.
    pub fn history_stats(&self) -> Result<HistoryStats> {
        match self {
            TableIndex::Chain(t) => t.history_stats(),
            TableIndex::Tsb(t) => t.history_stats(),
        }
    }

    // -- unversioned (conventional) ops ---------------------------------------

    pub fn u_insert(&self, tid: Tid, prev: Lsn, key: &[u8], data: &[u8]) -> Result<Lsn> {
        self.chain()?.u_insert(tid, prev, key, data)
    }

    pub fn u_update(&self, tid: Tid, prev: Lsn, key: &[u8], data: &[u8]) -> Result<Lsn> {
        self.chain()?.u_update(tid, prev, key, data)
    }

    pub fn u_delete(&self, tid: Tid, prev: Lsn, key: &[u8]) -> Result<Lsn> {
        self.chain()?.u_delete(tid, prev, key)
    }

    pub fn u_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.chain()?.u_get(key)
    }

    pub fn u_scan(&self) -> Result<Vec<ScanItem>> {
        self.chain()?.u_scan()
    }

    pub fn u_count(&self) -> Result<usize> {
        self.chain()?.u_count()
    }

    // -- TreeLocator support -----------------------------------------------

    pub fn locate_leaf_page(&self, key: &[u8]) -> Result<PageId> {
        match self {
            TableIndex::Chain(t) => t.locate_leaf_page(key),
            TableIndex::Tsb(t) => t.locate_leaf_page(key),
        }
    }

    pub fn locate_leaf_page_for_insert(
        &self,
        key: &[u8],
        space: usize,
        r: &dyn TimestampResolver,
    ) -> Result<PageId> {
        match self {
            TableIndex::Chain(t) => t.locate_leaf_page_for_insert(key, space, r),
            TableIndex::Tsb(t) => t.locate_leaf_page_for_insert(key, space, r),
        }
    }
}
