//! The transaction handle.
//!
//! Commit processing follows §2.2 stage III: the timestamp is chosen at
//! commit (consistent with serialization order), a single PTT row records
//! the `TID → timestamp` mapping for immortal-table writers, and the
//! updated records themselves are *not* revisited — they are stamped
//! lazily on later access, flush, or time split. The eager baseline mode
//! revisits and logs instead, reproducing the costs §2.2 argues against.

use immortaldb_common::{Lsn, Tid, Timestamp, TreeId, NULL_LSN};

/// Isolation level of a read-write transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// Two-phase locking; reads see the current state and lock it.
    Serializable,
    /// Snapshot isolation: reads AS OF the begin snapshot without locks,
    /// writes take X locks with first-committer-wins conflicts.
    Snapshot,
}

/// When record versions receive their timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimestampingMode {
    /// The paper's scheme: one PTT write at commit, stamping on later
    /// access (unlogged).
    Lazy,
    /// The baseline: revisit and stamp every updated record before the
    /// commit record, logging each stamping.
    Eager,
}

/// A transaction. Obtain from [`crate::Database::begin`] /
/// [`crate::Database::begin_as_of`]; finish with
/// [`crate::Database::commit`] or [`crate::Database::rollback`]. Dropping
/// an unfinished transaction leaks its locks until rollback — the SQL
/// session layer rolls back automatically.
pub struct Transaction {
    pub(crate) tid: Tid,
    pub(crate) last_lsn: Lsn,
    pub(crate) isolation: Isolation,
    /// `Some(ts)` marks a read-only historical (AS OF) transaction.
    pub(crate) as_of: Option<Timestamp>,
    /// Snapshot for SI reads: latest commit timestamp at begin.
    pub(crate) snapshot: Timestamp,
    /// Record versions created (drives the VTT RefCount).
    pub(crate) writes: u64,
    /// Whether any write hit an immortal table (then commit writes a PTT
    /// row).
    pub(crate) wrote_immortal: bool,
    /// Versioned-table keys touched, for the eager baseline's revisit.
    pub(crate) touched: Vec<(TreeId, Vec<u8>)>,
    pub(crate) finished: bool,
    /// Sentinel observation log: hashed reads/writes in execution order,
    /// recorded only when the engine was opened with an event tap armed
    /// (empty and never pushed to otherwise).
    pub(crate) ops: Vec<immortaldb_check::Op>,
}

impl Transaction {
    pub(crate) fn new(tid: Tid, isolation: Isolation, snapshot: Timestamp) -> Transaction {
        Transaction {
            tid,
            last_lsn: NULL_LSN,
            isolation,
            as_of: None,
            snapshot,
            writes: 0,
            wrote_immortal: false,
            touched: Vec::new(),
            finished: false,
            ops: Vec::new(),
        }
    }

    pub(crate) fn new_as_of(tid: Tid, as_of: Timestamp) -> Transaction {
        Transaction {
            tid,
            last_lsn: NULL_LSN,
            isolation: Isolation::Snapshot,
            as_of: Some(as_of),
            snapshot: as_of,
            writes: 0,
            wrote_immortal: false,
            touched: Vec::new(),
            finished: false,
            ops: Vec::new(),
        }
    }

    pub fn tid(&self) -> Tid {
        self.tid
    }

    pub fn isolation(&self) -> Isolation {
        self.isolation
    }

    /// The AS OF timestamp for historical transactions.
    pub fn as_of(&self) -> Option<Timestamp> {
        self.as_of
    }

    pub fn is_read_only(&self) -> bool {
        self.as_of.is_some()
    }

    /// Snapshot this transaction reads at (SI and AS OF transactions).
    pub fn snapshot(&self) -> Timestamp {
        self.snapshot
    }

    /// Number of record versions created so far.
    pub fn write_count(&self) -> u64 {
        self.writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify_transactions() {
        let rw = Transaction::new(Tid(1), Isolation::Serializable, Timestamp::new(20, 0));
        assert!(!rw.is_read_only());
        assert_eq!(rw.as_of(), None);
        assert_eq!(rw.tid(), Tid(1));
        assert_eq!(rw.write_count(), 0);

        let ro = Transaction::new_as_of(Tid(2), Timestamp::new(40, 1));
        assert!(ro.is_read_only());
        assert_eq!(ro.as_of(), Some(Timestamp::new(40, 1)));
        assert_eq!(ro.snapshot(), Timestamp::new(40, 1));
    }
}
