//! The Immortal DB engine: wiring of storage, trees, transactions and
//! timestamping, plus the table-level API the SQL front end drives.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex, RwLock};

use immortaldb_btree::{BTree, CompactionStats, HeadVersion, HistoryStats, SplitTimeSource};
use immortaldb_common::{
    Clock, Error, Lsn, PageId, Result, SystemClock, Tid, Timestamp, TreeId, NULL_LSN,
};
use immortaldb_obs::{MetricsRegistry, MetricsSnapshot};
use immortaldb_storage::buffer::BufferPool;
use immortaldb_storage::disk::DiskManager;
use immortaldb_storage::logrec::LogRecord;
use immortaldb_storage::meta::MetaView;
use immortaldb_storage::recovery::{self, TreeLocator};
use immortaldb_storage::vfs::{std_fs, Vfs};
use immortaldb_storage::wal::{Durability, GroupCommitConfig, Wal, WAL_START};
use immortaldb_txn::{
    CommitHorizon, HorizonSplitSource, LockManager, Ptt, PttGc, StampingFlushHook,
    TimestampAuthority, TxnResolver, Vtt,
};

use crate::catalog::{snapshot_key, SnapshotDef, TableDef, TableKind, SNAPSHOT_KEY_PREFIX};
use crate::index::{IndexKind, TableIndex};
use crate::row::{Schema, Value};
use crate::temporal::{self, DiffRow};
use crate::txn::{Isolation, TimestampingMode, Transaction};

use immortaldb_btree::TemporalVersion;

/// Engine configuration.
pub struct DbConfig {
    /// Directory holding the data file, WAL and master record.
    pub dir: PathBuf,
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    /// Buffer-pool frame-table shards (rounded up to a power of two);
    /// 0 picks an automatic count from the host's parallelism.
    pub pool_shards: usize,
    /// Commit durability (fsync vs OS-buffered).
    pub durability: Durability,
    /// Group-commit barrier tuning (leader/follower shared fsyncs at
    /// commit; only relevant under `Durability::Fsync`). Enabled by
    /// default; disable for strict fsync-per-commit.
    pub group_commit: GroupCommitConfig,
    /// Lazy (the paper) or eager (baseline) timestamping.
    pub timestamping: TimestampingMode,
    /// Lock wait timeout (deadlock backstop).
    pub lock_timeout: Duration,
    /// Wall clock (inject a `SimClock` for deterministic runs).
    pub clock: Arc<dyn Clock>,
    /// Virtual file system the data file, WAL and master record go
    /// through. The default is the real OS filesystem; chaos tests swap
    /// in a fault-injecting wrapper.
    pub vfs: Arc<dyn Vfs>,
    /// Log a full page image just before every buffer-pool write-back so
    /// redo can repair torn (partially written) pages. Off by default:
    /// it roughly doubles write-path log volume.
    pub page_image_logging: bool,
    /// Metrics registry to record into; `None` creates a private one.
    /// Chaos harnesses share a registry between the engine and the fault
    /// VFS so `faults.*` and `recovery.*` land in one snapshot.
    pub metrics: Option<MetricsRegistry>,
    /// Background history-compaction interval; `None` (default) disables
    /// the compactor thread. Ignored on replicas — compaction appends to
    /// the WAL, and a replica's log must stay a prefix of the primary's.
    pub compaction: Option<Duration>,
    /// Isolation-sentinel event tap (see `immortaldb-check`). When set,
    /// the engine records per-transaction read/write observations and
    /// publishes one event per transaction outcome into the ring, plus a
    /// visibility watermark for checker-state pruning. `None` (default)
    /// compiles the taps down to a branch on a never-set option.
    pub sentinel: Option<Arc<immortaldb_check::EventTap>>,
}

impl DbConfig {
    pub fn new(dir: impl AsRef<Path>) -> DbConfig {
        DbConfig {
            dir: dir.as_ref().to_path_buf(),
            pool_pages: 1024,
            pool_shards: 0,
            durability: Durability::Buffered,
            group_commit: GroupCommitConfig::default(),
            timestamping: TimestampingMode::Lazy,
            lock_timeout: Duration::from_secs(5),
            clock: Arc::new(SystemClock),
            vfs: std_fs(),
            page_image_logging: false,
            metrics: None,
            compaction: None,
            sentinel: None,
        }
    }

    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }

    pub fn pool_pages(mut self, n: usize) -> Self {
        self.pool_pages = n;
        self
    }

    pub fn pool_shards(mut self, n: usize) -> Self {
        self.pool_shards = n;
        self
    }

    pub fn durability(mut self, d: Durability) -> Self {
        self.durability = d;
        self
    }

    pub fn group_commit(mut self, cfg: GroupCommitConfig) -> Self {
        self.group_commit = cfg;
        self
    }

    pub fn timestamping(mut self, m: TimestampingMode) -> Self {
        self.timestamping = m;
        self
    }

    pub fn vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    pub fn page_image_logging(mut self, on: bool) -> Self {
        self.page_image_logging = on;
        self
    }

    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    pub fn compaction_interval(mut self, every: Duration) -> Self {
        self.compaction = Some(every);
        self
    }

    pub fn sentinel(mut self, tap: Arc<immortaldb_check::EventTap>) -> Self {
        self.sentinel = Some(tap);
        self
    }
}

/// The database engine.
pub struct Database {
    pub(crate) pool: Arc<BufferPool>,
    pub(crate) wal: Arc<Wal>,
    pub(crate) authority: Arc<TimestampAuthority>,
    /// Issued-but-not-yet-visible commit timestamps; snapshots are taken
    /// below this boundary so they never straddle an in-flight group
    /// commit, and time splits never cut above it (shared with every
    /// tree's split-time source).
    horizon: Arc<CommitHorizon>,
    /// Horizon-aware split-time source shared by every tree.
    split_time: Arc<dyn SplitTimeSource>,
    pub(crate) vtt: Arc<Vtt>,
    pub(crate) ptt: Arc<Ptt>,
    pub(crate) resolver: Arc<TxnResolver>,
    gc: PttGc,
    pub(crate) locks: Arc<LockManager>,
    catalog_tree: Arc<BTree>,
    tables: RwLock<HashMap<String, Arc<TableDef>>>,
    /// Named snapshots (`CREATE SNAPSHOT`): catalog-persisted pins of a
    /// transaction-time timestamp, usable anywhere an AS OF operand is.
    named_snapshots: RwLock<HashMap<String, SnapshotDef>>,
    /// Tree registry, shared with the background compactor thread (which
    /// holds its own `Arc` so it can snapshot the handles each pass).
    trees: Arc<RwLock<HashMap<TreeId, TableIndex>>>,
    next_tid: AtomicU64,
    next_tree: AtomicU32,
    /// Active-transaction table: tid → last LSN (for fuzzy checkpoints).
    active: Mutex<HashMap<Tid, Lsn>>,
    /// Active snapshot reads: snapshot timestamp → count (oldest bounds
    /// snapshot-version GC).
    snapshots: Mutex<std::collections::BTreeMap<Timestamp, usize>>,
    /// Active `AS OF` pins: as-of timestamp → count. Does not feed
    /// `oldest_snapshot` (AS OF reads never block version GC — history is
    /// immortal), but it does bound the sentinel watermark so the checker
    /// keeps enough history to judge in-flight historical readers.
    asof_pins: Mutex<std::collections::BTreeMap<Timestamp, usize>>,
    /// Isolation-sentinel event tap, when armed via [`DbConfig::sentinel`].
    sentinel: Option<Arc<immortaldb_check::EventTap>>,
    timestamping: TimestampingMode,
    durability: Durability,
    /// Read-replica mode: the engine only ever applies a log shipped from
    /// a primary ([`Self::replica_apply`]) and rejects local writes, DDL
    /// and maintenance that would append to the WAL — the local log must
    /// stay a byte-identical prefix of the primary's.
    replica: bool,
    /// Replication horizon (replicas only): the newest primary commit
    /// timestamp whose transaction is known fully applied locally. The
    /// visibility horizon of every replica read.
    repl_horizon: Mutex<Timestamp>,
    /// Background history compactor (when configured): stop flag +
    /// condvar shared with the thread, and its handle, joined on drop.
    compactor_stop: Option<Arc<(Mutex<bool>, Condvar)>>,
    compactor: Option<std::thread::JoinHandle<()>>,
    /// Losers rolled back during the last open (metrics/tests).
    pub recovered_losers: usize,
}

/// One history-compaction pass over a set of tree handles, recording the
/// pass counter and refreshing the `version.bytes_per_version` gauge
/// (fixed-point, ×100) from the post-pass store shape.
fn compaction_pass(trees: &[TableIndex], metrics: &MetricsRegistry) -> Result<CompactionStats> {
    let mut stats = CompactionStats::default();
    let mut shape = HistoryStats::default();
    for t in trees {
        stats.add(t.compact_history()?);
        shape.add(t.history_stats()?);
    }
    metrics.compaction.runs.inc();
    metrics
        .version
        .bytes_per_version
        .set((shape.bytes_per_version() * 100.0) as u64);
    Ok(stats)
}

/// Base of the TID range replicas hand to their (read-only) local
/// transactions, far above anything a primary will ever assign — a
/// replica reader's VTT entry must never shadow a shipped transaction's
/// committed timestamp.
const REPLICA_TID_BASE: u64 = 1 << 48;

impl Database {
    /// Open (or create) a database in `config.dir`, running full crash
    /// recovery (analysis, redo, undo) if the previous run did not shut
    /// down cleanly.
    pub fn open(config: DbConfig) -> Result<Database> {
        Self::open_impl(config, false)
    }

    /// Open a read replica over a WAL prefix shipped from a primary
    /// (`crates/repl` bootstraps the log, then calls this). The engine
    /// replays the shipped log (analysis + redo, no undo: in-flight
    /// primary transactions resolve through later shipped records),
    /// rejects every local write, and serves `AS OF` reads at the
    /// replication horizon maintained by [`Self::replica_apply`].
    pub fn open_replica(config: DbConfig) -> Result<Database> {
        Self::open_impl(config, true)
    }

    fn open_impl(config: DbConfig, replica: bool) -> Result<Database> {
        std::fs::create_dir_all(&config.dir)?;
        let (disk, fresh) =
            DiskManager::open_with(Arc::clone(&config.vfs), config.dir.join("data.idb"))?;
        let disk = Arc::new(disk);
        // One registry for the whole engine: the WAL, buffer pool, lock
        // manager and (via the pool/WAL accessors) trees, resolver and
        // recovery all record into it.
        let metrics = config.metrics.clone().unwrap_or_default();
        let mut wal = Wal::open_with(
            Arc::clone(&config.vfs),
            config.dir.join("wal.log"),
            metrics.clone(),
        )?;
        wal.set_group_commit(config.group_commit);
        let wal = Arc::new(wal);
        let pool = Arc::new(BufferPool::with_config(
            Arc::clone(&disk),
            Arc::clone(&wal),
            config.pool_pages,
            config.pool_shards,
            metrics.clone(),
        ));
        pool.set_page_image_logging(config.page_image_logging);
        let authority = Arc::new(TimestampAuthority::new(Arc::clone(&config.clock)));

        if replica && wal.end_lsn() == WAL_START {
            return Err(Error::Internal(
                "replica open requires a shipped log prefix (bootstrap the WAL from the primary first)".into(),
            ));
        }

        // Analysis + redo (trivial for a fresh database). On a replica
        // this replays the whole shipped prefix onto the (typically
        // empty) local data file.
        let replayed_before = metrics.recovery.records_replayed.get();
        let analysis = recovery::analyze_and_redo(&wal, &pool)?;
        let replayed = metrics.recovery.records_replayed.get() - replayed_before;

        // Restore watermarks: meta page (as of last checkpoint) plus
        // anything later found in the log.
        {
            let meta = pool.fetch(PageId(0))?;
            let g = meta.read();
            MetaView::validate(&g)?;
            authority.restore(MetaView::last_timestamp(&g));
        }
        if let Some(max_committed) = analysis.committed.values().copied().max() {
            authority.restore(max_committed);
        }
        let meta_max_tid = {
            let meta = pool.fetch(PageId(0))?;
            let g = meta.read();
            MetaView::max_tid(&g)
        };
        let mut next_tid = meta_max_tid.0.max(analysis.max_tid.0) + 1;
        if replica {
            // Replica readers register in the VTT; a TID colliding with a
            // shipped (possibly not-yet-committed-here) primary
            // transaction would make that transaction's versions resolve
            // as "active" and vanish from reads.
            next_tid = next_tid.max(REPLICA_TID_BASE);
        }

        let vtt = Arc::new(Vtt::new());
        let horizon = Arc::new(CommitHorizon::new());
        // Time splits must not cut above an issued-but-unretired commit
        // timestamp (its TID-marked versions stay in the current page);
        // the horizon-aware source clamps the split boundary accordingly.
        let split_time: Arc<dyn SplitTimeSource> = Arc::new(HorizonSplitSource::new(
            Arc::clone(&authority),
            Arc::clone(&horizon),
        ));
        // A replica never *creates* system trees — creation appends log
        // records, and the replica's log must stay a byte prefix of the
        // primary's. The shipped prefix contains the primary's creation
        // records, so after redo the trees exist and plain opens succeed.
        let ptt = Arc::new(if fresh && !replica {
            Ptt::create(Arc::clone(&pool), Arc::clone(&wal), Arc::clone(&split_time))?
        } else {
            Ptt::open(Arc::clone(&pool), Arc::clone(&wal), Arc::clone(&split_time))?
        });
        let catalog_tree = Arc::new(if fresh && !replica {
            BTree::create(
                Arc::clone(&pool),
                Arc::clone(&wal),
                TreeId::CATALOG,
                false,
                Arc::clone(&split_time),
            )?
        } else {
            BTree::open(
                Arc::clone(&pool),
                Arc::clone(&wal),
                TreeId::CATALOG,
                false,
                Arc::clone(&split_time),
            )?
        });
        let resolver = Arc::new(TxnResolver::new(
            Arc::clone(&vtt),
            Arc::clone(&ptt),
            Arc::clone(&wal),
        ));
        pool.set_flush_hook(Arc::new(StampingFlushHook::new(Arc::clone(&resolver))));

        // Load the catalog and open one tree handle per table.
        let mut tables = HashMap::new();
        let mut trees: HashMap<TreeId, TableIndex> = HashMap::new();
        trees.insert(TreeId::PTT, TableIndex::Chain(Arc::clone(ptt.tree())));
        trees.insert(
            TreeId::CATALOG,
            TableIndex::Chain(Arc::clone(&catalog_tree)),
        );
        let mut max_tree = TreeId::FIRST_USER.0;
        let mut named_snapshots = HashMap::new();
        for item in catalog_tree.u_scan()? {
            if item.key.first() == Some(&SNAPSHOT_KEY_PREFIX) {
                let snap = SnapshotDef::decode(&item.data)?;
                named_snapshots.insert(snap.name.clone(), snap);
                continue;
            }
            let name = String::from_utf8(item.key.clone())
                .map_err(|_| Error::Corruption("non-UTF8 table name".into()))?;
            let def = Arc::new(TableDef::decode(&name, &item.data)?);
            let handle = match def.index {
                IndexKind::Chain => TableIndex::Chain(Arc::new(BTree::open(
                    Arc::clone(&pool),
                    Arc::clone(&wal),
                    def.tree,
                    def.kind.is_versioned(),
                    Arc::clone(&split_time),
                )?)),
                IndexKind::Tsb => TableIndex::Tsb(Arc::new(immortaldb_tsb::TsbTree::open(
                    Arc::clone(&pool),
                    Arc::clone(&wal),
                    def.tree,
                    Arc::clone(&split_time),
                )?)),
            };
            trees.insert(def.tree, handle);
            max_tree = max_tree.max(def.tree.0 + 1);
            tables.insert(name, def);
        }

        metrics.temporal.snapshots.set(named_snapshots.len() as u64);

        let gc = PttGc::new(Arc::clone(&vtt), Arc::clone(&ptt));
        let db = Database {
            pool,
            wal,
            authority,
            horizon,
            split_time,
            vtt,
            ptt,
            resolver,
            gc,
            locks: Arc::new(LockManager::with_metrics(
                config.lock_timeout,
                metrics.clone(),
            )),
            catalog_tree,
            tables: RwLock::new(tables),
            named_snapshots: RwLock::new(named_snapshots),
            trees: Arc::new(RwLock::new(trees)),
            next_tid: AtomicU64::new(next_tid),
            next_tree: AtomicU32::new(max_tree),
            active: Mutex::new(HashMap::new()),
            snapshots: Mutex::new(std::collections::BTreeMap::new()),
            asof_pins: Mutex::new(std::collections::BTreeMap::new()),
            sentinel: config.sentinel.clone(),
            timestamping: config.timestamping,
            durability: config.durability,
            replica,
            repl_horizon: Mutex::new(Timestamp::ZERO),
            compactor_stop: None,
            compactor: None,
            recovered_losers: 0,
        };

        if replica {
            // No undo: transactions open at the end of the shipped prefix
            // are the primary's in-flight writers, and their outcomes
            // arrive through later shipped records. No checkpoint either
            // (it would append local records). Reads stay correct because
            // visibility is bounded by the replication horizon, which
            // never covers an unresolved transaction.
            return Ok(db);
        }

        // Undo pass: roll back losers (requires the tree registry).
        let mut db = db;
        db.recovered_losers = recovery::undo(&db.wal, &db.pool, &db, &analysis.att)?;
        // The open counts as a crash recovery when the log had work to
        // repeat or losers to roll back. A clean shutdown's log ends at
        // its CheckpointEnd with an empty ATT — redo may still re-apply
        // the checkpoint's own page images, so that case is excluded.
        let clean_shutdown = analysis.ends_at_checkpoint && analysis.att.is_empty();
        if !clean_shutdown && (replayed > 0 || db.recovered_losers > 0) {
            metrics.recovery.crash_recoveries.inc();
        }
        // Post-recovery checkpoint establishes a fresh redo scan start.
        db.checkpoint()?;
        // The checkpoint flushed every dirty page, so the data file now
        // reflects any `Free` images a pre-crash compaction logged —
        // rebuild the allocator's free list from it.
        db.pool.disk().reload_free_list()?;
        if let Some(every) = config.compaction {
            db.start_compactor(every);
        }
        Ok(db)
    }

    /// Spawn the background history compactor: every `every`, snapshot
    /// the tree registry and run one compaction pass over each table.
    /// Per-pass errors are dropped — compaction is advisory maintenance
    /// and the next pass retries from scratch.
    fn start_compactor(&mut self, every: Duration) {
        let trees = Arc::clone(&self.trees);
        let metrics = self.metrics().clone();
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("immortal-compactor".into())
            .spawn(move || {
                let (lock, cvar) = &*stop2;
                loop {
                    let mut stopped = lock.lock();
                    if *stopped {
                        break;
                    }
                    cvar.wait_for(&mut stopped, every);
                    if *stopped {
                        break;
                    }
                    drop(stopped);
                    let handles: Vec<TableIndex> = trees.read().values().cloned().collect();
                    let _ = compaction_pass(&handles, &metrics);
                }
            })
            .expect("spawn compactor thread");
        self.compactor_stop = Some(stop);
        self.compactor = Some(handle);
    }

    // -- accessors ---------------------------------------------------------

    pub fn authority(&self) -> &Arc<TimestampAuthority> {
        &self.authority
    }

    /// Engine-wide metrics registry (shared by every layer).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.pool.metrics()
    }

    /// Point-in-time snapshot of every metric (what `SHOW STATS` renders).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.pool.metrics().snapshot()
    }

    /// The armed sentinel event tap, if any (see [`DbConfig::sentinel`]).
    pub fn sentinel_tap(&self) -> Option<&Arc<immortaldb_check::EventTap>> {
        self.sentinel.as_ref()
    }

    /// Number of frame-table shards the buffer pool resolved to.
    pub fn pool_shards(&self) -> usize {
        self.pool.shard_count()
    }

    /// Current wall-clock time (through the injected clock).
    pub fn now_ms(&self) -> u64 {
        self.authority.now_ms()
    }

    /// Latest issued commit timestamp.
    pub fn latest_ts(&self) -> Timestamp {
        self.authority.latest()
    }

    /// Persistent timestamp table size (experiments).
    pub fn ptt_len(&self) -> Result<usize> {
        self.ptt.len()
    }

    /// All PTT rows as `(tid, commit timestamp)` pairs (chaos-test
    /// invariant checks: only committed transactions may appear here).
    pub fn ptt_entries(&self) -> Result<Vec<(Tid, Timestamp)>> {
        self.ptt.entries()
    }

    /// Volatile timestamp table size (experiments).
    pub fn vtt_len(&self) -> usize {
        self.vtt.len()
    }

    /// Bytes written to the log so far (experiments).
    pub fn log_bytes(&self) -> u64 {
        self.wal.end_lsn().0
    }

    /// `(time splits, key splits)` across all user tables.
    pub fn split_counts(&self) -> (u32, u32) {
        let trees = self.trees.read();
        let mut t = 0;
        let mut k = 0;
        for handle in trees.values() {
            let (a, b) = handle.split_counts();
            t += a;
            k += b;
        }
        (t, k)
    }

    pub(crate) fn tree_handle(&self, tree: TreeId) -> Result<TableIndex> {
        self.trees
            .read()
            .get(&tree)
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("{tree:?} not registered")))
    }

    /// Table definition by name.
    pub fn table(&self, name: &str) -> Result<Arc<TableDef>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Catalog(format!("unknown table {name}")))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    // -- DDL ---------------------------------------------------------------

    /// Create a table (`CREATE [IMMORTAL] TABLE`) on the default
    /// page-chain index. DDL is not transactional: it is logged as system
    /// actions and survives crashes, but cannot be rolled back.
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        kind: TableKind,
    ) -> Result<Arc<TableDef>> {
        self.create_table_with(name, schema, kind, IndexKind::Chain)
    }

    /// Create a table on an explicit index structure
    /// (`CREATE IMMORTAL TABLE … USING TSB` selects the TSB-tree).
    pub fn create_table_with(
        &self,
        name: &str,
        schema: Schema,
        kind: TableKind,
        index: IndexKind,
    ) -> Result<Arc<TableDef>> {
        if self.replica {
            return Err(Error::ReplicaReadOnly);
        }
        if index == IndexKind::Tsb && kind != TableKind::Immortal {
            return Err(Error::Catalog(
                "the TSB-tree index requires an IMMORTAL table".into(),
            ));
        }
        let mut tables = self.tables.write();
        if tables.contains_key(name) {
            return Err(Error::Catalog(format!("table {name} already exists")));
        }
        let tree = TreeId(self.next_tree.fetch_add(1, Ordering::SeqCst));
        let handle = match index {
            IndexKind::Chain => TableIndex::Chain(Arc::new(BTree::create(
                Arc::clone(&self.pool),
                Arc::clone(&self.wal),
                tree,
                kind.is_versioned(),
                Arc::clone(&self.split_time),
            )?)),
            IndexKind::Tsb => TableIndex::Tsb(Arc::new(immortaldb_tsb::TsbTree::create(
                Arc::clone(&self.pool),
                Arc::clone(&self.wal),
                tree,
                Arc::clone(&self.split_time),
            )?)),
        };
        let def = Arc::new(TableDef {
            name: name.to_string(),
            tree,
            kind,
            index,
            schema,
        });
        self.catalog_tree
            .u_insert(Tid::SYSTEM, NULL_LSN, name.as_bytes(), &def.encode())?;
        self.trees.write().insert(tree, handle);
        tables.insert(name.to_string(), Arc::clone(&def));
        Ok(def)
    }

    /// Enable snapshot versioning on an *empty* conventional table
    /// (`ALTER TABLE … ENABLE SNAPSHOT`). Converting populated tables
    /// would require rewriting record formats and is out of scope.
    pub fn enable_snapshot(&self, name: &str) -> Result<()> {
        if self.replica {
            return Err(Error::ReplicaReadOnly);
        }
        let def = self.table(name)?;
        if def.kind != TableKind::Conventional {
            return Ok(()); // already versioned
        }
        let handle = self.tree_handle(def.tree)?;
        if handle.u_count()? != 0 {
            return Err(Error::Catalog(format!(
                "cannot enable snapshot versioning on non-empty table {name}"
            )));
        }
        // Swap in a fresh versioned tree under a new TreeId.
        let tree = TreeId(self.next_tree.fetch_add(1, Ordering::SeqCst));
        let new_handle = TableIndex::Chain(Arc::new(BTree::create(
            Arc::clone(&self.pool),
            Arc::clone(&self.wal),
            tree,
            true,
            Arc::clone(&self.split_time),
        )?));
        let new_def = Arc::new(TableDef {
            name: def.name.clone(),
            tree,
            kind: TableKind::SnapshotEnabled,
            index: IndexKind::Chain,
            schema: def.schema.clone(),
        });
        self.catalog_tree
            .u_update(Tid::SYSTEM, NULL_LSN, name.as_bytes(), &new_def.encode())?;
        self.trees.write().insert(tree, new_handle);
        self.tables.write().insert(name.to_string(), new_def);
        Ok(())
    }

    // -- named snapshots -----------------------------------------------------

    /// `CREATE SNAPSHOT name [AS OF …]`: pin a transaction-time
    /// timestamp under a stable name. With no explicit time the current
    /// visibility horizon is pinned; an explicit time is clamped to the
    /// horizon exactly like `BEGIN TRAN AS OF`. The pin is persisted in
    /// the catalog, so it survives restarts and ships to replicas
    /// through the WAL like any other catalog change.
    pub fn create_named_snapshot(&self, name: &str, ts: Option<Timestamp>) -> Result<SnapshotDef> {
        if self.replica {
            return Err(Error::ReplicaReadOnly);
        }
        let mut snaps = self.named_snapshots.write();
        if snaps.contains_key(name) {
            return Err(Error::Temporal(format!("snapshot {name} already exists")));
        }
        let horizon = self.visible_horizon();
        let def = SnapshotDef {
            name: name.to_string(),
            ts: ts.unwrap_or(horizon).min(horizon),
            created_ms: self.now_ms(),
        };
        self.catalog_tree
            .u_insert(Tid::SYSTEM, NULL_LSN, &snapshot_key(name), &def.encode())?;
        snaps.insert(name.to_string(), def.clone());
        self.metrics().temporal.snapshots.set(snaps.len() as u64);
        Ok(def)
    }

    /// `DROP SNAPSHOT name`: unpin a named snapshot. The history it
    /// pointed at remains queryable by timestamp — only the name goes.
    pub fn drop_named_snapshot(&self, name: &str) -> Result<()> {
        if self.replica {
            return Err(Error::ReplicaReadOnly);
        }
        let mut snaps = self.named_snapshots.write();
        if snaps.remove(name).is_none() {
            return Err(Error::UnknownSnapshot(name.to_string()));
        }
        self.catalog_tree
            .u_delete(Tid::SYSTEM, NULL_LSN, &snapshot_key(name))?;
        self.metrics().temporal.snapshots.set(snaps.len() as u64);
        Ok(())
    }

    /// The pinned timestamp behind a snapshot name.
    pub fn resolve_snapshot(&self, name: &str) -> Result<SnapshotDef> {
        self.named_snapshots
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnknownSnapshot(name.to_string()))
    }

    /// All named snapshots, name-ascending (`SHOW SNAPSHOTS`).
    pub fn list_snapshots(&self) -> Vec<SnapshotDef> {
        let mut v: Vec<SnapshotDef> = self.named_snapshots.read().values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    // -- transaction lifecycle ----------------------------------------------

    /// Newest timestamp at which a reader sees a stable world: every
    /// commit at or below it is visible, and none newer can appear below
    /// it later (in-flight group-committed transactions are all above).
    pub fn visible_horizon(&self) -> Timestamp {
        if self.replica {
            // Shipped Commit records arrive in *log* order, which is not
            // timestamp order across the group-commit pipeline, so
            // `authority.latest()` may name a commit whose smaller-ts
            // sibling is still in flight on the primary. The replication
            // horizon — sampled on the primary before the batch bytes —
            // is the newest timestamp with no such gap.
            return *self.repl_horizon.lock();
        }
        self.horizon.snapshot(&self.authority)
    }

    /// Begin a read-write transaction.
    pub fn begin(&self, isolation: Isolation) -> Transaction {
        let tid = Tid(self.next_tid.fetch_add(1, Ordering::SeqCst));
        self.vtt.begin(tid);
        // Snapshot below the commit-visibility horizon, *not* at
        // `authority.latest()`: a timestamp issued to a commit still in
        // the group-commit pipeline must stay invisible to this snapshot
        // forever, or the same read would change mid-transaction. (On a
        // replica `visible_horizon()` is the replication horizon.)
        let snapshot = self.visible_horizon();
        if isolation == Isolation::Snapshot {
            *self.snapshots.lock().entry(snapshot).or_insert(0) += 1;
        }
        self.publish_watermark();
        Transaction::new(tid, isolation, snapshot)
    }

    /// Begin a read-only historical transaction (`BEGIN TRAN AS OF …`).
    /// `as_of` is a wall-clock millisecond value; every transaction that
    /// committed within or before its 20 ms tick is visible. Requests at
    /// (or past) the current time are clamped to the visibility horizon
    /// so the view cannot change while the transaction reads it.
    pub fn begin_as_of(&self, as_of_ms: u64) -> Transaction {
        self.begin_as_of_ts(Timestamp::as_of_clock(as_of_ms))
    }

    /// Begin a read-only transaction at an exact timestamp (clamped to
    /// the visibility horizon like [`Self::begin_as_of`]).
    pub fn begin_as_of_ts(&self, as_of: Timestamp) -> Transaction {
        let tid = Tid(self.next_tid.fetch_add(1, Ordering::SeqCst));
        let txn = Transaction::new_as_of(tid, as_of.min(self.visible_horizon()));
        if self.sentinel.is_some() {
            // Pin the as-of instant so the sentinel watermark cannot
            // advance past a running historical reader (the checker would
            // prune the history needed to judge its reads).
            *self.asof_pins.lock().entry(txn.snapshot).or_insert(0) += 1;
            self.publish_watermark();
        }
        txn
    }

    fn ensure_begin_logged(&self, txn: &mut Transaction) {
        if txn.last_lsn.is_null() {
            let lsn = self.wal.append(txn.tid, NULL_LSN, &LogRecord::Begin);
            txn.last_lsn = lsn;
            self.active.lock().insert(txn.tid, lsn);
        }
    }

    fn ensure_writable(&self, txn: &Transaction) -> Result<()> {
        if txn.finished {
            return Err(Error::UnknownTransaction(txn.tid));
        }
        if self.replica {
            return Err(Error::ReplicaReadOnly);
        }
        if txn.is_read_only() {
            return Err(Error::ReadOnlyTransaction);
        }
        Ok(())
    }

    /// Commit: choose the timestamp (stage III), write the PTT row for
    /// immortal writers, log Commit + End, flush. Returns the commit
    /// timestamp (the begin snapshot for read-only transactions).
    pub fn commit(&self, txn: &mut Transaction) -> Result<Timestamp> {
        if txn.finished {
            return Err(Error::UnknownTransaction(txn.tid));
        }
        txn.finished = true;
        if txn.last_lsn.is_null() {
            // Read-only (or no-op): nothing logged, nothing to make
            // durable.
            self.tap_event(txn, None, false);
            self.finish_bookkeeping(txn);
            self.vtt.remove(txn.tid);
            return Ok(txn.snapshot);
        }
        // Issue the commit timestamp through the horizon so concurrent
        // `begin()`s keep their snapshots below us until we are visible.
        let ts = self.horizon.issue(&self.authority);
        match self.commit_inner(txn, ts) {
            Ok(()) => {
                // Publish the commit event *before* retiring: any reader
                // whose snapshot covers `ts` samples the horizon after
                // the retire, so its event lands later in ring order and
                // the checker always knows this version first.
                self.tap_event(txn, Some(ts), false);
                // Visible (VTT entry made after the group fsync): let the
                // horizon advance past us.
                self.horizon.retire(ts);
                Ok(ts)
            }
            Err(e) => {
                // A commit-path failure (I/O, PTT insert, failed group
                // batch) must not leak locks or leave the transaction
                // half-visible: roll it back like an abort. Retire the
                // timestamp only afterwards — and unconditionally, or the
                // horizon would wedge every future snapshot in the past.
                self.vtt.abort(txn.tid);
                let _ = recovery::rollback_txn(&self.wal, &self.pool, self, txn.tid, txn.last_lsn);
                self.vtt.remove(txn.tid);
                self.tap_event(txn, None, true);
                self.finish_bookkeeping(txn);
                self.horizon.retire(ts);
                Err(e)
            }
        }
    }

    fn commit_inner(&self, txn: &mut Transaction, ts: Timestamp) -> Result<()> {
        let mut in_ptt = false;
        match self.timestamping {
            TimestampingMode::Eager => {
                // Revisit every updated record before commit: stamp + log.
                let mut seen = std::collections::HashSet::new();
                let touched = std::mem::take(&mut txn.touched);
                for (tree, key) in touched {
                    if !seen.insert((tree, key.clone())) {
                        continue;
                    }
                    let handle = self.tree_handle(tree)?;
                    let (lsn, n) = handle.eager_stamp(txn.tid, txn.last_lsn, &key, ts)?;
                    txn.last_lsn = lsn;
                    if n > 0 {
                        self.vtt.note_stamped(txn.tid, n as u64, self.wal.end_lsn());
                    }
                }
            }
            TimestampingMode::Lazy => {
                if txn.wrote_immortal {
                    txn.last_lsn = self.ptt.insert(txn.tid, ts, txn.last_lsn)?;
                    self.metrics().ts.ptt_inserts.inc();
                    in_ptt = true;
                }
            }
        }
        let clsn = self
            .wal
            .append(txn.tid, txn.last_lsn, &LogRecord::Commit { ts });
        let elsn = self.wal.append(txn.tid, clsn, &LogRecord::End);
        // Park on the group-commit barrier until a leader's fsync covers
        // our End record (first byte past its start: buffer writes are
        // whole-record, so covering that byte covers the record — and
        // unlike `end_lsn()`, it doesn't grow with other transactions'
        // concurrent appends). Locks are released and the VTT entry
        // committed only after this returns: lazy timestamping order
        // keeps matching serialization order, and nothing becomes
        // visible before it is durable.
        self.wal.commit_durable(Lsn(elsn.0 + 1), self.durability)?;
        self.vtt.commit(txn.tid, ts, in_ptt, self.wal.end_lsn());
        self.finish_bookkeeping(txn);
        Ok(())
    }

    /// Roll back: undo the transaction's operations (writing CLRs), then
    /// release everything.
    pub fn rollback(&self, txn: &mut Transaction) -> Result<()> {
        if txn.finished {
            return Err(Error::UnknownTransaction(txn.tid));
        }
        txn.finished = true;
        if !txn.last_lsn.is_null() {
            self.vtt.abort(txn.tid);
            recovery::rollback_txn(&self.wal, &self.pool, self, txn.tid, txn.last_lsn)?;
        }
        self.vtt.remove(txn.tid);
        self.tap_event(txn, None, true);
        self.finish_bookkeeping(txn);
        Ok(())
    }

    /// Publish this transaction's outcome (plus its recorded read/write
    /// observations) to the sentinel tap, if one is armed. Skipped when
    /// nothing was observed — an empty event carries no checkable facts.
    fn tap_event(&self, txn: &mut Transaction, commit: Option<Timestamp>, aborted: bool) {
        if let Some(tap) = &self.sentinel {
            if txn.ops.is_empty() {
                return;
            }
            tap.push(immortaldb_check::TxnEvent {
                tid: txn.tid.0,
                si: txn.isolation == Isolation::Snapshot,
                snapshot: txn.snapshot,
                commit,
                aborted,
                ops: std::mem::take(&mut txn.ops),
            });
        }
    }

    /// Advance the sentinel watermark to the oldest instant any live
    /// reader can still consult: the minimum of the visibility horizon,
    /// the oldest registered SI snapshot, and the oldest AS OF pin. The
    /// tap keeps it monotonic, so racing publishers are harmless.
    fn publish_watermark(&self) {
        if let Some(tap) = &self.sentinel {
            let mut wm = self.visible_horizon();
            if let Some(s) = self.snapshots.lock().keys().next() {
                wm = wm.min(*s);
            }
            if let Some(p) = self.asof_pins.lock().keys().next() {
                wm = wm.min(*p);
            }
            tap.set_watermark(wm);
        }
    }

    fn finish_bookkeeping(&self, txn: &Transaction) {
        self.locks.release_all(txn.tid);
        self.active.lock().remove(&txn.tid);
        if txn.isolation == Isolation::Snapshot && txn.as_of.is_none() {
            let mut snaps = self.snapshots.lock();
            if let Some(n) = snaps.get_mut(&txn.snapshot) {
                *n -= 1;
                if *n == 0 {
                    snaps.remove(&txn.snapshot);
                }
            }
        }
        if self.sentinel.is_some() {
            if txn.as_of.is_some() {
                let mut pins = self.asof_pins.lock();
                if let Some(n) = pins.get_mut(&txn.snapshot) {
                    *n -= 1;
                    if *n == 0 {
                        pins.remove(&txn.snapshot);
                    }
                }
            }
            self.publish_watermark();
        }
    }

    /// Oldest snapshot any active transaction may read (bounds
    /// snapshot-version GC).
    pub fn oldest_snapshot(&self) -> Timestamp {
        self.snapshots
            .lock()
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.authority.latest())
    }

    // -- DML ----------------------------------------------------------------

    /// Insert a full row.
    pub fn insert_row(&self, txn: &mut Transaction, table: &str, values: Vec<Value>) -> Result<()> {
        let def = self.table(table)?;
        self.ensure_writable(txn)?;
        let values = def.schema.check_row(&values)?;
        let key = def.schema.key_of_row(&values)?;
        let data = def.schema.encode_row(&values);
        self.locks.lock_write(txn.tid, def.tree, &key)?;
        self.ensure_begin_logged(txn);
        let handle = self.tree_handle(def.tree)?;
        if def.kind.is_versioned() {
            txn.last_lsn =
                handle.insert(txn.tid, txn.last_lsn, &key, &data, self.resolver.as_ref())?;
            self.tap_write(txn, def.tree, &key, &data);
            self.note_write(txn, &def, key);
        } else {
            txn.last_lsn = handle.u_insert(txn.tid, txn.last_lsn, &key, &data)?;
        }
        self.active.lock().insert(txn.tid, txn.last_lsn);
        Ok(())
    }

    /// Insert many full rows in one call (batched ingest). Rows are
    /// encoded, locked, sorted by key and handed to the index as one
    /// batch; on a TSB table, runs landing on the same leaf are applied
    /// under a single latch acquisition and dirty marking. Atomicity is
    /// the transaction's, as with per-row inserts: a mid-batch error
    /// (duplicate key, write conflict) leaves earlier rows applied and
    /// the caller rolls the transaction back.
    pub fn insert_rows(
        &self,
        txn: &mut Transaction,
        table: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<()> {
        let def = self.table(table)?;
        self.ensure_writable(txn)?;
        let mut encoded: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(rows.len());
        for values in rows {
            let values = def.schema.check_row(&values)?;
            let key = def.schema.key_of_row(&values)?;
            let data = def.schema.encode_row(&values);
            encoded.push((key, data));
        }
        encoded.sort_by(|a, b| a.0.cmp(&b.0));
        for (key, _) in &encoded {
            self.locks.lock_write(txn.tid, def.tree, key)?;
        }
        self.ensure_begin_logged(txn);
        let handle = self.tree_handle(def.tree)?;
        if def.kind.is_versioned() {
            txn.last_lsn =
                handle.insert_batch(txn.tid, txn.last_lsn, &encoded, self.resolver.as_ref())?;
            for (key, data) in encoded {
                self.tap_write(txn, def.tree, &key, &data);
                self.note_write(txn, &def, key);
            }
        } else {
            for (key, data) in &encoded {
                txn.last_lsn = handle.u_insert(txn.tid, txn.last_lsn, key, data)?;
            }
        }
        self.active.lock().insert(txn.tid, txn.last_lsn);
        Ok(())
    }

    /// Replace the row with primary key `values[pk]` by `values`.
    pub fn update_row(&self, txn: &mut Transaction, table: &str, values: Vec<Value>) -> Result<()> {
        let def = self.table(table)?;
        self.ensure_writable(txn)?;
        let values = def.schema.check_row(&values)?;
        let key = def.schema.key_of_row(&values)?;
        let data = def.schema.encode_row(&values);
        self.locks.lock_write(txn.tid, def.tree, &key)?;
        self.ensure_begin_logged(txn);
        let handle = self.tree_handle(def.tree)?;
        if def.kind.is_versioned() {
            self.check_first_committer(txn, &handle, &key)?;
            txn.last_lsn =
                handle.update(txn.tid, txn.last_lsn, &key, &data, self.resolver.as_ref())?;
            self.tap_write(txn, def.tree, &key, &data);
            self.note_write(txn, &def, key.clone());
            if def.kind == TableKind::SnapshotEnabled {
                handle.prune_snapshot_versions(&key, self.oldest_snapshot())?;
            }
        } else {
            txn.last_lsn = handle.u_update(txn.tid, txn.last_lsn, &key, &data)?;
        }
        self.active.lock().insert(txn.tid, txn.last_lsn);
        Ok(())
    }

    /// Delete the row with primary key `pk`.
    pub fn delete_row(&self, txn: &mut Transaction, table: &str, pk: &Value) -> Result<()> {
        let def = self.table(table)?;
        self.ensure_writable(txn)?;
        let pk = pk.coerce(def.schema.columns[def.schema.pk].ctype)?;
        let key = crate::row::encode_key(&pk)?;
        self.locks.lock_write(txn.tid, def.tree, &key)?;
        self.ensure_begin_logged(txn);
        let handle = self.tree_handle(def.tree)?;
        if def.kind.is_versioned() {
            self.check_first_committer(txn, &handle, &key)?;
            txn.last_lsn = handle.delete(txn.tid, txn.last_lsn, &key, self.resolver.as_ref())?;
            if self.sentinel.is_some() {
                txn.ops.push(immortaldb_check::Op::Delete {
                    key: immortaldb_check::hash_key(def.tree.0, &key),
                });
            }
            self.note_write(txn, &def, key);
        } else {
            txn.last_lsn = handle.u_delete(txn.tid, txn.last_lsn, &key)?;
        }
        self.active.lock().insert(txn.tid, txn.last_lsn);
        Ok(())
    }

    /// Record a versioned-table write in the sentinel observation log
    /// (hashes only — the tap never retains row payloads).
    fn tap_write(&self, txn: &mut Transaction, tree: TreeId, key: &[u8], data: &[u8]) {
        if self.sentinel.is_some() {
            txn.ops.push(immortaldb_check::Op::Write {
                key: immortaldb_check::hash_key(tree.0, key),
                value: immortaldb_check::hash_value(data),
            });
        }
    }

    /// Record a snapshot-governed read (point or scan element) in the
    /// sentinel observation log. Serializable reads are excluded — they
    /// observe the locked current state, which the begin snapshot says
    /// nothing about.
    fn tap_read(&self, txn: &mut Transaction, tree: TreeId, key: &[u8], data: Option<&[u8]>) {
        if self.sentinel.is_some() {
            let kh = immortaldb_check::hash_key(tree.0, key);
            txn.ops.push(match data {
                Some(d) => immortaldb_check::Op::Read {
                    key: kh,
                    value: immortaldb_check::hash_value(d),
                },
                None => immortaldb_check::Op::ReadMiss { key: kh },
            });
        }
    }

    fn note_write(&self, txn: &mut Transaction, def: &TableDef, key: Vec<u8>) {
        txn.writes += 1;
        self.vtt.add_pending(txn.tid, 1);
        if def.kind == TableKind::Immortal {
            txn.wrote_immortal = true;
        }
        if self.timestamping == TimestampingMode::Eager {
            txn.touched.push((def.tree, key));
        }
    }

    /// Snapshot isolation first-committer-wins: abort the writer if the
    /// newest committed version postdates its snapshot. (Serializable
    /// transactions rely on two-phase locking instead.)
    fn check_first_committer(
        &self,
        txn: &Transaction,
        handle: &TableIndex,
        key: &[u8],
    ) -> Result<()> {
        if txn.isolation != Isolation::Snapshot {
            return Ok(());
        }
        match handle.head_version(key, self.resolver.as_ref())? {
            HeadVersion::Committed { ts, .. } if ts > txn.snapshot => {
                Err(Error::WriteConflict(txn.tid))
            }
            HeadVersion::Uncommitted { tid, .. } if tid != txn.tid => {
                // The X lock should have excluded this.
                Err(Error::WriteConflict(txn.tid))
            }
            _ => Ok(()),
        }
    }

    /// Point read by primary key.
    pub fn get_row(
        &self,
        txn: &mut Transaction,
        table: &str,
        pk: &Value,
    ) -> Result<Option<Vec<Value>>> {
        let def = self.table(table)?;
        let pk = pk.coerce(def.schema.columns[def.schema.pk].ctype)?;
        let key = crate::row::encode_key(&pk)?;
        let handle = self.tree_handle(def.tree)?;
        let data = if let Some(as_of) = txn.as_of {
            self.check_as_of_allowed(&def)?;
            handle.get_as_of(&key, as_of, None, self.resolver.as_ref())?
        } else if def.kind.is_versioned() {
            match txn.isolation {
                Isolation::Serializable => {
                    self.locks.lock_read(txn.tid, def.tree, &key)?;
                    handle.get_current(&key, Some(txn.tid), self.resolver.as_ref())?
                }
                Isolation::Snapshot => {
                    handle.get_as_of(&key, txn.snapshot, Some(txn.tid), self.resolver.as_ref())?
                }
            }
        } else {
            if txn.isolation == Isolation::Serializable {
                self.locks.lock_read(txn.tid, def.tree, &key)?;
            }
            handle.u_get(&key)?
        };
        if def.kind.is_versioned() && (txn.as_of.is_some() || txn.isolation == Isolation::Snapshot)
        {
            self.tap_read(txn, def.tree, &key, data.as_deref());
        }
        data.map(|d| def.schema.decode_row(&d)).transpose()
    }

    /// Full-table scan (current, snapshot, or AS OF depending on the
    /// transaction).
    pub fn scan_rows(&self, txn: &mut Transaction, table: &str) -> Result<Vec<Vec<Value>>> {
        let def = self.table(table)?;
        let handle = self.tree_handle(def.tree)?;
        let items = if let Some(as_of) = txn.as_of {
            self.check_as_of_allowed(&def)?;
            handle.scan_as_of(as_of, None, self.resolver.as_ref())?
        } else if def.kind.is_versioned() {
            match txn.isolation {
                Isolation::Serializable => {
                    self.locks.lock_scan(txn.tid, def.tree)?;
                    handle.scan_current(Some(txn.tid), self.resolver.as_ref())?
                }
                Isolation::Snapshot => {
                    handle.scan_as_of(txn.snapshot, Some(txn.tid), self.resolver.as_ref())?
                }
            }
        } else {
            if txn.isolation == Isolation::Serializable {
                self.locks.lock_scan(txn.tid, def.tree)?;
            }
            handle.u_scan()?
        };
        if def.kind.is_versioned() && (txn.as_of.is_some() || txn.isolation == Isolation::Snapshot)
        {
            for item in &items {
                self.tap_read(txn, def.tree, &item.key, Some(&item.data));
            }
        }
        items
            .into_iter()
            .map(|item| def.schema.decode_row(&item.data))
            .collect()
    }

    fn check_as_of_allowed(&self, def: &TableDef) -> Result<()> {
        if def.kind != TableKind::Immortal {
            return Err(Error::Catalog(format!(
                "AS OF queries require an IMMORTAL table; {} is {:?}",
                def.name, def.kind
            )));
        }
        Ok(())
    }

    /// Complete version history of a row (time travel). Returns
    /// `(commit timestamp, row)` pairs, newest first; `None` rows mark
    /// deletions, a `None` timestamp marks an uncommitted version.
    #[allow(clippy::type_complexity)]
    pub fn history_rows(
        &self,
        table: &str,
        pk: &Value,
    ) -> Result<Vec<(Option<Timestamp>, Option<Vec<Value>>)>> {
        let def = self.table(table)?;
        self.check_as_of_allowed(&def)?;
        let pk = pk.coerce(def.schema.columns[def.schema.pk].ctype)?;
        let key = crate::row::encode_key(&pk)?;
        let handle = self.tree_handle(def.tree)?;
        handle
            .history_of(&key, self.resolver.as_ref())?
            .into_iter()
            .map(|v| {
                let row = v.data.map(|d| def.schema.decode_row(&d)).transpose()?;
                Ok((v.ts, row))
            })
            .collect()
    }

    /// `SELECT … VERSIONS BETWEEN`: every committed version of `table`
    /// whose timestamp falls in `[lo, hi]`, key-ascending then
    /// timestamp-ascending, delete tombstones included. Executes as one
    /// time-range index walk — on a TSB table the walk prunes key-time
    /// rectangles against the window and visits each historical page
    /// once; it is not a replay of per-timestamp AS OF lookups.
    pub fn versions_between(
        &self,
        table: &str,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Result<Vec<TemporalVersion>> {
        let (def, lo, hi) = self.temporal_window(table, lo, hi)?;
        let handle = self.tree_handle(def.tree)?;
        let out = temporal::in_window(handle.versions_between(lo, hi, self.resolver.as_ref())?, lo);
        self.metrics()
            .temporal
            .versions_returned
            .add(out.len() as u64);
        Ok(out)
    }

    /// `DIFF TABLE … BETWEEN t1 AND t2`: the net change set between the
    /// table's states at the two instants, folded from the same single
    /// version-range walk `VERSIONS BETWEEN` uses.
    pub fn diff_table(&self, table: &str, t1: Timestamp, t2: Timestamp) -> Result<Vec<DiffRow>> {
        let (def, t1, t2) = self.temporal_window(table, t1, t2)?;
        let handle = self.tree_handle(def.tree)?;
        let versions = handle.versions_between(t1, t2, self.resolver.as_ref())?;
        let out = temporal::fold_diff(&versions, t1);
        self.metrics().temporal.diff_rows.add(out.len() as u64);
        Ok(out)
    }

    /// Shared validation for the temporal read surface: the table must
    /// be IMMORTAL and the bounds ordered. Both bounds are then clamped
    /// to the visibility horizon — on a replica that is the replication
    /// horizon, so a follower answers from the history it has instead
    /// of erroring, mirroring `BEGIN TRAN AS OF` clamping.
    fn temporal_window(
        &self,
        table: &str,
        lo: Timestamp,
        hi: Timestamp,
    ) -> Result<(Arc<TableDef>, Timestamp, Timestamp)> {
        let def = self.table(table)?;
        self.check_as_of_allowed(&def)?;
        if lo > hi {
            return Err(Error::Temporal(format!(
                "reversed time window: lower bound {}.{} is above upper bound {}.{}",
                lo.ttime, lo.sn, hi.ttime, hi.sn
            )));
        }
        let horizon = self.visible_horizon();
        let hi = hi.min(horizon);
        let lo = lo.min(hi);
        Ok((def, lo, hi))
    }

    // -- maintenance ---------------------------------------------------------

    /// Take a checkpoint: persist watermarks, flush dirty pages (which
    /// also applies pending timestamps), log the checkpoint, then run PTT
    /// garbage collection against the new redo-scan-start LSN. Returns the
    /// number of PTT entries reclaimed.
    pub fn checkpoint(&self) -> Result<usize> {
        if self.replica {
            // A checkpoint appends log records and rewrites the meta
            // watermarks — both would diverge the local log/meta from the
            // primary's shipped prefix. Replicas re-run redo at open
            // instead of maintaining a redo scan start.
            return Ok(0);
        }
        {
            let meta = self.pool.fetch(PageId(0))?;
            let mut g = meta.write();
            MetaView::set_max_tid(&mut g, Tid(self.next_tid.load(Ordering::SeqCst) - 1));
            MetaView::set_last_timestamp(&mut g, self.authority.latest());
            drop(g);
            meta.mark_dirty_unlogged();
        }
        let att: Vec<(Tid, Lsn)> = self
            .active
            .lock()
            .iter()
            .filter(|(_, l)| !l.is_null())
            .map(|(t, l)| (*t, *l))
            .collect();
        let redo_scan_start = recovery::checkpoint(&self.wal, &self.pool, att)?;
        let reclaimed = self.gc.collect(redo_scan_start)?;
        self.metrics().ts.ptt_gc_deleted.add(reclaimed as u64);
        Ok(reclaimed)
    }

    /// Vacuum (§2.2 / the Postgres comparison): reclaim *every*
    /// persistent-timestamp-table entry, including the crash-orphaned ones
    /// the incremental collector cannot touch (their volatile reference
    /// counts were lost). Stamps every committed TID-marked record in
    /// every versioned table, checkpoints (making the stamping durable),
    /// then deletes the PTT rows that existed before the sweep — afterwards
    /// no record anywhere still needs them. Returns the number of PTT
    /// entries reclaimed.
    pub fn vacuum(&self) -> Result<usize> {
        if self.replica {
            return Err(Error::ReplicaReadOnly);
        }
        // Snapshot the reclaim set first: entries appearing *after* this
        // point belong to transactions committing during the sweep, whose
        // records may be stamped lazily later.
        let candidates: Vec<Tid> = self.ptt.entries()?.into_iter().map(|(t, _)| t).collect();
        let defs: Vec<Arc<TableDef>> = self.tables.read().values().cloned().collect();
        for def in defs {
            if def.kind.is_versioned() {
                self.tree_handle(def.tree)?
                    .stamp_all(self.resolver.as_ref())?;
            }
        }
        let reclaimed = candidates.len();
        self.checkpoint()?;
        for tid in candidates {
            // The incremental GC inside checkpoint() already removes the
            // entries whose stamping it just made durable; sweep the rest
            // (Ptt::delete is idempotent).
            if self.ptt.lookup(tid)?.is_some() {
                self.ptt.delete(tid)?;
                self.metrics().ts.ptt_gc_deleted.inc();
            }
            self.vtt.remove(tid);
        }
        Ok(reclaimed)
    }

    /// Run one history-compaction pass over every table now: rewrite
    /// historical pages delta-packed, merge single-referrer chain pages
    /// (chain indexes), and free emptied pages. The background thread
    /// (see [`DbConfig::compaction_interval`]) runs this same pass on its
    /// timer; this is the synchronous entry point for maintenance and
    /// tests. Returns the aggregate stats.
    pub fn compact_history(&self) -> Result<CompactionStats> {
        if self.replica {
            return Err(Error::ReplicaReadOnly);
        }
        let handles: Vec<TableIndex> = self.trees.read().values().cloned().collect();
        compaction_pass(&handles, self.metrics())
    }

    /// Aggregate version-store shape across every table (historical
    /// pages, versions stored, occupied bytes).
    pub fn history_stats(&self) -> Result<HistoryStats> {
        let mut out = HistoryStats::default();
        let handles: Vec<TableIndex> = self.trees.read().values().cloned().collect();
        for t in &handles {
            out.add(t.history_stats()?);
        }
        Ok(out)
    }

    // -- replication ---------------------------------------------------------

    /// The write-ahead log (the replication shipper reads raw frames off
    /// it; everyone else should go through the engine API).
    pub fn wal(&self) -> &Arc<Wal> {
        &self.wal
    }

    /// True when this engine was opened with [`Self::open_replica`].
    pub fn is_replica(&self) -> bool {
        self.replica
    }

    /// Current replication horizon (== [`Self::visible_horizon`] on a
    /// replica; `Timestamp::ZERO` on a primary).
    pub fn replication_horizon(&self) -> Timestamp {
        *self.repl_horizon.lock()
    }

    /// Advance the replication horizon (monotonic). Called by the
    /// follower after it has *fully applied* every shipped byte the
    /// horizon covers — never before, or a reader could take a snapshot
    /// whose versions have not landed yet.
    pub fn set_replication_horizon(&self, ts: Timestamp) {
        let mut h = self.repl_horizon.lock();
        if ts > *h {
            *h = ts;
            self.metrics().repl.horizon_ms.set(ts.ttime);
        }
    }

    /// Apply one shipped WAL batch: append the raw bytes at `start`
    /// (must equal the local log end), redo every record onto the buffer
    /// pool, then publish `horizon`. Returns the number of log records
    /// applied. Replicas only.
    pub fn replica_apply(&self, start: Lsn, bytes: &[u8], horizon: Timestamp) -> Result<u64> {
        if !self.replica {
            return Err(Error::Internal(
                "replica_apply on a primary would fork the log".into(),
            ));
        }
        let mut records = 0u64;
        if !bytes.is_empty() {
            self.wal.append_raw(start, bytes)?;
            for entry in self.wal.iter_from(start)? {
                let e = entry?;
                recovery::apply_entry(&self.pool, &e)?;
                if let LogRecord::Commit { ts } = &e.record {
                    // Track the primary's clock so `now_ms`-relative AS OF
                    // requests and split times stay sensible.
                    self.authority.restore(*ts);
                }
                records += 1;
            }
            self.refresh_catalog()?;
            let metrics = self.metrics();
            metrics.repl.records_applied.add(records);
            metrics.repl.applied_lsn.set(self.wal.end_lsn().0);
        }
        // Horizon last: every commit it covers is now applied.
        self.set_replication_horizon(horizon);
        self.metrics().repl.batches_applied.inc();
        Ok(records)
    }

    /// Pick up tables the primary created (or converted with
    /// `ENABLE SNAPSHOT`) since the catalog was last scanned, opening
    /// local tree handles for them.
    fn refresh_catalog(&self) -> Result<()> {
        // Rebuilt from scratch each refresh: a snapshot the primary
        // dropped must disappear here too.
        let mut named_snapshots = HashMap::new();
        for item in self.catalog_tree.u_scan()? {
            if item.key.first() == Some(&SNAPSHOT_KEY_PREFIX) {
                let snap = SnapshotDef::decode(&item.data)?;
                named_snapshots.insert(snap.name.clone(), snap);
                continue;
            }
            let name = String::from_utf8(item.key.clone())
                .map_err(|_| Error::Corruption("non-UTF8 table name".into()))?;
            let def = Arc::new(TableDef::decode(&name, &item.data)?);
            if let Some(existing) = self.tables.read().get(&name) {
                if existing.tree == def.tree {
                    continue;
                }
            }
            let handle = match def.index {
                IndexKind::Chain => TableIndex::Chain(Arc::new(BTree::open(
                    Arc::clone(&self.pool),
                    Arc::clone(&self.wal),
                    def.tree,
                    def.kind.is_versioned(),
                    Arc::clone(&self.split_time),
                )?)),
                IndexKind::Tsb => TableIndex::Tsb(Arc::new(immortaldb_tsb::TsbTree::open(
                    Arc::clone(&self.pool),
                    Arc::clone(&self.wal),
                    def.tree,
                    Arc::clone(&self.split_time),
                )?)),
            };
            // Keep next_tree above everything the primary has allocated
            // (only relevant if this replica is ever promoted).
            self.next_tree.fetch_max(def.tree.0 + 1, Ordering::SeqCst);
            self.trees.write().insert(def.tree, handle);
            self.tables.write().insert(name, def);
        }
        self.metrics()
            .temporal
            .snapshots
            .set(named_snapshots.len() as u64);
        *self.named_snapshots.write() = named_snapshots;
        Ok(())
    }

    /// Log-based point-in-time restore: rewrite `table`'s current state
    /// to what an `AS OF as_of` reader sees, as one serializable
    /// transaction (`RESTORE TABLE … AS OF …`). History is preserved —
    /// the pre-restore state remains readable at its own timestamps, the
    /// restore itself is just another set of stamped updates. Returns
    /// `(rows changed, effective timestamp)` after clamping `as_of` to
    /// the visibility horizon.
    pub fn restore_table_as_of(&self, table: &str, as_of: Timestamp) -> Result<(usize, Timestamp)> {
        let def = self.table(table)?;
        self.check_as_of_allowed(&def)?;
        let as_of = as_of.min(self.visible_horizon());
        let mut txn = self.begin(Isolation::Serializable);
        match self.restore_diff(&mut txn, &def, as_of) {
            Ok(n) => {
                self.commit(&mut txn)?;
                Ok((n, as_of))
            }
            Err(e) => {
                let _ = self.rollback(&mut txn);
                Err(e)
            }
        }
    }

    fn restore_diff(
        &self,
        txn: &mut Transaction,
        def: &Arc<TableDef>,
        as_of: Timestamp,
    ) -> Result<usize> {
        self.ensure_writable(txn)?;
        let handle = self.tree_handle(def.tree)?;
        // Whole-table lock: the diff and the writes must see one state.
        self.locks.lock_scan(txn.tid, def.tree)?;
        let old: HashMap<Vec<u8>, Vec<u8>> = handle
            .scan_as_of(as_of, None, self.resolver.as_ref())?
            .into_iter()
            .map(|item| (item.key, item.data))
            .collect();
        let current = handle.scan_current(Some(txn.tid), self.resolver.as_ref())?;
        let mut changed = 0;
        let mut live_keys = std::collections::HashSet::new();
        for item in &current {
            live_keys.insert(item.key.clone());
            match old.get(&item.key) {
                Some(data) if *data == item.data => {}
                Some(data) => {
                    let values = def.schema.decode_row(data)?;
                    self.update_row(txn, &def.name, values)?;
                    changed += 1;
                }
                None => {
                    let row = def.schema.decode_row(&item.data)?;
                    self.delete_row(txn, &def.name, &row[def.schema.pk])?;
                    changed += 1;
                }
            }
        }
        for (key, data) in &old {
            if !live_keys.contains(key) {
                let values = def.schema.decode_row(data)?;
                self.insert_row(txn, &def.name, values)?;
                changed += 1;
            }
        }
        Ok(changed)
    }

    /// Flush everything and fsync (clean shutdown).
    pub fn close(&self) -> Result<()> {
        self.checkpoint()?;
        Ok(())
    }

    /// Force the buffered log to disk without a checkpoint (log force).
    /// Used by crash tests: makes in-flight transactions' records durable
    /// while their pages are not, so recovery has losers to undo.
    pub fn force_log(&self) -> Result<()> {
        self.wal.flush(Durability::Fsync)
    }
}

impl Drop for Database {
    /// Best-effort shutdown drain: push any still-buffered log records
    /// (e.g. system actions like DDL that never went through a commit
    /// flush) into the file so recovery can replay them, and give
    /// acknowledged commits their durability level one last time. Errors
    /// are ignored — in chaos runs the fault VFS is already "crashed"
    /// here and the write is *supposed* to fail, which preserves the
    /// crash semantics torture tests rely on.
    fn drop(&mut self) {
        if let Some(stop) = self.compactor_stop.take() {
            let (lock, cvar) = &*stop;
            *lock.lock() = true;
            cvar.notify_all();
        }
        if let Some(handle) = self.compactor.take() {
            let _ = handle.join();
        }
        let _ = self.wal.flush(self.durability);
    }
}

impl TreeLocator for Database {
    fn locate_leaf(&self, tree: TreeId, key: &[u8]) -> Result<PageId> {
        self.tree_handle(tree)?.locate_leaf_page(key)
    }

    fn locate_leaf_for_insert(&self, tree: TreeId, key: &[u8], space: usize) -> Result<PageId> {
        self.tree_handle(tree)?
            .locate_leaf_page_for_insert(key, space, self.resolver.as_ref())
    }
}

impl Database {
    /// VTT lifecycle state of a transaction (diagnostics and tests).
    pub fn vtt_state(&self, tid: u64) -> Option<immortaldb_txn::TxnState> {
        self.vtt.state(Tid(tid))
    }

    /// Remaining unstamped versions of a transaction (diagnostics).
    pub fn vtt_pending(&self, tid: u64) -> Option<u64> {
        self.vtt.pending(Tid(tid))
    }
}
