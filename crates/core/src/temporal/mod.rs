//! Temporal query subsystem: the window-bound semantics shared by
//! `VERSIONS BETWEEN` and `DIFF TABLE`, and the fold that turns one
//! version-range walk into a net change set.
//!
//! Both query shapes execute as a **single** time-range index walk
//! ([`crate::index::TableIndex::versions_between`]): the TSB-tree prunes
//! its key-time rectangles against the window and visits each historical
//! page once; the page-chain B+tree walks each leaf's history chain once.
//! Neither replays per-timestamp `AS OF` point lookups.
//!
//! Window semantics (DESIGN.md §10):
//!
//! * `VERSIONS BETWEEN a AND b` is **interval**-shaped: a clock bound's
//!   whole 20 ms tick is inside the window — the lower bound resolves to
//!   the start of its tick ([`window_lo`]), the upper to the end of its
//!   tick ([`window_hi`]); both ends are inclusive. A named-snapshot
//!   bound contributes its exact pinned timestamp.
//! * `DIFF TABLE … BETWEEN a AND b` is **point**-shaped: it compares the
//!   states *at* the two instants (each resolved like `BEGIN TRAN AS
//!   OF`), so a row changed and changed back reports nothing.

use immortaldb_btree::TemporalVersion;
use immortaldb_common::time::quantize;
use immortaldb_common::Timestamp;

/// Lower bound of a `VERSIONS BETWEEN` window from a wall-clock
/// millisecond operand: the start of its 20 ms tick, so every commit
/// within the named tick is inside the window.
pub fn window_lo(ms: u64) -> Timestamp {
    Timestamp::new(quantize(ms), 0)
}

/// Upper bound of a temporal window from a wall-clock millisecond
/// operand: the end of its tick — identical to how `BEGIN TRAN AS OF`
/// resolves its operand.
pub fn window_hi(ms: u64) -> Timestamp {
    Timestamp::as_of_clock(ms)
}

/// Drop the per-key base versions a range walk carries (newest version
/// *below* the window, kept for DIFF's before-state), leaving only the
/// versions that committed inside `[lo, hi]`.
pub fn in_window(versions: Vec<TemporalVersion>, lo: Timestamp) -> Vec<TemporalVersion> {
    versions.into_iter().filter(|v| v.ts >= lo).collect()
}

/// Net effect of a window on one key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffOp {
    Insert,
    Update,
    Delete,
}

impl DiffOp {
    pub fn name(self) -> &'static str {
        match self {
            DiffOp::Insert => "INSERT",
            DiffOp::Update => "UPDATE",
            DiffOp::Delete => "DELETE",
        }
    }
}

/// One row of a `DIFF TABLE` result: a key whose state at `t2` differs
/// from its state at `t1`, with both states attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    pub key: Vec<u8>,
    pub op: DiffOp,
    /// Commit timestamp of the version that put the key into its `t2`
    /// state (the tombstone's timestamp for a delete).
    pub ts: Timestamp,
    /// Encoded row at `t1` (`None` — absent or deleted).
    pub before: Option<Vec<u8>>,
    /// Encoded row at `t2` (`None` — deleted).
    pub after: Option<Vec<u8>>,
}

/// Fold the output of a `versions_between(t1, t2)` walk (key-ascending,
/// timestamp-ascending within key, per-key base versions included) into
/// the net change set between the states at `t1` and `t2`. Keys whose
/// two states are byte-identical are omitted.
pub fn fold_diff(versions: &[TemporalVersion], t1: Timestamp) -> Vec<DiffRow> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < versions.len() {
        let mut j = i;
        while j < versions.len() && versions[j].key == versions[i].key {
            j += 1;
        }
        let group = &versions[i..j];
        i = j;
        // State at t1: newest version at or below it. State at t2: the
        // group's last version (the walk returns nothing above t2).
        let before = group.iter().rev().find(|v| v.ts <= t1);
        let after = group.last().expect("key group is non-empty");
        if let Some(b) = before {
            if std::ptr::eq(b, after) {
                continue; // no version in the window: unchanged
            }
        }
        let before_data = before.and_then(|v| v.data.as_ref());
        let row = match (before_data, after.data.as_ref()) {
            (None, Some(a)) => DiffRow {
                key: after.key.clone(),
                op: DiffOp::Insert,
                ts: after.ts,
                before: None,
                after: Some(a.clone()),
            },
            (Some(b), None) => DiffRow {
                key: after.key.clone(),
                op: DiffOp::Delete,
                ts: after.ts,
                before: Some(b.clone()),
                after: None,
            },
            (Some(b), Some(a)) => {
                if b == a {
                    continue; // changed and changed back
                }
                DiffRow {
                    key: after.key.clone(),
                    op: DiffOp::Update,
                    ts: after.ts,
                    before: Some(b.clone()),
                    after: Some(a.clone()),
                }
            }
            // Absent at both points (e.g. inserted and deleted inside
            // the window): no net change.
            (None, None) => continue,
        };
        out.push(row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(key: u8, ms: u64, data: Option<&str>) -> TemporalVersion {
        TemporalVersion {
            key: vec![key],
            ts: Timestamp::new(ms, 0),
            data: data.map(|s| s.as_bytes().to_vec()),
        }
    }

    #[test]
    fn window_bounds_cover_the_whole_tick() {
        let lo = window_lo(47); // tick [40, 60)
        let hi = window_hi(47);
        assert_eq!(lo, Timestamp::new(40, 0));
        assert_eq!(hi.ttime, 40);
        assert!(lo <= hi);
        // Every serial number within the tick is inside the window.
        assert!(Timestamp::new(40, 123) > lo && Timestamp::new(40, 123) < hi);
    }

    #[test]
    fn diff_classifies_insert_update_delete() {
        let t1 = Timestamp::new(100, 0);
        let versions = vec![
            // key 1: existed at t1, updated twice in the window → UPDATE
            v(1, 80, Some("a")),
            v(1, 120, Some("b")),
            v(1, 140, Some("c")),
            // key 2: born in the window → INSERT
            v(2, 130, Some("x")),
            // key 3: existed at t1, deleted in the window → DELETE
            v(3, 90, Some("y")),
            v(3, 150, None),
            // key 4: unchanged (base only) → omitted
            v(4, 70, Some("z")),
            // key 5: inserted and deleted inside the window → omitted
            v(5, 110, Some("w")),
            v(5, 160, None),
        ];
        let diff = fold_diff(&versions, t1);
        assert_eq!(diff.len(), 3);
        assert_eq!(diff[0].op, DiffOp::Update);
        assert_eq!(diff[0].before.as_deref(), Some(b"a".as_ref()));
        assert_eq!(diff[0].after.as_deref(), Some(b"c".as_ref()));
        assert_eq!(diff[0].ts, Timestamp::new(140, 0));
        assert_eq!(diff[1].op, DiffOp::Insert);
        assert_eq!(diff[1].before, None);
        assert_eq!(diff[2].op, DiffOp::Delete);
        assert_eq!(diff[2].after, None);
    }

    #[test]
    fn diff_omits_change_and_change_back() {
        let t1 = Timestamp::new(100, 0);
        let versions = vec![
            v(1, 80, Some("a")),
            v(1, 120, Some("b")),
            v(1, 140, Some("a")),
        ];
        assert!(fold_diff(&versions, t1).is_empty());
    }

    #[test]
    fn diff_sees_redelete_of_a_dead_key_as_nothing() {
        // Dead at t1 (tombstone base), still dead at t2.
        let t1 = Timestamp::new(100, 0);
        let versions = vec![v(1, 80, None), v(1, 120, Some("a")), v(1, 140, None)];
        assert!(fold_diff(&versions, t1).is_empty());
    }

    #[test]
    fn in_window_drops_base_versions() {
        let lo = Timestamp::new(100, 0);
        let versions = vec![v(1, 80, Some("a")), v(1, 120, Some("b"))];
        let w = in_window(versions, lo);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].ts, Timestamp::new(120, 0));
    }
}
