//! Row values, schemas, and the memcomparable key / row-image codecs.

use std::fmt;

use immortaldb_common::codec::{Reader, Writer};
use immortaldb_common::{Error, Result};

/// Column types of the SQL dialect (matching the paper's example schema:
/// `Oid smallint PRIMARY KEY, LocationX int, LocationY int`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    SmallInt,
    Int,
    BigInt,
    /// Bounded variable-length string.
    Varchar(u16),
}

impl fmt::Display for ColType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColType::SmallInt => write!(f, "SMALLINT"),
            ColType::Int => write!(f, "INT"),
            ColType::BigInt => write!(f, "BIGINT"),
            ColType::Varchar(n) => write!(f, "VARCHAR({n})"),
        }
    }
}

/// A column value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Value {
    SmallInt(i16),
    Int(i32),
    BigInt(i64),
    Varchar(String),
}

impl Value {
    pub fn type_of(&self) -> ColType {
        match self {
            Value::SmallInt(_) => ColType::SmallInt,
            Value::Int(_) => ColType::Int,
            Value::BigInt(_) => ColType::BigInt,
            Value::Varchar(s) => ColType::Varchar(s.len() as u16),
        }
    }

    /// Integer view (for predicate evaluation and generators).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::SmallInt(v) => Some(*v as i64),
            Value::Int(v) => Some(*v as i64),
            Value::BigInt(v) => Some(*v),
            Value::Varchar(_) => None,
        }
    }

    /// Coerce an integer literal into the column's type (SQL-style).
    pub fn coerce(&self, target: ColType) -> Result<Value> {
        let err = || Error::Sql(format!("cannot coerce {self:?} to {target}"));
        Ok(match (self, target) {
            (Value::Varchar(s), ColType::Varchar(max)) => {
                if s.len() > max as usize {
                    return Err(Error::Sql(format!(
                        "string of length {} exceeds VARCHAR({max})",
                        s.len()
                    )));
                }
                Value::Varchar(s.clone())
            }
            (v, ColType::SmallInt) => {
                let n = v.as_i64().ok_or_else(err)?;
                Value::SmallInt(i16::try_from(n).map_err(|_| err())?)
            }
            (v, ColType::Int) => {
                let n = v.as_i64().ok_or_else(err)?;
                Value::Int(i32::try_from(n).map_err(|_| err())?)
            }
            (v, ColType::BigInt) => Value::BigInt(v.as_i64().ok_or_else(err)?),
            _ => return Err(err()),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::SmallInt(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::BigInt(v) => write!(f, "{v}"),
            Value::Varchar(s) => write!(f, "{s}"),
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub ctype: ColType,
}

/// Table schema: columns plus the (single-column) primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    pub columns: Vec<Column>,
    /// Index into `columns` of the primary key.
    pub pk: usize,
}

impl Schema {
    pub fn new(columns: Vec<Column>, pk: usize) -> Result<Schema> {
        if columns.is_empty() {
            return Err(Error::Sql("a table needs at least one column".into()));
        }
        if pk >= columns.len() {
            return Err(Error::Sql("primary key column out of range".into()));
        }
        let mut names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::Sql("duplicate column name".into()));
        }
        Ok(Schema { columns, pk })
    }

    pub fn col_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| Error::Sql(format!("unknown column {name}")))
    }

    /// Validate a full row against this schema, coercing literals.
    pub fn check_row(&self, values: &[Value]) -> Result<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(Error::Sql(format!(
                "expected {} values, got {}",
                self.columns.len(),
                values.len()
            )));
        }
        values
            .iter()
            .zip(&self.columns)
            .map(|(v, c)| v.coerce(c.ctype))
            .collect()
    }

    /// Memcomparable key bytes for the row's primary key.
    pub fn key_of_row(&self, values: &[Value]) -> Result<Vec<u8>> {
        encode_key(&values[self.pk])
    }

    /// Encode the full row image (stored as the record data).
    pub fn encode_row(&self, values: &[Value]) -> Vec<u8> {
        let mut w = Writer::new();
        for v in values {
            match v {
                Value::SmallInt(x) => {
                    w.u8(1).u16(*x as u16);
                }
                Value::Int(x) => {
                    w.u8(2).u32(*x as u32);
                }
                Value::BigInt(x) => {
                    w.u8(3).u64(*x as u64);
                }
                Value::Varchar(s) => {
                    w.u8(4).bytes(s.as_bytes());
                }
            }
        }
        w.finish()
    }

    /// Decode a row image.
    pub fn decode_row(&self, data: &[u8]) -> Result<Vec<Value>> {
        let mut r = Reader::new(data);
        let mut out = Vec::with_capacity(self.columns.len());
        for _ in &self.columns {
            let tag = r.u8()?;
            out.push(match tag {
                1 => Value::SmallInt(r.u16()? as i16),
                2 => Value::Int(r.u32()? as i32),
                3 => Value::BigInt(r.u64()? as i64),
                4 => Value::Varchar(
                    String::from_utf8(r.bytes()?.to_vec())
                        .map_err(|_| Error::Corruption("non-UTF8 varchar".into()))?,
                ),
                t => return Err(Error::Corruption(format!("bad value tag {t}"))),
            });
        }
        r.expect_end()?;
        Ok(out)
    }
}

/// Memcomparable encoding of a single (key) value: a type tag followed by
/// an order-preserving byte string. The tag keeps differently typed keys
/// from comparing as equal byte strings.
pub fn encode_key(v: &Value) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(10);
    match v {
        Value::SmallInt(x) => {
            out.push(1);
            out.extend_from_slice(&((*x as u16) ^ 0x8000).to_be_bytes());
        }
        Value::Int(x) => {
            out.push(2);
            out.extend_from_slice(&((*x as u32) ^ 0x8000_0000).to_be_bytes());
        }
        Value::BigInt(x) => {
            out.push(3);
            out.extend_from_slice(&((*x as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Varchar(s) => {
            out.push(4);
            out.extend_from_slice(s.as_bytes());
        }
    }
    Ok(out)
}

/// Inverse of [`encode_key`]: recover the key value from its
/// memcomparable bytes (used to label tombstone rows in temporal
/// results, where no row image survives to decode).
pub fn decode_key(data: &[u8]) -> Result<Value> {
    let (&tag, rest) = data
        .split_first()
        .ok_or_else(|| Error::Corruption("empty key".into()))?;
    let fixed = |n: usize| -> Result<&[u8]> {
        if rest.len() == n {
            Ok(rest)
        } else {
            Err(Error::Corruption(format!(
                "key tag {tag} wants {n} bytes, got {}",
                rest.len()
            )))
        }
    };
    Ok(match tag {
        1 => {
            let b: [u8; 2] = fixed(2)?.try_into().unwrap();
            Value::SmallInt((u16::from_be_bytes(b) ^ 0x8000) as i16)
        }
        2 => {
            let b: [u8; 4] = fixed(4)?.try_into().unwrap();
            Value::Int((u32::from_be_bytes(b) ^ 0x8000_0000) as i32)
        }
        3 => {
            let b: [u8; 8] = fixed(8)?.try_into().unwrap();
            Value::BigInt((u64::from_be_bytes(b) ^ (1 << 63)) as i64)
        }
        4 => Value::Varchar(
            String::from_utf8(rest.to_vec())
                .map_err(|_| Error::Corruption("non-UTF8 varchar key".into()))?,
        ),
        t => return Err(Error::Corruption(format!("bad key tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(
            vec![
                Column {
                    name: "Oid".into(),
                    ctype: ColType::SmallInt,
                },
                Column {
                    name: "LocationX".into(),
                    ctype: ColType::Int,
                },
                Column {
                    name: "Name".into(),
                    ctype: ColType::Varchar(20),
                },
            ],
            0,
        )
        .unwrap()
    }

    #[test]
    fn row_roundtrip() {
        let s = schema();
        let row = vec![
            Value::SmallInt(7),
            Value::Int(-12345),
            Value::Varchar("hello".into()),
        ];
        let enc = s.encode_row(&row);
        assert_eq!(s.decode_row(&enc).unwrap(), row);
    }

    #[test]
    fn keys_roundtrip_through_decode_key() {
        for v in [
            Value::SmallInt(-7),
            Value::Int(123_456),
            Value::BigInt(-9_999_999_999),
            Value::Varchar("obj-17".into()),
        ] {
            assert_eq!(decode_key(&encode_key(&v).unwrap()).unwrap(), v);
        }
        assert!(decode_key(&[]).is_err());
        assert!(decode_key(&[9, 1, 2]).is_err());
        assert!(decode_key(&[2, 1]).is_err());
    }

    #[test]
    fn keys_order_like_values() {
        for (a, b) in [
            (Value::SmallInt(-5), Value::SmallInt(3)),
            (Value::Int(-100), Value::Int(0)),
            (Value::BigInt(i64::MIN), Value::BigInt(i64::MAX)),
            (Value::Varchar("abc".into()), Value::Varchar("abd".into())),
        ] {
            assert!(
                encode_key(&a).unwrap() < encode_key(&b).unwrap(),
                "{a:?} < {b:?}"
            );
        }
    }

    #[test]
    fn schema_validation() {
        assert!(Schema::new(vec![], 0).is_err());
        let cols = vec![
            Column {
                name: "a".into(),
                ctype: ColType::Int,
            },
            Column {
                name: "A".into(),
                ctype: ColType::Int,
            },
        ];
        // Case-insensitive duplicate... allowed? Names differ by case only;
        // col_index is case-insensitive, so exact duplicates are rejected
        // while case variants are permitted (documented quirk).
        let _ = cols;
        let s = schema();
        assert_eq!(s.col_index("locationx").unwrap(), 1);
        assert!(s.col_index("nope").is_err());
    }

    #[test]
    fn check_row_coerces_and_rejects() {
        let s = schema();
        let ok = s
            .check_row(&[
                Value::BigInt(7),
                Value::BigInt(3),
                Value::Varchar("x".into()),
            ])
            .unwrap();
        assert_eq!(ok[0], Value::SmallInt(7));
        assert_eq!(ok[1], Value::Int(3));
        assert!(s.check_row(&[Value::BigInt(7)]).is_err());
        assert!(s
            .check_row(&[
                Value::BigInt(1 << 40), // overflows smallint
                Value::BigInt(3),
                Value::Varchar("x".into()),
            ])
            .is_err());
        assert!(s
            .check_row(&[
                Value::BigInt(1),
                Value::BigInt(3),
                Value::Varchar("a string that is way past twenty characters".into()),
            ])
            .is_err());
    }

    #[test]
    fn value_display_and_as_i64() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Varchar("v".into()).to_string(), "v");
        assert_eq!(Value::SmallInt(2).as_i64(), Some(2));
        assert_eq!(Value::Varchar("v".into()).as_i64(), None);
    }
}
