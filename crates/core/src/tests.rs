//! End-to-end engine tests: SQL sessions, transactions, isolation,
//! timestamping, recovery.

use std::path::PathBuf;
use std::sync::Arc;

use immortaldb_common::{Error, SimClock};

use crate::db::{Database, DbConfig};
use crate::row::Value;
use crate::sql::Session;
use crate::txn::{Isolation, TimestampingMode};

struct Env {
    dir: PathBuf,
    clock: Arc<SimClock>,
}

impl Env {
    fn new(name: &str) -> Env {
        let dir = std::env::temp_dir().join(format!("immortal-core-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Env {
            dir,
            clock: Arc::new(SimClock::new(1_000_000)),
        }
    }

    fn config(&self) -> DbConfig {
        DbConfig::new(&self.dir).clock(Arc::clone(&self.clock) as Arc<dyn immortaldb_common::Clock>)
    }

    fn open(&self) -> Database {
        Database::open(self.config()).unwrap()
    }

    /// Advance virtual time by one 20 ms tick.
    fn tick(&self) {
        self.clock.advance(immortaldb_common::TICK_MS);
    }
}

impl Drop for Env {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

const DDL: &str = "Create IMMORTAL Table MovingObjects \
                   (Oid smallint PRIMARY KEY, LocationX int, LocationY int) ON [PRIMARY]";

#[test]
fn paper_example_end_to_end() {
    let env = Env::new("paper");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    for oid in 0..20 {
        s.execute(&format!(
            "INSERT INTO MovingObjects VALUES ({oid}, {oid}, 0)"
        ))
        .unwrap();
        env.tick();
    }
    let t_past = db.now_ms();
    env.tick();
    for oid in 0..20 {
        s.execute(&format!(
            "UPDATE MovingObjects SET LocationX = {}, LocationY = 1 WHERE Oid = {oid}",
            oid + 100
        ))
        .unwrap();
        env.tick();
    }
    // Current state.
    let res = s
        .execute("SELECT * FROM MovingObjects WHERE Oid < 10")
        .unwrap();
    assert_eq!(res.rows.len(), 10);
    assert_eq!(res.rows[3][1], Value::Int(103));
    // The paper's AS OF query shape.
    s.execute(&format!("Begin Tran AS OF ms({t_past})"))
        .unwrap();
    let res = s
        .execute("SELECT * FROM MovingObjects WHERE Oid < 10")
        .unwrap();
    s.execute("Commit Tran").unwrap();
    assert_eq!(res.rows.len(), 10);
    assert_eq!(res.rows[3][1], Value::Int(3), "AS OF sees pre-update state");
    assert_eq!(res.rows[3][2], Value::Int(0));
}

#[test]
fn as_of_datetime_string_roundtrip() {
    let env = Env::new("datetime");
    // Position virtual time at a known date: 8/12/2004 10:15:25 UTC.
    env.clock.set(1_092_305_725_000);
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (1, 5, 5)")
        .unwrap();
    env.clock.advance(60_000); // one minute later
    s.execute("UPDATE MovingObjects SET LocationX = 9 WHERE Oid = 1")
        .unwrap();
    // Query as of 10:15:30 — between the insert and the update.
    s.execute("Begin Tran AS OF \"8/12/2004 10:15:30\"")
        .unwrap();
    let res = s
        .execute("SELECT LocationX FROM MovingObjects WHERE Oid = 1")
        .unwrap();
    s.execute("Commit Tran").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(5));
}

#[test]
fn as_of_rejected_for_non_immortal_tables() {
    let env = Env::new("asofconv");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute("CREATE TABLE plain (id INT PRIMARY KEY, v INT)")
        .unwrap();
    s.execute("INSERT INTO plain VALUES (1, 2)").unwrap();
    s.execute(&format!("BEGIN TRAN AS OF ms({})", db.now_ms()))
        .unwrap();
    let err = s.execute("SELECT * FROM plain").unwrap_err();
    assert!(matches!(err, Error::Catalog(_)), "{err}");
    s.execute("ROLLBACK").unwrap();
}

#[test]
fn explicit_transaction_rollback_undoes_everything() {
    let env = Env::new("rollback");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (1, 10, 10)")
        .unwrap();
    s.execute("BEGIN TRAN").unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (2, 20, 20)")
        .unwrap();
    s.execute("UPDATE MovingObjects SET LocationX = 99 WHERE Oid = 1")
        .unwrap();
    s.execute("DELETE FROM MovingObjects WHERE Oid = 1")
        .unwrap();
    // Inside the transaction the changes are visible.
    let res = s.execute("SELECT * FROM MovingObjects").unwrap();
    assert_eq!(res.rows.len(), 1); // object 1 deleted, object 2 added
    s.execute("ROLLBACK TRAN").unwrap();
    let res = s.execute("SELECT * FROM MovingObjects").unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][0], Value::SmallInt(1));
    assert_eq!(res.rows[0][1], Value::Int(10), "update rolled back");
}

#[test]
fn read_only_as_of_transactions_reject_writes() {
    let env = Env::new("rowrite");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute(&format!("BEGIN TRAN AS OF ms({})", db.now_ms()))
        .unwrap();
    let err = s
        .execute("INSERT INTO MovingObjects VALUES (1, 1, 1)")
        .unwrap_err();
    assert!(matches!(err, Error::ReadOnlyTransaction), "{err}");
    s.execute("ROLLBACK").unwrap();
}

#[test]
fn snapshot_isolation_reads_ignore_later_commits() {
    let env = Env::new("snapread");
    let db = env.open();
    let mut setup = Session::new(&db);
    setup.execute(DDL).unwrap();
    setup
        .execute("INSERT INTO MovingObjects VALUES (1, 10, 0)")
        .unwrap();
    env.tick();

    let mut reader = db.begin(Isolation::Snapshot);
    // A later writer commits an update.
    let mut writer = db.begin(Isolation::Snapshot);
    db.update_row(
        &mut writer,
        "MovingObjects",
        vec![Value::SmallInt(1), Value::Int(99), Value::Int(0)],
    )
    .unwrap();
    db.commit(&mut writer).unwrap();
    // The reader still sees the old version (reads are never blocked).
    let row = db
        .get_row(&mut reader, "MovingObjects", &Value::SmallInt(1))
        .unwrap()
        .unwrap();
    assert_eq!(row[1], Value::Int(10));
    db.commit(&mut reader).unwrap();
    // A fresh snapshot sees the update.
    let mut fresh = db.begin(Isolation::Snapshot);
    let row = db
        .get_row(&mut fresh, "MovingObjects", &Value::SmallInt(1))
        .unwrap()
        .unwrap();
    assert_eq!(row[1], Value::Int(99));
    db.commit(&mut fresh).unwrap();
}

#[test]
fn snapshot_write_conflict_first_committer_wins() {
    let env = Env::new("fcw");
    let db = env.open();
    let mut setup = Session::new(&db);
    setup.execute(DDL).unwrap();
    setup
        .execute("INSERT INTO MovingObjects VALUES (1, 10, 0)")
        .unwrap();
    env.tick();

    let mut a = db.begin(Isolation::Snapshot);
    let mut b = db.begin(Isolation::Snapshot);
    // a updates and commits first.
    db.update_row(
        &mut a,
        "MovingObjects",
        vec![Value::SmallInt(1), Value::Int(11), Value::Int(0)],
    )
    .unwrap();
    db.commit(&mut a).unwrap();
    // b's snapshot predates a's commit: its write must conflict.
    let err = db
        .update_row(
            &mut b,
            "MovingObjects",
            vec![Value::SmallInt(1), Value::Int(22), Value::Int(0)],
        )
        .unwrap_err();
    assert!(matches!(err, Error::WriteConflict(_)), "{err}");
    db.rollback(&mut b).unwrap();
    // a's value survived.
    let mut check = db.begin(Isolation::Snapshot);
    let row = db
        .get_row(&mut check, "MovingObjects", &Value::SmallInt(1))
        .unwrap()
        .unwrap();
    assert_eq!(row[1], Value::Int(11));
    db.commit(&mut check).unwrap();
}

#[test]
fn own_writes_visible_under_snapshot_isolation() {
    let env = Env::new("ownsnap");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute("BEGIN TRAN ISOLATION SNAPSHOT").unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (5, 1, 2)")
        .unwrap();
    let res = s
        .execute("SELECT * FROM MovingObjects WHERE Oid = 5")
        .unwrap();
    assert_eq!(res.rows.len(), 1);
    s.execute("COMMIT").unwrap();
}

#[test]
fn conventional_table_crud() {
    let env = Env::new("conventional");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance BIGINT, owner VARCHAR(32))")
        .unwrap();
    s.execute("INSERT INTO accounts VALUES (1, 100, 'alice'), (2, 200, 'bob')")
        .unwrap();
    s.execute("UPDATE accounts SET balance = 150 WHERE id = 1")
        .unwrap();
    let res = s
        .execute("SELECT balance, owner FROM accounts WHERE id = 1")
        .unwrap();
    assert_eq!(
        res.rows[0],
        vec![Value::BigInt(150), Value::Varchar("alice".into())]
    );
    s.execute("DELETE FROM accounts WHERE id = 2").unwrap();
    let res = s.execute("SELECT * FROM accounts").unwrap();
    assert_eq!(res.rows.len(), 1);
    // Duplicate key.
    let err = s
        .execute("INSERT INTO accounts VALUES (1, 0, 'x')")
        .unwrap_err();
    assert!(matches!(err, Error::DuplicateKey));
}

#[test]
fn history_statement_time_travel() {
    let env = Env::new("history");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (7, 1, 1)")
        .unwrap();
    env.tick();
    s.execute("UPDATE MovingObjects SET LocationX = 2 WHERE Oid = 7")
        .unwrap();
    env.tick();
    s.execute("DELETE FROM MovingObjects WHERE Oid = 7")
        .unwrap();
    let res = s.execute("HISTORY OF MovingObjects WHERE Oid = 7").unwrap();
    assert_eq!(res.rows.len(), 3);
    assert_eq!(res.rows[0][2], Value::Varchar("DELETE".into()));
    assert_eq!(res.rows[1][2], Value::Varchar("WRITE".into()));
    assert_eq!(res.rows[1][4], Value::Int(2));
    assert_eq!(res.rows[2][4], Value::Int(1));
    // Timestamps descend.
    assert!(res.rows[0][0].as_i64() > res.rows[1][0].as_i64());
}

#[test]
fn crash_recovery_rolls_back_losers_and_keeps_history() {
    let env = Env::new("crash");
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute(DDL).unwrap();
        s.execute("INSERT INTO MovingObjects VALUES (1, 10, 0)")
            .unwrap();
        env.tick();
        s.execute("UPDATE MovingObjects SET LocationX = 20 WHERE Oid = 1")
            .unwrap();
        env.tick();
        // Leave a transaction in flight, force its log records out, then
        // "crash" (drop without checkpoint — cached pages vanish).
        let mut loser = db.begin(Isolation::Serializable);
        db.update_row(
            &mut loser,
            "MovingObjects",
            vec![Value::SmallInt(1), Value::Int(666), Value::Int(0)],
        )
        .unwrap();
        db.insert_row(
            &mut loser,
            "MovingObjects",
            vec![Value::SmallInt(2), Value::Int(5), Value::Int(5)],
        )
        .unwrap();
        db.force_log().unwrap();
        std::mem::forget(loser); // crash: no commit, no rollback
    }
    let db = env.open();
    assert_eq!(db.recovered_losers, 1, "one loser rolled back");
    let mut s = Session::new(&db);
    let res = s.execute("SELECT * FROM MovingObjects").unwrap();
    assert_eq!(res.rows.len(), 1, "loser's insert gone");
    assert_eq!(res.rows[0][1], Value::Int(20), "loser's update undone");
    // Committed history survived the crash.
    let hist = s.execute("HISTORY OF MovingObjects WHERE Oid = 1").unwrap();
    assert_eq!(hist.rows.len(), 2);
}

#[test]
fn reopen_preserves_data_and_as_of() {
    let env = Env::new("reopen");
    let t_past;
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute(DDL).unwrap();
        s.execute("INSERT INTO MovingObjects VALUES (1, 1, 1)")
            .unwrap();
        env.tick();
        t_past = db.now_ms();
        env.tick();
        s.execute("UPDATE MovingObjects SET LocationX = 2 WHERE Oid = 1")
            .unwrap();
        db.close().unwrap();
    }
    let db = env.open();
    let mut s = Session::new(&db);
    let res = s
        .execute("SELECT LocationX FROM MovingObjects WHERE Oid = 1")
        .unwrap();
    assert_eq!(res.rows[0][0], Value::Int(2));
    s.execute(&format!("BEGIN TRAN AS OF ms({t_past})"))
        .unwrap();
    let res = s
        .execute("SELECT LocationX FROM MovingObjects WHERE Oid = 1")
        .unwrap();
    s.execute("COMMIT").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(1), "history survives restart");
}

#[test]
fn ptt_gc_reclaims_after_checkpoint() {
    let env = Env::new("pttgc");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    for oid in 0..50 {
        s.execute(&format!("INSERT INTO MovingObjects VALUES ({oid}, 0, 0)"))
            .unwrap();
        env.tick();
    }
    assert_eq!(db.ptt_len().unwrap(), 50, "one PTT entry per committed txn");
    // Point reads apply the timestamps (stage IV read trigger)...
    for oid in 0..25 {
        let _ = s
            .execute(&format!("SELECT * FROM MovingObjects WHERE Oid = {oid}"))
            .unwrap();
    }
    // ...and the checkpoint makes the stamping durable, enabling GC for
    // the read half.
    db.checkpoint().unwrap();
    assert_eq!(db.ptt_len().unwrap(), 25, "read-stamped entries reclaimed");
    // The other half gets stamped by the flush hook *during* that
    // checkpoint — durable, but after its redo-scan-start, so the
    // conservative LSN rule defers their reclamation to the next one.
    db.checkpoint().unwrap();
    assert_eq!(db.ptt_len().unwrap(), 0, "all entries reclaimed");
    // The data is of course still there, with full history.
    let res = s.execute("SELECT * FROM MovingObjects").unwrap();
    assert_eq!(res.rows.len(), 50);
}

#[test]
fn eager_mode_stamps_at_commit_and_logs_more() {
    // Lazy timestamping writes ONE PTT row per transaction no matter how
    // many records it touched; eager logs a stamping record per touched
    // record. Multi-record transactions expose the difference (§2.2).
    fn run(mode: TimestampingMode, env: &Env) -> (u64, usize) {
        let db = Database::open(env.config().timestamping(mode)).unwrap();
        let mut s = Session::new(&db);
        s.execute(DDL).unwrap();
        for oid in 0..50 {
            s.execute(&format!("INSERT INTO MovingObjects VALUES ({oid}, 0, 0)"))
                .unwrap();
        }
        let base = db.log_bytes();
        for round in 1..=10 {
            s.execute("BEGIN TRAN").unwrap();
            for oid in 0..50 {
                s.execute(&format!(
                    "UPDATE MovingObjects SET LocationX = {round} WHERE Oid = {oid}"
                ))
                .unwrap();
            }
            s.execute("COMMIT TRAN").unwrap();
        }
        (db.log_bytes() - base, db.ptt_len().unwrap())
    }
    let env_lazy = Env::new("eager-lazy");
    let env_eager = Env::new("eager-eager");
    let (lazy_bytes, lazy_ptt) = run(TimestampingMode::Lazy, &env_lazy);
    let (eager_bytes, eager_ptt) = run(TimestampingMode::Eager, &env_eager);
    assert!(
        eager_bytes > lazy_bytes,
        "eager timestamping must log more: {eager_bytes} vs {lazy_bytes}"
    );
    // Eager mode never needs the persistent timestamp table.
    assert_eq!(eager_ptt, 0);
    assert!(lazy_ptt > 0);
}

#[test]
fn serializable_readers_block_writers() {
    let env = Env::new("serial");
    let db = Arc::new(env.open());
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (1, 10, 0)")
        .unwrap();

    let mut reader = db.begin(Isolation::Serializable);
    let _ = db
        .get_row(&mut reader, "MovingObjects", &Value::SmallInt(1))
        .unwrap();
    // Writer blocks on the reader's S lock; run it in a thread and make
    // sure it only succeeds after the reader commits.
    let db2 = Arc::clone(&db);
    let handle = std::thread::spawn(move || {
        let mut w = db2.begin(Isolation::Serializable);
        db2.update_row(
            &mut w,
            "MovingObjects",
            vec![Value::SmallInt(1), Value::Int(99), Value::Int(0)],
        )
        .unwrap();
        db2.commit(&mut w).unwrap();
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert!(!handle.is_finished(), "writer must wait for the read lock");
    db.commit(&mut reader).unwrap();
    handle.join().unwrap();
}

#[test]
fn snapshot_enabled_table_prunes_old_versions() {
    let env = Env::new("snapgc");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute("CREATE TABLE cache (id INT PRIMARY KEY, v INT)")
        .unwrap();
    s.execute("ALTER TABLE cache ENABLE SNAPSHOT").unwrap();
    s.execute("INSERT INTO cache VALUES (1, 0)").unwrap();
    env.tick();
    for i in 1..50 {
        s.execute(&format!("UPDATE cache SET v = {i} WHERE id = 1"))
            .unwrap();
        env.tick();
    }
    // With no active snapshots, chains are pruned to ~1 version. A
    // snapshot-enabled table never answers AS OF queries.
    let err = {
        let mut t = db.begin_as_of(db.now_ms());
        db.get_row(&mut t, "cache", &Value::Int(1)).unwrap_err()
    };
    assert!(matches!(err, Error::Catalog(_)));
    let res = s.execute("SELECT v FROM cache WHERE id = 1").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(49));
    // Versions were pruned: far fewer than 50 remain (the exact count
    // depends on stamping opportunities; the invariant is "bounded").
    let (tsplits, _) = db.split_counts();
    assert_eq!(
        tsplits, 0,
        "pruning must prevent time splits for this tiny table"
    );
}

#[test]
fn ddl_errors() {
    let env = Env::new("ddlerr");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    assert!(matches!(s.execute(DDL).unwrap_err(), Error::Catalog(_)));
    assert!(matches!(
        s.execute("SELECT * FROM nothere").unwrap_err(),
        Error::Catalog(_)
    ));
    // Enabling snapshot on a non-empty conventional table fails.
    s.execute("CREATE TABLE full_t (id INT PRIMARY KEY, v INT)")
        .unwrap();
    s.execute("INSERT INTO full_t VALUES (1, 1)").unwrap();
    assert!(s.execute("ALTER TABLE full_t ENABLE SNAPSHOT").is_err());
}

#[test]
fn multi_statement_transaction_spanning_tables() {
    let env = Env::new("multitable");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute("CREATE IMMORTAL TABLE audit (seq INT PRIMARY KEY, what VARCHAR(40))")
        .unwrap();
    s.execute("BEGIN TRAN").unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (1, 1, 1)")
        .unwrap();
    s.execute("INSERT INTO audit VALUES (1, 'created object 1')")
        .unwrap();
    s.execute("COMMIT TRAN").unwrap();
    // Both tables committed atomically; both carry the same timestamp.
    let h1 = db
        .history_rows("MovingObjects", &Value::SmallInt(1))
        .unwrap();
    let h2 = db.history_rows("audit", &Value::Int(1)).unwrap();
    assert_eq!(h1[0].0, h2[0].0, "one transaction, one timestamp");
}

#[test]
fn tsb_indexed_table_end_to_end() {
    let env = Env::new("tsbtable");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute("CREATE IMMORTAL TABLE tracked (id INT PRIMARY KEY, v INT) USING TSB")
        .unwrap();
    assert_eq!(
        db.table("tracked").unwrap().index,
        crate::index::IndexKind::Tsb
    );
    for i in 0..30 {
        s.execute(&format!("INSERT INTO tracked VALUES ({i}, 0)"))
            .unwrap();
        env.tick();
    }
    let t_mid = db.now_ms();
    env.tick();
    for round in 1..=4 {
        for i in 0..30 {
            s.execute(&format!("UPDATE tracked SET v = {round} WHERE id = {i}"))
                .unwrap();
            env.tick();
        }
    }
    // Current state via the TSB index.
    let res = s.execute("SELECT * FROM tracked WHERE id < 5").unwrap();
    assert_eq!(res.rows.len(), 5);
    assert!(res.rows.iter().all(|r| r[1] == Value::Int(4)));
    // AS OF descends the TSB index directly.
    s.execute(&format!("BEGIN TRAN AS OF ms({t_mid})")).unwrap();
    let res = s.execute("SELECT * FROM tracked").unwrap();
    s.execute("COMMIT").unwrap();
    assert_eq!(res.rows.len(), 30);
    assert!(res.rows.iter().all(|r| r[1] == Value::Int(0)));
    // Time travel per record.
    let h = s.execute("HISTORY OF tracked WHERE id = 7").unwrap();
    assert_eq!(h.rows.len(), 5, "insert + 4 updates");
    // TSB requires IMMORTAL.
    assert!(s
        .execute("CREATE TABLE plainplain (id INT PRIMARY KEY) USING TSB")
        .is_err());
}

#[test]
fn tsb_table_survives_crash_recovery() {
    let env = Env::new("tsbcrash");
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT) USING TSB")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        env.tick();
        s.execute("UPDATE t SET v = 20 WHERE id = 1").unwrap();
        env.tick();
        let mut loser = db.begin(Isolation::Serializable);
        db.update_row(&mut loser, "t", vec![Value::Int(1), Value::Int(-1)])
            .unwrap();
        db.insert_row(&mut loser, "t", vec![Value::Int(2), Value::Int(5)])
            .unwrap();
        db.force_log().unwrap();
        std::mem::forget(loser);
    }
    let db = env.open();
    assert_eq!(db.recovered_losers, 1);
    let mut s = Session::new(&db);
    let res = s.execute("SELECT * FROM t").unwrap();
    assert_eq!(res.rows.len(), 1);
    assert_eq!(res.rows[0][1], Value::Int(20));
    let h = s.execute("HISTORY OF t WHERE id = 1").unwrap();
    assert_eq!(h.rows.len(), 2, "committed history intact via TSB index");
}

#[test]
fn tsb_table_reopen_deep_history() {
    let env = Env::new("tsbreopen");
    let mut marks = Vec::new();
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT, pad VARCHAR(48)) USING TSB")
            .unwrap();
        for round in 0..8 {
            for id in 0..60 {
                let stmt = if round == 0 {
                    format!("INSERT INTO t VALUES ({id}, 0, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx')")
                } else {
                    format!("UPDATE t SET v = {round} WHERE id = {id}")
                };
                s.execute(&stmt).unwrap();
                env.tick();
            }
            marks.push((round, db.latest_ts()));
        }
        db.close().unwrap();
    }
    let db = env.open();
    for (round, ts) in marks {
        let mut txn = db.begin_as_of_ts(ts);
        let rows = db.scan_rows(&mut txn, "t").unwrap();
        db.commit(&mut txn).unwrap();
        assert_eq!(rows.len(), 60, "round {round}");
        assert!(
            rows.iter().all(|r| r[1] == Value::Int(round)),
            "round {round}"
        );
    }
}

#[test]
fn vacuum_reclaims_crash_orphaned_ptt_entries() {
    let env = Env::new("vacuum");
    {
        let db = env.open();
        let mut s = Session::new(&db);
        s.execute(DDL).unwrap();
        for oid in 0..30 {
            s.execute(&format!("INSERT INTO MovingObjects VALUES ({oid}, 0, 0)"))
                .unwrap();
            env.tick();
        }
        db.force_log().unwrap();
        // Crash: volatile refcounts are lost; after restart the PTT
        // entries are pinned (incremental GC cannot prove they're done).
    }
    let db = env.open();
    assert_eq!(db.ptt_len().unwrap(), 30);
    // Ordinary checkpoints cannot reclaim the orphans.
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    assert_eq!(db.ptt_len().unwrap(), 30);
    // The vacuum sweep stamps everything and reclaims all of them.
    let mut s = Session::new(&db);
    let res = s.execute("VACUUM").unwrap();
    assert!(res.message.contains("30"), "{}", res.message);
    assert_eq!(db.ptt_len().unwrap(), 0);
    // Data and history untouched.
    let res = s.execute("SELECT * FROM MovingObjects").unwrap();
    assert_eq!(res.rows.len(), 30);
    let h = s.execute("HISTORY OF MovingObjects WHERE Oid = 5").unwrap();
    assert_eq!(h.rows.len(), 1);
}

#[test]
fn vacuum_spares_concurrently_active_transactions() {
    let env = Env::new("vacuumactive");
    let db = env.open();
    let mut s = Session::new(&db);
    s.execute(DDL).unwrap();
    s.execute("INSERT INTO MovingObjects VALUES (1, 0, 0)")
        .unwrap();
    env.tick();
    // An active transaction holds an uncommitted version during vacuum.
    let mut active = db.begin(Isolation::Serializable);
    db.update_row(
        &mut active,
        "MovingObjects",
        vec![Value::SmallInt(1), Value::Int(7), Value::Int(0)],
    )
    .unwrap();
    db.vacuum().unwrap();
    // The active transaction can still commit and its data is correct.
    db.commit(&mut active).unwrap();
    let res = s
        .execute("SELECT LocationX FROM MovingObjects WHERE Oid = 1")
        .unwrap();
    assert_eq!(res.rows[0][0], Value::Int(7));
    // Its own PTT entry is reclaimed by the ordinary path later.
    let _ = s
        .execute("SELECT * FROM MovingObjects WHERE Oid = 1")
        .unwrap();
    db.checkpoint().unwrap();
    db.checkpoint().unwrap();
    assert_eq!(db.ptt_len().unwrap(), 0);
}

#[test]
fn eager_mode_works_with_tsb_tables() {
    let env = Env::new("eagertsb");
    let db = Database::open(env.config().timestamping(TimestampingMode::Eager)).unwrap();
    let mut s = Session::new(&db);
    s.execute("CREATE IMMORTAL TABLE t (id INT PRIMARY KEY, v INT) USING TSB")
        .unwrap();
    s.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    env.tick();
    s.execute("UPDATE t SET v = 20 WHERE id = 1").unwrap();
    // Versions are stamped at commit: no PTT entries at all.
    assert_eq!(db.ptt_len().unwrap(), 0);
    let res = s.execute("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(res.rows[0][0], Value::Int(20));
    let h = s.execute("HISTORY OF t WHERE id = 1").unwrap();
    assert_eq!(h.rows.len(), 2);
    assert_ne!(h.rows[0][2], Value::Varchar("UNCOMMITTED".into()));
}
