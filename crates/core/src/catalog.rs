//! The system catalog: table definitions persisted in a dedicated B-tree
//! (`TreeId::CATALOG`, name → serialized [`TableDef`]).
//!
//! A table's *kind* mirrors §4.1 of the paper: `Immortal` tables keep
//! persistent versions forever and enable AS OF queries; conventional
//! tables can be `SnapshotEnabled` (recent versions for snapshot isolation
//! concurrency control, garbage collected at the oldest-active-snapshot
//! watermark) or plain `Conventional` (in-place storage, no versions).

use immortaldb_common::codec::{Reader, Writer};
use immortaldb_common::{Error, Result, Timestamp, TreeId};

use crate::index::IndexKind;
use crate::row::{ColType, Column, Schema};

/// How a table treats versions (the `IMMORTAL` keyword / snapshot
/// `ALTER TABLE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Transaction-time table: versions are immortal, AS OF enabled.
    Immortal,
    /// Conventional table with snapshot versioning for concurrency
    /// control; old versions are garbage collected.
    SnapshotEnabled,
    /// Conventional table: in-place updates, no versions.
    Conventional,
}

impl TableKind {
    pub fn is_versioned(self) -> bool {
        !matches!(self, TableKind::Conventional)
    }

    fn to_u8(self) -> u8 {
        match self {
            TableKind::Immortal => 1,
            TableKind::SnapshotEnabled => 2,
            TableKind::Conventional => 3,
        }
    }

    fn from_u8(v: u8) -> Result<TableKind> {
        Ok(match v {
            1 => TableKind::Immortal,
            2 => TableKind::SnapshotEnabled,
            3 => TableKind::Conventional,
            other => return Err(Error::Corruption(format!("bad table kind {other}"))),
        })
    }
}

/// A table definition as stored in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub name: String,
    pub tree: TreeId,
    pub kind: TableKind,
    /// Index structure backing the table (page-chain B+tree or TSB-tree).
    pub index: IndexKind,
    pub schema: Schema,
}

impl TableDef {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u8(self.kind.to_u8())
            .u8(match self.index {
                IndexKind::Chain => 1,
                IndexKind::Tsb => 2,
            })
            .u32(self.tree.0)
            .u16(self.schema.pk as u16)
            .u16(self.schema.columns.len() as u16);
        for col in &self.schema.columns {
            w.bytes(col.name.as_bytes());
            match col.ctype {
                ColType::SmallInt => {
                    w.u8(1);
                }
                ColType::Int => {
                    w.u8(2);
                }
                ColType::BigInt => {
                    w.u8(3);
                }
                ColType::Varchar(n) => {
                    w.u8(4).u16(n);
                }
            }
        }
        w.finish()
    }

    pub fn decode(name: &str, data: &[u8]) -> Result<TableDef> {
        let mut r = Reader::new(data);
        let kind = TableKind::from_u8(r.u8()?)?;
        let index = match r.u8()? {
            1 => IndexKind::Chain,
            2 => IndexKind::Tsb,
            other => return Err(Error::Corruption(format!("bad index kind {other}"))),
        };
        let tree = TreeId(r.u32()?);
        let pk = r.u16()? as usize;
        let ncols = r.u16()? as usize;
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            let cname = String::from_utf8(r.bytes()?.to_vec())
                .map_err(|_| Error::Corruption("non-UTF8 column name".into()))?;
            let ctype = match r.u8()? {
                1 => ColType::SmallInt,
                2 => ColType::Int,
                3 => ColType::BigInt,
                4 => ColType::Varchar(r.u16()?),
                t => return Err(Error::Corruption(format!("bad column type tag {t}"))),
            };
            columns.push(Column { name: cname, ctype });
        }
        r.expect_end()?;
        Ok(TableDef {
            name: name.to_string(),
            tree,
            kind,
            index,
            schema: Schema::new(columns, pk)?,
        })
    }
}

/// Named snapshots share the catalog tree with table definitions but
/// live under this reserved control-byte key prefix. SQL identifiers
/// never start with a control byte, so the two key spaces cannot
/// collide; catalog loaders skip prefixed rows when decoding tables.
pub const SNAPSHOT_KEY_PREFIX: u8 = 0x01;

/// Catalog key for the named snapshot `name`.
pub fn snapshot_key(name: &str) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + name.len());
    k.push(SNAPSHOT_KEY_PREFIX);
    k.extend_from_slice(name.as_bytes());
    k
}

/// A named snapshot as stored in the catalog: a stable name bound to a
/// fixed transaction-time timestamp, usable anywhere an `AS OF` operand
/// is. Persisted in the catalog tree, so snapshots survive restarts and
/// ship to replicas through the WAL like any other catalog change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDef {
    pub name: String,
    /// The fixed point in transaction time the snapshot pins.
    pub ts: Timestamp,
    /// Wall-clock creation time (diagnostics only).
    pub created_ms: u64,
}

impl SnapshotDef {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.u64(self.ts.ttime)
            .u32(self.ts.sn)
            .u64(self.created_ms)
            .bytes(self.name.as_bytes());
        w.finish()
    }

    pub fn decode(data: &[u8]) -> Result<SnapshotDef> {
        let mut r = Reader::new(data);
        let ts = Timestamp::new(r.u64()?, r.u32()?);
        let created_ms = r.u64()?;
        let name = String::from_utf8(r.bytes()?.to_vec())
            .map_err(|_| Error::Corruption("non-UTF8 snapshot name".into()))?;
        r.expect_end()?;
        Ok(SnapshotDef {
            name,
            ts,
            created_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip_and_key_space() {
        let def = SnapshotDef {
            name: "before_migration".into(),
            ts: Timestamp::new(12_340, 7),
            created_ms: 99_999,
        };
        assert_eq!(SnapshotDef::decode(&def.encode()).unwrap(), def);
        // Snapshot keys sort below every possible table name.
        let k = snapshot_key("zzz");
        assert_eq!(k[0], SNAPSHOT_KEY_PREFIX);
        assert!(k.as_slice() < "A".as_bytes());
        assert!(SnapshotDef::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn def_roundtrip() {
        let def = TableDef {
            name: "MovingObjects".into(),
            tree: TreeId(17),
            kind: TableKind::Immortal,
            index: IndexKind::Tsb,
            schema: Schema::new(
                vec![
                    Column {
                        name: "Oid".into(),
                        ctype: ColType::SmallInt,
                    },
                    Column {
                        name: "LocationX".into(),
                        ctype: ColType::Int,
                    },
                    Column {
                        name: "Note".into(),
                        ctype: ColType::Varchar(64),
                    },
                ],
                0,
            )
            .unwrap(),
        };
        let enc = def.encode();
        let dec = TableDef::decode("MovingObjects", &enc).unwrap();
        assert_eq!(def, dec);
    }

    #[test]
    fn kind_properties() {
        assert!(TableKind::Immortal.is_versioned());
        assert!(TableKind::SnapshotEnabled.is_versioned());
        assert!(!TableKind::Conventional.is_versioned());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(TableDef::decode("t", &[9, 9, 9]).is_err());
        assert!(TableDef::decode("t", &[]).is_err());
    }
}
