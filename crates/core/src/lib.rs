//! # Immortal DB
//!
//! A transaction-time database engine, reproducing *"Transaction Time
//! Support Inside a Database Engine"* (Lomet et al., ICDE 2006) in Rust.
//!
//! Regular inserts/updates/deletes never remove information: every change
//! creates a new record version stamped — lazily, after commit — with a
//! timestamp consistent with transaction serialization order. Versions
//! live in an integrated storage structure whose pages *time-split*, so
//! the full history of every `IMMORTAL` table stays queryable:
//!
//! ```
//! use std::sync::Arc;
//! use immortaldb::{Database, DbConfig, Session, SimClock};
//!
//! let dir = std::env::temp_dir().join(format!("immortal-doc-{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let clock = Arc::new(SimClock::new(1_000_000));
//! let db = Database::open(DbConfig::new(&dir).clock(clock.clone())).unwrap();
//! let mut session = Session::new(&db);
//!
//! session.execute(
//!     "CREATE IMMORTAL TABLE MovingObjects \
//!      (Oid SMALLINT PRIMARY KEY, LocationX INT, LocationY INT)",
//! ).unwrap();
//! session.execute("INSERT INTO MovingObjects VALUES (1, 10, 20)").unwrap();
//! let t_past = db.now_ms();
//! clock.advance(20); // next clock tick
//! session.execute("UPDATE MovingObjects SET LocationX = 99 WHERE Oid = 1").unwrap();
//!
//! // Query the past: the AS OF transaction sees the pre-update state.
//! let sql = format!("BEGIN TRAN AS OF ms({t_past})");
//! session.execute(&sql).unwrap();
//! let rows = session.execute("SELECT * FROM MovingObjects WHERE Oid < 10").unwrap();
//! session.execute("COMMIT TRAN").unwrap();
//! assert_eq!(rows.rows[0][1].to_string(), "10");
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! The engine stack: a page/WAL/buffer-pool substrate
//! ([`immortaldb_storage`]), a versioned B+tree with time splits
//! ([`immortaldb_btree`]), lazy timestamping and locking
//! ([`immortaldb_txn`]), and — in this crate — the catalog, the
//! transaction API, and a small SQL dialect (`CREATE IMMORTAL TABLE`,
//! `BEGIN TRAN AS OF "…"`, and friends).

pub mod catalog;
pub mod db;
pub mod index;
pub mod row;
pub mod sql;
pub mod temporal;
pub mod txn;

#[cfg(test)]
mod tests;

pub use catalog::{SnapshotDef, TableDef, TableKind};
pub use db::{Database, DbConfig};
pub use index::{IndexKind, TableIndex};
pub use row::{ColType, Column, Schema, Value};
pub use sql::{QueryResult, Session};
pub use temporal::{DiffOp, DiffRow};
pub use txn::{Isolation, TimestampingMode, Transaction};

// Re-exports for downstream crates (benches, examples).
pub use immortaldb_btree::{CompactionStats, HistoryStats, TemporalVersion};
pub use immortaldb_check::{EventTap, Sentinel, SentinelReport};
pub use immortaldb_common::{Clock, Error, ErrorCode, Result, SimClock, SystemClock, Timestamp};
pub use immortaldb_storage::wal::{Durability, GroupCommitConfig};
