//! SQL front end: lexer, parser, and the session executor implementing
//! the paper's dialect extensions (`CREATE IMMORTAL TABLE`,
//! `BEGIN TRAN AS OF "…"`).

pub mod ast;
pub mod lexer;
pub mod parser;

use immortaldb_common::{Error, Result, Timestamp};

use crate::db::Database;
use crate::row::{Column, Schema, Value};
use crate::txn::{Isolation, Transaction};

use ast::{AsOfSpec, Predicate, Statement};
use parser::Parser;

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// Rows inserted/updated/deleted.
    pub affected: usize,
    /// Human-readable outcome for non-query statements.
    pub message: String,
}

impl QueryResult {
    fn message(msg: impl Into<String>) -> QueryResult {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            affected: 0,
            message: msg.into(),
        }
    }

    fn affected(n: usize, msg: impl Into<String>) -> QueryResult {
        QueryResult {
            columns: Vec::new(),
            rows: Vec::new(),
            affected: n,
            message: msg.into(),
        }
    }
}

/// A SQL session: owns the current explicit transaction, autocommits
/// statements outside one, and rolls the transaction back when it becomes
/// doomed (deadlock victim, write-write conflict).
pub struct Session<'a> {
    db: &'a Database,
    current: Option<Transaction>,
}

impl<'a> Session<'a> {
    pub fn new(db: &'a Database) -> Session<'a> {
        Session { db, current: None }
    }

    /// Rebuild a session around a previously detached transaction (see
    /// [`Session::into_txn`]). The reactor server keeps each connection's
    /// open transaction in the connection state machine and materializes
    /// a `Session` only for the duration of one request dispatch.
    pub fn attach(db: &'a Database, current: Option<Transaction>) -> Session<'a> {
        Session { db, current }
    }

    /// Detach the open transaction (if any) from this session without
    /// finishing it, for storage across request dispatches. The caller
    /// owns cleanup: a transaction never re-attached must be rolled back
    /// through [`Database::rollback`] or it leaks its locks.
    pub fn into_txn(mut self) -> Option<Transaction> {
        self.current.take()
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.current.is_some()
    }

    // -- typed transaction surface (the wire protocol's BEGIN / COMMIT /
    // -- ROLLBACK opcodes call these instead of round-tripping through
    // -- SQL text, so they can return real timestamps) -------------------

    /// Begin an explicit read-write transaction; returns its begin
    /// snapshot (the newest timestamp its reads observe).
    pub fn begin(&mut self, isolation: Isolation) -> Result<Timestamp> {
        if self.current.is_some() {
            return Err(Error::Sql("transaction already open".into()));
        }
        let txn = self.db.begin(isolation);
        let snapshot = txn.snapshot();
        self.current = Some(txn);
        Ok(snapshot)
    }

    /// Begin a read-only historical transaction at an exact timestamp
    /// (routed through [`Database::begin_as_of_ts`]; the engine clamps to
    /// the visibility horizon). Returns the effective AS OF timestamp.
    pub fn begin_as_of_ts(&mut self, as_of: Timestamp) -> Result<Timestamp> {
        if self.current.is_some() {
            return Err(Error::Sql("transaction already open".into()));
        }
        let txn = self.db.begin_as_of_ts(as_of);
        let snapshot = txn.snapshot();
        self.current = Some(txn);
        Ok(snapshot)
    }

    /// Begin a read-only historical transaction from a wall-clock
    /// millisecond value (`BEGIN TRAN AS OF ms(N)` equivalent).
    pub fn begin_as_of_ms(&mut self, as_of_ms: u64) -> Result<Timestamp> {
        self.begin_as_of_ts(Timestamp::as_of_clock(as_of_ms))
    }

    /// Commit the open explicit transaction; returns its commit timestamp
    /// (the begin snapshot for read-only transactions).
    pub fn commit(&mut self) -> Result<Timestamp> {
        let mut txn = self
            .current
            .take()
            .ok_or_else(|| Error::Sql("no open transaction".into()))?;
        self.db.commit(&mut txn)
    }

    /// Roll back the open explicit transaction.
    pub fn rollback(&mut self) -> Result<()> {
        let mut txn = self
            .current
            .take()
            .ok_or_else(|| Error::Sql("no open transaction".into()))?;
        self.db.rollback(&mut txn)
    }

    /// Abandon the session: roll back any open transaction, releasing its
    /// locks and versions. Used by the server for disconnects, idle
    /// timeouts and shutdown; a no-op outside a transaction.
    pub fn reset(&mut self) {
        if let Some(mut txn) = self.current.take() {
            let _ = self.db.rollback(&mut txn);
        }
    }

    // -- temporal bound resolution ---------------------------------------

    /// Resolve an AS OF operand to a point in time: a named snapshot's
    /// exact pinned timestamp, or the end of a clock operand's 20 ms
    /// tick (what `BEGIN TRAN AS OF` has always meant).
    fn point_ts(&self, spec: &AsOfSpec) -> Result<Timestamp> {
        match spec {
            AsOfSpec::Snapshot(name) => Ok(self.db.resolve_snapshot(name)?.ts),
            other => Ok(Timestamp::as_of_clock(resolve_as_of(other)?)),
        }
    }

    /// Resolve the lower bound of a `VERSIONS BETWEEN` window: the
    /// *start* of a clock operand's tick (the window covers the whole
    /// tick), a named snapshot's exact timestamp otherwise.
    fn window_lo_ts(&self, spec: &AsOfSpec) -> Result<Timestamp> {
        match spec {
            AsOfSpec::Snapshot(name) => Ok(self.db.resolve_snapshot(name)?.ts),
            other => Ok(crate::temporal::window_lo(resolve_as_of(other)?)),
        }
    }

    /// Execute one statement.
    pub fn execute(&mut self, sql: &str) -> Result<QueryResult> {
        let stmt = Parser::parse(sql)?;
        match stmt {
            Statement::Begin { as_of, isolation } => {
                match as_of {
                    Some(spec) => {
                        let ts = self.point_ts(&spec)?;
                        self.begin_as_of_ts(ts)?
                    }
                    None => self.begin(isolation)?,
                };
                Ok(QueryResult::message("transaction started"))
            }
            Statement::Commit => {
                let ts = self.commit()?;
                Ok(QueryResult::message(format!(
                    "committed at {}.{}",
                    ts.ttime, ts.sn
                )))
            }
            Statement::Rollback => {
                self.rollback()?;
                Ok(QueryResult::message("rolled back"))
            }
            Statement::CreateTable {
                name,
                kind,
                index,
                columns,
                pk,
            } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|(name, ctype)| Column { name, ctype })
                        .collect(),
                    pk,
                )?;
                self.db.create_table_with(&name, schema, kind, index)?;
                Ok(QueryResult::message(format!("table {name} created")))
            }
            Statement::AlterEnableSnapshot { table } => {
                self.db.enable_snapshot(&table)?;
                Ok(QueryResult::message(format!(
                    "snapshot versioning enabled on {table}"
                )))
            }
            Statement::RestoreTable { table, as_of } => {
                if self.current.is_some() {
                    return Err(Error::Sql(
                        "RESTORE TABLE runs as its own transaction; COMMIT or ROLLBACK first"
                            .into(),
                    ));
                }
                let restore_ts = self.point_ts(&as_of)?;
                let (n, ts) = self.db.restore_table_as_of(&table, restore_ts)?;
                Ok(QueryResult::affected(
                    n,
                    format!(
                        "restored {table} to {}.{} ({n} rows changed)",
                        ts.ttime, ts.sn
                    ),
                ))
            }
            Statement::Checkpoint => {
                let reclaimed = self.db.checkpoint()?;
                Ok(QueryResult::message(format!(
                    "checkpoint complete, {reclaimed} PTT entries reclaimed"
                )))
            }
            Statement::Vacuum => {
                let reclaimed = self.db.vacuum()?;
                Ok(QueryResult::message(format!(
                    "vacuum complete, {reclaimed} PTT entries reclaimed"
                )))
            }
            Statement::CreateSnapshot { name, as_of } => {
                let ts = as_of.map(|s| self.point_ts(&s)).transpose()?;
                let def = self.db.create_named_snapshot(&name, ts)?;
                Ok(QueryResult::message(format!(
                    "snapshot {name} created at {}.{}",
                    def.ts.ttime, def.ts.sn
                )))
            }
            Statement::DropSnapshot { name } => {
                self.db.drop_named_snapshot(&name)?;
                Ok(QueryResult::message(format!("snapshot {name} dropped")))
            }
            Statement::ShowSnapshots => {
                let rows: Vec<Vec<Value>> = self
                    .db
                    .list_snapshots()
                    .into_iter()
                    .map(|s| {
                        vec![
                            Value::Varchar(s.name),
                            Value::BigInt(s.ts.ttime as i64),
                            Value::Int(s.ts.sn as i32),
                            Value::BigInt(s.created_ms as i64),
                        ]
                    })
                    .collect();
                let n = rows.len();
                Ok(QueryResult {
                    columns: ["name", "_ts_ms", "_ts_sn", "created_ms"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    rows,
                    affected: 0,
                    message: format!("{n} snapshots"),
                })
            }
            Statement::ShowStats => {
                let snap = self.db.metrics_snapshot();
                let rows: Vec<Vec<Value>> = snap
                    .entries()
                    .into_iter()
                    .map(|(name, value)| vec![Value::Varchar(name), Value::BigInt(value as i64)])
                    .collect();
                let n = rows.len();
                Ok(QueryResult {
                    columns: vec!["metric".to_string(), "value".to_string()],
                    rows,
                    affected: 0,
                    message: format!("{n} metrics"),
                })
            }
            dml => self.run_dml(dml),
        }
    }

    /// Run a DML/query statement, autocommitting when no explicit
    /// transaction is open, and rolling back doomed transactions.
    fn run_dml(&mut self, stmt: Statement) -> Result<QueryResult> {
        let implicit = self.current.is_none();
        if implicit {
            self.current = Some(self.db.begin(Isolation::Serializable));
        }
        let mut txn = self.current.take().expect("transaction present");
        let result = self.exec_stmt(&mut txn, stmt);
        match result {
            Ok(res) => {
                if implicit {
                    self.db.commit(&mut txn)?;
                } else {
                    self.current = Some(txn);
                }
                Ok(res)
            }
            Err(e) => {
                // A transient failure dooms the transaction; roll it back
                // so its locks and versions disappear. Other errors keep
                // an explicit transaction open.
                if implicit || e.is_transient() {
                    let _ = self.db.rollback(&mut txn);
                } else {
                    self.current = Some(txn);
                }
                Err(e)
            }
        }
    }

    fn exec_stmt(&self, txn: &mut Transaction, stmt: Statement) -> Result<QueryResult> {
        match stmt {
            Statement::Insert { table, rows } => {
                let n = rows.len();
                for row in rows {
                    self.db.insert_row(txn, &table, row)?;
                }
                Ok(QueryResult::affected(n, format!("{n} rows inserted")))
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let def = self.db.table(&table)?;
                let matching = self.matching_rows(txn, &table, &predicate)?;
                let mut n = 0usize;
                for mut row in matching {
                    for (col, val) in &sets {
                        let idx = def.schema.col_index(col)?;
                        if idx == def.schema.pk {
                            return Err(Error::Sql("cannot update the primary key".into()));
                        }
                        row[idx] = val.coerce(def.schema.columns[idx].ctype)?;
                    }
                    self.db.update_row(txn, &table, row)?;
                    n += 1;
                }
                Ok(QueryResult::affected(n, format!("{n} rows updated")))
            }
            Statement::Delete { table, predicate } => {
                let def = self.db.table(&table)?;
                let matching = self.matching_rows(txn, &table, &predicate)?;
                let mut n = 0usize;
                for row in matching {
                    self.db.delete_row(txn, &table, &row[def.schema.pk])?;
                    n += 1;
                }
                Ok(QueryResult::affected(n, format!("{n} rows deleted")))
            }
            Statement::Select {
                table,
                columns,
                predicate,
            } => {
                let def = self.db.table(&table)?;
                let rows = self.matching_rows(txn, &table, &predicate)?;
                let (names, idxs): (Vec<String>, Vec<usize>) = match columns {
                    None => (
                        def.schema.columns.iter().map(|c| c.name.clone()).collect(),
                        (0..def.schema.columns.len()).collect(),
                    ),
                    Some(cols) => {
                        let idxs: Vec<usize> = cols
                            .iter()
                            .map(|c| def.schema.col_index(c))
                            .collect::<Result<_>>()?;
                        (cols, idxs)
                    }
                };
                let rows = rows
                    .into_iter()
                    .map(|r| idxs.iter().map(|&i| r[i].clone()).collect())
                    .collect::<Vec<Vec<Value>>>();
                let n = rows.len();
                Ok(QueryResult {
                    columns: names,
                    rows,
                    affected: 0,
                    message: format!("{n} rows"),
                })
            }
            Statement::History { table, pk } => {
                let def = self.db.table(&table)?;
                let history = self.db.history_rows(&table, &pk)?;
                let mut columns = vec![
                    "_commit_ms".to_string(),
                    "_commit_sn".to_string(),
                    "_op".to_string(),
                ];
                columns.extend(def.schema.columns.iter().map(|c| c.name.clone()));
                let mut rows = Vec::new();
                for (ts, row) in history {
                    let mut out = match ts {
                        Some(t) => vec![
                            Value::BigInt(t.ttime as i64),
                            Value::Int(t.sn as i32),
                            Value::Varchar(if row.is_some() { "WRITE" } else { "DELETE" }.into()),
                        ],
                        None => vec![
                            Value::BigInt(-1),
                            Value::Int(-1),
                            Value::Varchar("UNCOMMITTED".into()),
                        ],
                    };
                    match row {
                        Some(vals) => out.extend(vals),
                        None => out.extend(
                            def.schema
                                .columns
                                .iter()
                                .map(|_| Value::Varchar(String::new())),
                        ),
                    }
                    rows.push(out);
                }
                let n = rows.len();
                Ok(QueryResult {
                    columns,
                    rows,
                    affected: 0,
                    message: format!("{n} versions"),
                })
            }
            Statement::VersionsBetween {
                table,
                columns,
                t1,
                t2,
                predicate,
            } => {
                let def = self.db.table(&table)?;
                let lo = self.window_lo_ts(&t1)?;
                let hi = self.point_ts(&t2)?;
                let versions = self.db.versions_between(&table, lo, hi)?;
                let (names, idxs): (Vec<String>, Vec<usize>) = match columns {
                    None => (
                        def.schema.columns.iter().map(|c| c.name.clone()).collect(),
                        (0..def.schema.columns.len()).collect(),
                    ),
                    Some(cols) => {
                        let idxs: Vec<usize> = cols
                            .iter()
                            .map(|c| def.schema.col_index(c))
                            .collect::<Result<_>>()?;
                        (cols, idxs)
                    }
                };
                // A key matches when any live version of it inside the
                // window satisfies the predicate; every version of a
                // matching key (tombstones included) is then returned.
                let mut rows = Vec::new();
                let mut i = 0;
                while i < versions.len() {
                    let mut j = i;
                    while j < versions.len() && versions[j].key == versions[i].key {
                        j += 1;
                    }
                    let group = &versions[i..j];
                    i = j;
                    let mut matched = predicate.is_empty();
                    let mut decoded: Vec<Option<Vec<Value>>> = Vec::with_capacity(group.len());
                    for v in group {
                        let row = v
                            .data
                            .as_deref()
                            .map(|d| def.schema.decode_row(d))
                            .transpose()?;
                        if let Some(r) = &row {
                            if !matched && eval_predicate(&def.schema, &predicate, r)? {
                                matched = true;
                            }
                        }
                        decoded.push(row);
                    }
                    if !matched {
                        continue;
                    }
                    for (v, row) in group.iter().zip(decoded) {
                        let mut out = vec![
                            Value::BigInt(v.ts.ttime as i64),
                            Value::Int(v.ts.sn as i32),
                            Value::Varchar(if row.is_some() { "WRITE" } else { "DELETE" }.into()),
                        ];
                        match row {
                            Some(vals) => out.extend(idxs.iter().map(|&k| vals[k].clone())),
                            // A tombstone has no row image; recover the
                            // primary key from the index key so the row
                            // still says *what* was deleted.
                            None => {
                                let pk = crate::row::decode_key(&v.key)?;
                                for &k in &idxs {
                                    out.push(if k == def.schema.pk {
                                        pk.clone()
                                    } else {
                                        Value::Varchar(String::new())
                                    });
                                }
                            }
                        }
                        rows.push(out);
                    }
                }
                let mut cols = vec![
                    "_commit_ms".to_string(),
                    "_commit_sn".to_string(),
                    "_op".to_string(),
                ];
                cols.extend(names);
                let n = rows.len();
                Ok(QueryResult {
                    columns: cols,
                    rows,
                    affected: 0,
                    message: format!("{n} versions"),
                })
            }
            Statement::DiffTable { table, t1, t2 } => {
                let def = self.db.table(&table)?;
                let a = self.point_ts(&t1)?;
                let b = self.point_ts(&t2)?;
                let diff = self.db.diff_table(&table, a, b)?;
                let mut cols = vec![
                    "_op".to_string(),
                    "_commit_ms".to_string(),
                    "_commit_sn".to_string(),
                ];
                for c in &def.schema.columns {
                    cols.push(format!("old_{}", c.name));
                }
                for c in &def.schema.columns {
                    cols.push(format!("new_{}", c.name));
                }
                let ncols = def.schema.columns.len();
                let mut rows = Vec::new();
                for d in diff {
                    let mut out = vec![
                        Value::Varchar(d.op.name().into()),
                        Value::BigInt(d.ts.ttime as i64),
                        Value::Int(d.ts.sn as i32),
                    ];
                    for side in [&d.before, &d.after] {
                        match side {
                            Some(data) => out.extend(def.schema.decode_row(data)?),
                            None => out.extend((0..ncols).map(|_| Value::Varchar(String::new()))),
                        }
                    }
                    rows.push(out);
                }
                let n = rows.len();
                Ok(QueryResult {
                    columns: cols,
                    rows,
                    affected: 0,
                    message: format!("{n} changes"),
                })
            }
            other => Err(Error::Sql(format!("not a DML statement: {other:?}"))),
        }
    }

    /// Rows of `table` visible to `txn` that satisfy `predicate`. Uses a
    /// primary-key point lookup when the predicate pins the key.
    fn matching_rows(
        &self,
        txn: &mut Transaction,
        table: &str,
        predicate: &Predicate,
    ) -> Result<Vec<Vec<Value>>> {
        let def = self.db.table(table)?;
        // Point lookup if some condition is `pk = literal`.
        let pk_name = &def.schema.columns[def.schema.pk].name;
        if let Some(cond) = predicate
            .iter()
            .find(|c| c.op == ast::CmpOp::Eq && c.column.eq_ignore_ascii_case(pk_name))
        {
            let row = self.db.get_row(txn, table, &cond.value)?;
            return Ok(row
                .into_iter()
                .filter(|r| eval_predicate(&def.schema, predicate, r).unwrap_or(false))
                .collect());
        }
        let rows = self.db.scan_rows(txn, table)?;
        let mut out = Vec::new();
        for r in rows {
            if eval_predicate(&def.schema, predicate, &r)? {
                out.push(r);
            }
        }
        Ok(out)
    }
}

/// Evaluate a conjunctive predicate against a row.
fn eval_predicate(schema: &Schema, predicate: &Predicate, row: &[Value]) -> Result<bool> {
    for cond in predicate {
        let idx = schema.col_index(&cond.column)?;
        let lhs = &row[idx];
        let rhs = cond.value.coerce(schema.columns[idx].ctype)?;
        let ord = lhs
            .partial_cmp(&rhs)
            .ok_or_else(|| Error::Sql("incomparable values".into()))?;
        if !cond.op.eval(ord) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Convert a clock-valued AS OF spec to milliseconds since the UNIX
/// epoch. Snapshot names carry an exact timestamp, not a clock value —
/// they resolve through [`Session::point_ts`] instead.
fn resolve_as_of(spec: &AsOfSpec) -> Result<u64> {
    match spec {
        AsOfSpec::Millis(ms) => Ok(*ms),
        AsOfSpec::DateTime(s) => parse_datetime_ms(s),
        AsOfSpec::Snapshot(name) => Err(Error::Internal(format!(
            "snapshot bound {name} must resolve through the session"
        ))),
    }
}

/// Parse `"M/D/YYYY HH:MM:SS"` (the paper's format, interpreted as UTC)
/// into epoch milliseconds. Uses the days-from-civil algorithm.
pub fn parse_datetime_ms(s: &str) -> Result<u64> {
    let bad = || Error::Sql(format!("bad datetime {s:?}; expected M/D/YYYY HH:MM:SS"));
    let (date, time) = s.split_once(' ').ok_or_else(bad)?;
    let mut dparts = date.split('/');
    let month: i64 = dparts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let day: i64 = dparts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let year: i64 = dparts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if dparts.next().is_some() {
        return Err(bad());
    }
    let mut tparts = time.split(':');
    let hour: i64 = tparts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let minute: i64 = tparts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let second: i64 = tparts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if tparts.next().is_some() {
        return Err(bad());
    }
    if !(1..=12).contains(&month)
        || !(1..=31).contains(&day)
        || !(0..24).contains(&hour)
        || !(0..60).contains(&minute)
        || !(0..60).contains(&second)
    {
        return Err(bad());
    }
    // Days from civil (Howard Hinnant): valid for all Gregorian dates.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (month + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    let secs = days * 86_400 + hour * 3_600 + minute * 60 + second;
    if secs < 0 {
        return Err(Error::Sql("datetimes before 1970 are not supported".into()));
    }
    Ok(secs as u64 * 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datetime_parsing_known_values() {
        // 1/1/1970 00:00:00 = epoch.
        assert_eq!(parse_datetime_ms("1/1/1970 00:00:00").unwrap(), 0);
        // 1/2/1970 = one day.
        assert_eq!(parse_datetime_ms("1/2/1970 00:00:00").unwrap(), 86_400_000);
        // 8/12/2004 10:15:20 UTC = 1092305720 seconds (verified against
        // `date -u -d "2004-08-12 10:15:20" +%s`).
        assert_eq!(
            parse_datetime_ms("8/12/2004 10:15:20").unwrap(),
            1_092_305_720_000
        );
        // Leap-year handling: 2/29/2000 is valid.
        assert_eq!(
            parse_datetime_ms("2/29/2000 00:00:00").unwrap(),
            951_782_400_000
        );
    }

    #[test]
    fn datetime_rejects_malformed() {
        assert!(parse_datetime_ms("13/1/2000 00:00:00").is_err());
        assert!(parse_datetime_ms("1/1/2000").is_err());
        assert!(parse_datetime_ms("garbage").is_err());
        assert!(parse_datetime_ms("1/1/2000 25:00:00").is_err());
        assert!(parse_datetime_ms("1/1/1960 00:00:00").is_err());
    }
}
