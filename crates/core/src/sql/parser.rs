//! Recursive-descent parser for the SQL dialect.
//!
//! Supported statements (keywords case-insensitive):
//!
//! ```sql
//! CREATE [IMMORTAL] TABLE t (col TYPE [PRIMARY KEY], ...) [ON [PRIMARY]]
//!                                                          [USING TSB | USING CHAIN]
//! ALTER TABLE t ENABLE SNAPSHOT
//! BEGIN TRAN [AS OF "M/D/YYYY HH:MM:SS" | AS OF ms(N)]
//!            [ISOLATION SNAPSHOT | ISOLATION SERIALIZABLE]
//! COMMIT [TRAN] | ROLLBACK [TRAN]
//! INSERT INTO t VALUES (v, ...), (v, ...), ...
//! UPDATE t SET col = lit [, ...] [WHERE conds]
//! DELETE FROM t [WHERE conds]
//! SELECT * | col[, col...] FROM t [WHERE conds]
//! SELECT * | col[, col...] FROM t VERSIONS BETWEEN time AND time [WHERE conds]
//! DIFF TABLE t BETWEEN time AND time
//! HISTORY OF t WHERE pkcol = lit
//! RESTORE TABLE t AS OF time
//! CREATE SNAPSHOT s [AS OF time]
//! DROP SNAPSHOT s
//! CHECKPOINT
//! SHOW STATS | SHOW SNAPSHOTS
//! ```
//!
//! where `time` is `"M/D/YYYY HH:MM:SS"`, `ms(N)`, or `SNAPSHOT name`
//! (a named snapshot; also valid after `BEGIN TRAN AS OF`).

use immortaldb_common::{Error, Result};

use crate::catalog::TableKind;
use crate::index::IndexKind;
use crate::row::{ColType, Value};
use crate::txn::Isolation;

use super::ast::{AsOfSpec, CmpOp, Condition, Predicate, Statement};
use super::lexer::{tokenize_spanned, Token};

pub struct Parser {
    tokens: Vec<Token>,
    /// Byte offset of each token's first character in the input.
    spans: Vec<usize>,
    /// Total input length (offset reported for "unexpected end").
    end: usize,
    pos: usize,
}

impl Parser {
    pub fn parse(input: &str) -> Result<Statement> {
        let spanned = tokenize_spanned(input)?;
        let (tokens, spans): (Vec<Token>, Vec<usize>) = spanned.into_iter().unzip();
        let mut p = Parser {
            tokens,
            spans,
            end: input.len(),
            pos: 0,
        };
        let stmt = p.statement()?;
        if p.pos != p.tokens.len() {
            return Err(p.err(format!(
                "trailing input after statement: {:?}",
                &p.tokens[p.pos..]
            )));
        }
        Ok(stmt)
    }

    /// Byte offset of the token at the cursor (input length at EOF).
    fn offset(&self) -> usize {
        self.spans.get(self.pos).copied().unwrap_or(self.end)
    }

    /// A parse error anchored at the current token.
    fn err(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of statement"))?;
        self.pos += 1;
        Ok(t)
    }

    /// Consume the next token if it is the given keyword.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    fn expect(&mut self, tok: Token) -> Result<()> {
        let t = self.next()?;
        if t == tok {
            Ok(())
        } else {
            Err(self.err_prev(format!("expected {tok:?}, found {t:?}")))
        }
    }

    /// A parse error anchored at the token just consumed.
    fn err_prev(&self, message: impl Into<String>) -> Error {
        Error::Parse {
            offset: self
                .spans
                .get(self.pos.saturating_sub(1))
                .copied()
                .unwrap_or(self.end),
            message: message.into(),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(self.err_prev(format!("expected identifier, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("SNAPSHOT") {
                return self.create_snapshot();
            }
            return self.create_table();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("SNAPSHOT")?;
            let name = self.ident()?;
            return Ok(Statement::DropSnapshot { name });
        }
        if self.eat_kw("ALTER") {
            return self.alter_table();
        }
        if self.eat_kw("BEGIN") {
            return self.begin();
        }
        if self.eat_kw("COMMIT") {
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION");
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("SELECT") {
            return self.select();
        }
        if self.eat_kw("DIFF") {
            return self.diff();
        }
        if self.eat_kw("HISTORY") {
            return self.history();
        }
        if self.eat_kw("RESTORE") {
            return self.restore();
        }
        if self.eat_kw("CHECKPOINT") {
            return Ok(Statement::Checkpoint);
        }
        if self.eat_kw("VACUUM") {
            return Ok(Statement::Vacuum);
        }
        if self.eat_kw("SHOW") {
            if self.eat_kw("STATS") {
                return Ok(Statement::ShowStats);
            }
            if self.eat_kw("SNAPSHOTS") {
                return Ok(Statement::ShowSnapshots);
            }
            return Err(self.err("SHOW expects STATS or SNAPSHOTS"));
        }
        Err(self.err(format!("unknown statement start: {:?}", self.peek())))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let kind = if self.eat_kw("IMMORTAL") {
            TableKind::Immortal
        } else {
            TableKind::Conventional
        };
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect(Token::LParen)?;
        let mut columns = Vec::new();
        let mut pk: Option<usize> = None;
        loop {
            let cname = self.ident()?;
            let ctype = self.col_type()?;
            if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                if pk.replace(columns.len()).is_some() {
                    return Err(self.err_prev("multiple PRIMARY KEY columns"));
                }
            }
            columns.push((cname, ctype));
            match self.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => return Err(self.err_prev(format!("expected , or ), found {other:?}"))),
            }
        }
        // Optional filegroup clause from the paper's example: ON [PRIMARY].
        if self.eat_kw("ON") {
            let _ = self.ident()?;
        }
        // Optional index selection: USING TSB (the §7.2 temporal index)
        // or USING CHAIN (the default page-chain B+tree).
        let mut index = IndexKind::Chain;
        if self.eat_kw("USING") {
            index = if self.eat_kw("TSB") {
                IndexKind::Tsb
            } else if self.eat_kw("CHAIN") {
                IndexKind::Chain
            } else {
                return Err(self.err("USING expects TSB or CHAIN"));
            };
        }
        let pk = pk.ok_or_else(|| self.err("a PRIMARY KEY column is required"))?;
        Ok(Statement::CreateTable {
            name,
            kind,
            index,
            columns,
            pk,
        })
    }

    fn col_type(&mut self) -> Result<ColType> {
        let t = self.ident()?;
        Ok(match t.to_ascii_uppercase().as_str() {
            "SMALLINT" => ColType::SmallInt,
            "INT" | "INTEGER" => ColType::Int,
            "BIGINT" => ColType::BigInt,
            "VARCHAR" => {
                self.expect(Token::LParen)?;
                let n = match self.next()? {
                    Token::Number(n) if n > 0 && n <= u16::MAX as i64 => n as u16,
                    other => return Err(self.err_prev(format!("bad VARCHAR length {other:?}"))),
                };
                self.expect(Token::RParen)?;
                ColType::Varchar(n)
            }
            other => return Err(self.err_prev(format!("unknown type {other}"))),
        })
    }

    fn alter_table(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let table = self.ident()?;
        self.expect_kw("ENABLE")?;
        self.expect_kw("SNAPSHOT")?;
        Ok(Statement::AlterEnableSnapshot { table })
    }

    fn begin(&mut self) -> Result<Statement> {
        let _ = self.eat_kw("TRAN") || self.eat_kw("TRANSACTION");
        let mut as_of = None;
        let mut isolation = Isolation::Serializable;
        loop {
            if self.eat_kw("AS") {
                self.expect_kw("OF")?;
                as_of = Some(self.as_of_spec()?);
            } else if self.eat_kw("ISOLATION") {
                isolation = if self.eat_kw("SNAPSHOT") {
                    Isolation::Snapshot
                } else if self.eat_kw("SERIALIZABLE") {
                    Isolation::Serializable
                } else {
                    return Err(self.err("ISOLATION expects SNAPSHOT or SERIALIZABLE"));
                };
            } else {
                break;
            }
        }
        Ok(Statement::Begin { as_of, isolation })
    }

    /// The time operand shared by `BEGIN TRAN AS OF`, `RESTORE TABLE …
    /// AS OF`, `VERSIONS BETWEEN` and `DIFF TABLE`: a datetime string,
    /// `ms(N)`, or `SNAPSHOT name` (a named snapshot's pinned time).
    fn as_of_spec(&mut self) -> Result<AsOfSpec> {
        if self.eat_kw("SNAPSHOT") {
            let name = self.ident()?;
            return Ok(AsOfSpec::Snapshot(name));
        }
        match self.next()? {
            Token::Str(s) => Ok(AsOfSpec::DateTime(s)),
            Token::Ident(f) if f.eq_ignore_ascii_case("ms") => {
                self.expect(Token::LParen)?;
                let n = match self.next()? {
                    Token::Number(n) if n >= 0 => n as u64,
                    other => return Err(self.err_prev(format!("bad ms() value {other:?}"))),
                };
                self.expect(Token::RParen)?;
                Ok(AsOfSpec::Millis(n))
            }
            other => Err(self.err_prev(format!(
                "AS OF expects a datetime string, ms(N) or SNAPSHOT name, found {other:?}"
            ))),
        }
    }

    fn create_snapshot(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        let mut as_of = None;
        if self.eat_kw("AS") {
            self.expect_kw("OF")?;
            as_of = Some(self.as_of_spec()?);
        }
        Ok(Statement::CreateSnapshot { name, as_of })
    }

    fn diff(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let table = self.ident()?;
        self.expect_kw("BETWEEN")?;
        let (t1, t2) = self.window_bounds()?;
        Ok(Statement::DiffTable { table, t1, t2 })
    }

    /// `time AND time` after BETWEEN. Rejects a reversed window at
    /// parse time when both bounds are literals (the error points at
    /// the upper bound's byte offset); snapshot bounds resolve at
    /// execution instead.
    fn window_bounds(&mut self) -> Result<(AsOfSpec, AsOfSpec)> {
        let t1 = self.as_of_spec()?;
        self.expect_kw("AND")?;
        let t2_off = self.offset();
        let t2 = self.as_of_spec()?;
        if let (Some(a), Some(b)) = (literal_ms(&t1), literal_ms(&t2)) {
            if b < a {
                return Err(Error::Parse {
                    offset: t2_off,
                    message: format!(
                        "reversed time window: upper bound ms({b}) is below lower bound ms({a})"
                    ),
                });
            }
        }
        Ok((t1, t2))
    }

    fn restore(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let table = self.ident()?;
        self.expect_kw("AS")?;
        self.expect_kw("OF")?;
        let as_of = self.as_of_spec()?;
        Ok(Statement::RestoreTable { table, as_of })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.next()? {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => return Err(self.err_prev(format!("expected , or ), found {other:?}"))),
                }
            }
            rows.push(row);
            if let Some(Token::Comma) = self.peek() {
                self.pos += 1;
                continue;
            }
            break;
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(Token::Eq)?;
            sets.push((col, self.literal()?));
            if let Some(Token::Comma) = self.peek() {
                self.pos += 1;
                continue;
            }
            break;
        }
        let predicate = self.opt_where()?;
        Ok(Statement::Update {
            table,
            sets,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let predicate = self.opt_where()?;
        Ok(Statement::Delete { table, predicate })
    }

    fn select(&mut self) -> Result<Statement> {
        let columns = if let Some(Token::Star) = self.peek() {
            self.pos += 1;
            None
        } else {
            let mut cols = vec![self.ident()?];
            while let Some(Token::Comma) = self.peek() {
                self.pos += 1;
                cols.push(self.ident()?);
            }
            Some(cols)
        };
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        if self.eat_kw("VERSIONS") {
            self.expect_kw("BETWEEN")?;
            let (t1, t2) = self.window_bounds()?;
            let predicate = self.opt_where()?;
            return Ok(Statement::VersionsBetween {
                table,
                columns,
                t1,
                t2,
                predicate,
            });
        }
        let predicate = self.opt_where()?;
        Ok(Statement::Select {
            table,
            columns,
            predicate,
        })
    }

    fn history(&mut self) -> Result<Statement> {
        self.expect_kw("OF")?;
        let table = self.ident()?;
        self.expect_kw("WHERE")?;
        let _pk_col = self.ident()?;
        self.expect(Token::Eq)?;
        let pk = self.literal()?;
        Ok(Statement::History { table, pk })
    }

    fn opt_where(&mut self) -> Result<Predicate> {
        if !self.eat_kw("WHERE") {
            return Ok(Vec::new());
        }
        let mut conds = vec![self.condition()?];
        while self.eat_kw("AND") {
            conds.push(self.condition()?);
        }
        Ok(conds)
    }

    fn condition(&mut self) -> Result<Condition> {
        let column = self.ident()?;
        let op = match self.next()? {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            other => return Err(self.err_prev(format!("expected comparison, found {other:?}"))),
        };
        let value = self.literal()?;
        Ok(Condition { column, op, value })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Token::Number(n) => Ok(Value::BigInt(n)),
            Token::Minus => match self.next()? {
                Token::Number(n) => Ok(Value::BigInt(-n)),
                other => Err(self.err_prev(format!("expected number after -, found {other:?}"))),
            },
            Token::Str(s) => Ok(Value::Varchar(s)),
            other => Err(self.err_prev(format!("expected literal, found {other:?}"))),
        }
    }
}

/// Milliseconds of a bound known at parse time (`None` for snapshot
/// names and unparseable datetimes, which resolve — or fail — at
/// execution).
fn literal_ms(spec: &AsOfSpec) -> Option<u64> {
    match spec {
        AsOfSpec::Millis(ms) => Some(*ms),
        AsOfSpec::DateTime(s) => super::parse_datetime_ms(s).ok(),
        AsOfSpec::Snapshot(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_create_table() {
        let stmt = Parser::parse(
            "Create IMMORTAL Table MovingObjects \
             (Oid smallint PRIMARY KEY, LocationX int, LocationY int) ON [PRIMARY]",
        )
        .unwrap();
        assert_eq!(
            stmt,
            Statement::CreateTable {
                name: "MovingObjects".into(),
                kind: TableKind::Immortal,
                index: IndexKind::Chain,
                columns: vec![
                    ("Oid".into(), ColType::SmallInt),
                    ("LocationX".into(), ColType::Int),
                    ("LocationY".into(), ColType::Int),
                ],
                pk: 0,
            }
        );
    }

    #[test]
    fn parses_paper_as_of_query_pair() {
        let begin = Parser::parse("Begin Tran AS OF \"8/12/2004 10:15:20\"").unwrap();
        assert_eq!(
            begin,
            Statement::Begin {
                as_of: Some(AsOfSpec::DateTime("8/12/2004 10:15:20".into())),
                isolation: Isolation::Serializable,
            }
        );
        let select = Parser::parse("SELECT * FROM MovingObjects WHERE Oid < 10").unwrap();
        assert_eq!(
            select,
            Statement::Select {
                table: "MovingObjects".into(),
                columns: None,
                predicate: vec![Condition {
                    column: "Oid".into(),
                    op: CmpOp::Lt,
                    value: Value::BigInt(10),
                }],
            }
        );
        assert_eq!(Parser::parse("Commit Tran").unwrap(), Statement::Commit);
    }

    #[test]
    fn parses_dml() {
        let ins = Parser::parse("INSERT INTO t VALUES (1, 2, 'x'), (3, -4, 'y')").unwrap();
        match ins {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Value::BigInt(-4));
            }
            other => panic!("{other:?}"),
        }
        let upd = Parser::parse("UPDATE t SET a = 5, b = 'z' WHERE id = 3 AND a >= 2").unwrap();
        match upd {
            Statement::Update {
                sets, predicate, ..
            } => {
                assert_eq!(sets.len(), 2);
                assert_eq!(predicate.len(), 2);
            }
            other => panic!("{other:?}"),
        }
        let del = Parser::parse("DELETE FROM t").unwrap();
        assert_eq!(
            del,
            Statement::Delete {
                table: "t".into(),
                predicate: vec![],
            }
        );
    }

    #[test]
    fn parses_begin_variants() {
        assert_eq!(
            Parser::parse("BEGIN TRAN ISOLATION SNAPSHOT").unwrap(),
            Statement::Begin {
                as_of: None,
                isolation: Isolation::Snapshot,
            }
        );
        assert_eq!(
            Parser::parse("BEGIN TRAN AS OF ms(123456)").unwrap(),
            Statement::Begin {
                as_of: Some(AsOfSpec::Millis(123456)),
                isolation: Isolation::Serializable,
            }
        );
    }

    #[test]
    fn parses_history_and_misc() {
        assert_eq!(
            Parser::parse("HISTORY OF t WHERE Oid = 7").unwrap(),
            Statement::History {
                table: "t".into(),
                pk: Value::BigInt(7),
            }
        );
        assert_eq!(Parser::parse("CHECKPOINT").unwrap(), Statement::Checkpoint);
        assert_eq!(
            Parser::parse("RESTORE TABLE t AS OF ms(42)").unwrap(),
            Statement::RestoreTable {
                table: "t".into(),
                as_of: AsOfSpec::Millis(42),
            }
        );
        assert_eq!(
            Parser::parse("RESTORE TABLE t AS OF \"8/12/2004 10:15:20\"").unwrap(),
            Statement::RestoreTable {
                table: "t".into(),
                as_of: AsOfSpec::DateTime("8/12/2004 10:15:20".into()),
            }
        );
        assert!(Parser::parse("RESTORE TABLE t").is_err());
        assert_eq!(
            Parser::parse("ALTER TABLE t ENABLE SNAPSHOT").unwrap(),
            Statement::AlterEnableSnapshot { table: "t".into() }
        );
    }

    #[test]
    fn parses_temporal_statements() {
        assert_eq!(
            Parser::parse("SELECT * FROM t VERSIONS BETWEEN ms(100) AND ms(200) WHERE Oid = 1")
                .unwrap(),
            Statement::VersionsBetween {
                table: "t".into(),
                columns: None,
                t1: AsOfSpec::Millis(100),
                t2: AsOfSpec::Millis(200),
                predicate: vec![Condition {
                    column: "Oid".into(),
                    op: CmpOp::Eq,
                    value: Value::BigInt(1),
                }],
            }
        );
        assert_eq!(
            Parser::parse("SELECT a, b FROM t VERSIONS BETWEEN SNAPSHOT s1 AND ms(99)").unwrap(),
            Statement::VersionsBetween {
                table: "t".into(),
                columns: Some(vec!["a".into(), "b".into()]),
                t1: AsOfSpec::Snapshot("s1".into()),
                t2: AsOfSpec::Millis(99),
                predicate: vec![],
            }
        );
        assert_eq!(
            Parser::parse("DIFF TABLE t BETWEEN \"1/1/1970 00:00:01\" AND SNAPSHOT end").unwrap(),
            Statement::DiffTable {
                table: "t".into(),
                t1: AsOfSpec::DateTime("1/1/1970 00:00:01".into()),
                t2: AsOfSpec::Snapshot("end".into()),
            }
        );
        assert_eq!(
            Parser::parse("CREATE SNAPSHOT s1").unwrap(),
            Statement::CreateSnapshot {
                name: "s1".into(),
                as_of: None,
            }
        );
        assert_eq!(
            Parser::parse("CREATE SNAPSHOT s1 AS OF ms(42)").unwrap(),
            Statement::CreateSnapshot {
                name: "s1".into(),
                as_of: Some(AsOfSpec::Millis(42)),
            }
        );
        assert_eq!(
            Parser::parse("DROP SNAPSHOT s1").unwrap(),
            Statement::DropSnapshot { name: "s1".into() }
        );
        assert_eq!(
            Parser::parse("SHOW SNAPSHOTS").unwrap(),
            Statement::ShowSnapshots
        );
        assert_eq!(
            Parser::parse("BEGIN TRAN AS OF SNAPSHOT s1").unwrap(),
            Statement::Begin {
                as_of: Some(AsOfSpec::Snapshot("s1".into())),
                isolation: Isolation::Serializable,
            }
        );
    }

    #[test]
    fn temporal_parse_errors_report_byte_offsets() {
        // Reversed literal bounds: the error points at the upper bound.
        match Parser::parse("SELECT * FROM t VERSIONS BETWEEN ms(200) AND ms(100)") {
            Err(e) => {
                assert_eq!(e.parse_offset(), Some(45), "{e}");
                assert!(e.to_string().contains("reversed"), "{e}");
            }
            Ok(s) => panic!("parsed {s:?}"),
        }
        match Parser::parse("DIFF TABLE t BETWEEN ms(9) AND ms(3)") {
            Err(e) => assert_eq!(e.parse_offset(), Some(31), "{e}"),
            Ok(s) => panic!("parsed {s:?}"),
        }
        // Missing AND: anchored at the offending token.
        match Parser::parse("SELECT * FROM t VERSIONS BETWEEN ms(1) ms(2)") {
            Err(e) => assert_eq!(e.parse_offset(), Some(39), "{e}"),
            Ok(s) => panic!("parsed {s:?}"),
        }
        // Snapshot bounds defer ordering to execution.
        assert!(Parser::parse("DIFF TABLE t BETWEEN SNAPSHOT b AND SNAPSHOT a").is_ok());
        assert!(Parser::parse("DIFF TABLE t BETWEEN ms(5)").is_err());
        assert!(Parser::parse("CREATE SNAPSHOT").is_err());
        assert!(Parser::parse("DROP SNAPSHOT").is_err());
        assert!(Parser::parse("SHOW NOTHING").is_err());
    }

    #[test]
    fn parse_errors_report_byte_offsets() {
        // "FORM" lexes as an identifier; expect_kw(FROM) fails at its
        // position (byte 9).
        match Parser::parse("SELECT * FORM t") {
            Err(e) => {
                assert_eq!(e.parse_offset(), Some(9), "{e}");
                assert!(e.to_string().contains("at byte 9"), "{e}");
            }
            Ok(s) => panic!("parsed {s:?}"),
        }
        // Offset of a bad literal inside a longer statement.
        match Parser::parse("INSERT INTO t VALUES (1, FROM)") {
            Err(e) => assert_eq!(e.parse_offset(), Some(25), "{e}"),
            Ok(s) => panic!("parsed {s:?}"),
        }
        // Truncated input points one past the end.
        match Parser::parse("SELECT * FROM") {
            Err(e) => assert_eq!(e.parse_offset(), Some(13), "{e}"),
            Ok(s) => panic!("parsed {s:?}"),
        }
        // Trailing garbage points at the first unconsumed token.
        match Parser::parse("CHECKPOINT now") {
            Err(e) => assert_eq!(e.parse_offset(), Some(11), "{e}"),
            Ok(s) => panic!("parsed {s:?}"),
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(Parser::parse("CREATE TABLE t (a int)").is_err()); // no pk
        assert!(Parser::parse("SELECT FROM t").is_err());
        assert!(Parser::parse("INSERT INTO t VALUES 1, 2").is_err());
        assert!(Parser::parse("SELECT * FROM t WHERE a ! 3").is_err());
        assert!(Parser::parse("SELECT * FROM t extra garbage ,").is_err());
        assert!(Parser::parse("CREATE TABLE t (a int PRIMARY KEY, b int PRIMARY KEY)").is_err());
    }
}
