//! Abstract syntax of the SQL dialect.

use crate::catalog::TableKind;
use crate::index::IndexKind;
use crate::row::{ColType, Value};
use crate::txn::Isolation;

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// `column op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Condition {
    pub column: String,
    pub op: CmpOp,
    pub value: Value,
}

/// Conjunction of conditions (empty = always true).
pub type Predicate = Vec<Condition>;

/// How an AS OF time was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsOfSpec {
    /// `AS OF "8/12/2004 10:15:20"` — a civil datetime (UTC).
    DateTime(String),
    /// `AS OF ms(1234567)` — raw milliseconds since the epoch.
    Millis(u64),
    /// `AS OF SNAPSHOT name` — a named snapshot's pinned timestamp.
    Snapshot(String),
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        kind: TableKind,
        /// Index structure (`USING TSB` selects the TSB-tree).
        index: IndexKind,
        columns: Vec<(String, ColType)>,
        /// Column marked PRIMARY KEY.
        pk: usize,
    },
    AlterEnableSnapshot {
        table: String,
    },
    Begin {
        as_of: Option<AsOfSpec>,
        isolation: Isolation,
    },
    Commit,
    Rollback,
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
    },
    Update {
        table: String,
        sets: Vec<(String, Value)>,
        predicate: Predicate,
    },
    Delete {
        table: String,
        predicate: Predicate,
    },
    Select {
        table: String,
        /// `None` = `*`.
        columns: Option<Vec<String>>,
        predicate: Predicate,
    },
    /// `HISTORY OF t WHERE pk = literal` — time travel for one record.
    History {
        table: String,
        pk: Value,
    },
    /// `RESTORE TABLE t AS OF …` — log-based point-in-time restore:
    /// rewrite the table's current state back to what an AS OF reader
    /// sees, as one transaction (history is preserved).
    RestoreTable {
        table: String,
        as_of: AsOfSpec,
    },
    /// `SELECT … FROM t VERSIONS BETWEEN a AND b [WHERE …]` — every
    /// version of matching keys committed in the window, delete
    /// tombstones included, each row carrying its commit timestamp.
    VersionsBetween {
        table: String,
        /// `None` = `*`.
        columns: Option<Vec<String>>,
        t1: AsOfSpec,
        t2: AsOfSpec,
        predicate: Predicate,
    },
    /// `DIFF TABLE t BETWEEN a AND b` — the net change set between the
    /// table's states at the two instants.
    DiffTable {
        table: String,
        t1: AsOfSpec,
        t2: AsOfSpec,
    },
    /// `CREATE SNAPSHOT s [AS OF …]` — pin a timestamp under a name.
    CreateSnapshot {
        name: String,
        as_of: Option<AsOfSpec>,
    },
    /// `DROP SNAPSHOT s`.
    DropSnapshot {
        name: String,
    },
    /// `SHOW SNAPSHOTS` — every named snapshot and its pinned time.
    ShowSnapshots,
    /// `CHECKPOINT` — engine maintenance.
    Checkpoint,
    /// `VACUUM` — stamp everything and reclaim all PTT entries (§2.2).
    Vacuum,
    /// `SHOW STATS` — every engine metric as `(name, value)` rows.
    ShowStats,
}
