//! SQL tokenizer.

use immortaldb_common::{Error, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare identifier or keyword (uppercased match at parse time).
    Ident(String),
    /// Integer literal (sign handled by the parser).
    Number(i64),
    /// `'…'` or `"…"` string literal.
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Lt,
    Gt,
    Le,
    Ge,
    Ne,
    Minus,
}

/// A token together with the byte offset of its first character in the
/// statement text. Offsets flow into [`Error::Parse`] so clients (and
/// the wire protocol's ERROR frames) can point at the offending token.
pub type SpannedToken = (Token, usize);

/// Tokenize a statement, recording each token's byte offset. Fails on
/// unterminated strings and unknown characters, reporting where.
pub fn tokenize_spanned(input: &str) -> Result<Vec<SpannedToken>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let at = i;
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push((Token::LParen, at));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, at));
                i += 1;
            }
            ',' => {
                out.push((Token::Comma, at));
                i += 1;
            }
            '*' => {
                out.push((Token::Star, at));
                i += 1;
            }
            '=' => {
                out.push((Token::Eq, at));
                i += 1;
            }
            '-' => {
                out.push((Token::Minus, at));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Le, at));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Token::Ne, at));
                    i += 2;
                } else {
                    out.push((Token::Lt, at));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Ge, at));
                    i += 2;
                } else {
                    out.push((Token::Gt, at));
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::Parse {
                        offset: at,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push((Token::Str(input[start..j].to_string()), at));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = input[start..i].parse().map_err(|_| Error::Parse {
                    offset: at,
                    message: format!("bad number {}", &input[start..i]),
                })?;
                out.push((Token::Number(n), at));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '[' => {
                // `[PRIMARY]`-style bracketed identifiers appear in the
                // paper's DDL; strip the brackets.
                if c == '[' {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && bytes[j] as char != ']' {
                        j += 1;
                    }
                    if j >= bytes.len() {
                        return Err(Error::Parse {
                            offset: at,
                            message: "unterminated [identifier]".into(),
                        });
                    }
                    out.push((Token::Ident(input[start..j].to_string()), at));
                    i = j + 1;
                } else {
                    let start = i;
                    while i < bytes.len() {
                        let ch = bytes[i] as char;
                        if ch.is_ascii_alphanumeric() || ch == '_' {
                            i += 1;
                        } else {
                            break;
                        }
                    }
                    out.push((Token::Ident(input[start..i].to_string()), at));
                }
            }
            other => {
                return Err(Error::Parse {
                    offset: at,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(out)
}

/// Tokenize a statement, discarding positions (tests and callers that
/// don't report offsets).
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    Ok(tokenize_spanned(input)?
        .into_iter()
        .map(|(t, _)| t)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paper_ddl() {
        let toks = tokenize(
            "Create IMMORTAL Table MovingObjects (Oid smallint PRIMARY KEY, \
             LocationX int, LocationY int) ON [PRIMARY]",
        )
        .unwrap();
        assert!(toks.contains(&Token::Ident("IMMORTAL".into())));
        assert!(toks.contains(&Token::Ident("PRIMARY".into())));
        assert_eq!(toks.iter().filter(|t| **t == Token::Comma).count(), 2);
    }

    #[test]
    fn tokenizes_operators_and_literals() {
        let toks = tokenize("WHERE a <= 10 AND b <> 'x y' AND c >= -3").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Minus));
        assert!(toks.contains(&Token::Str("x y".into())));
        assert!(toks.contains(&Token::Number(10)));
    }

    #[test]
    fn tokenizes_as_of_datetime() {
        let toks = tokenize("Begin Tran AS OF \"8/12/2004 10:15:20\"");
        // The datetime contains characters only valid inside strings.
        let toks = toks.unwrap();
        assert!(toks.contains(&Token::Str("8/12/2004 10:15:20".into())));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("SELECT ;").is_err());
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("[unterminated").is_err());
    }

    #[test]
    fn spans_are_byte_offsets() {
        let toks = tokenize_spanned("SELECT *  FROM t").unwrap();
        assert_eq!(toks[0], (Token::Ident("SELECT".into()), 0));
        assert_eq!(toks[1], (Token::Star, 7));
        assert_eq!(toks[2], (Token::Ident("FROM".into()), 10));
        assert_eq!(toks[3], (Token::Ident("t".into()), 15));
        // Lexer errors carry the offset of the offending character.
        match tokenize_spanned("SELECT ;") {
            Err(e) => assert_eq!(e.parse_offset(), Some(7)),
            Ok(t) => panic!("lexed {t:?}"),
        }
    }
}
