//! `repl-smoke` — end-to-end replication smoke test for CI.
//!
//! Topology: one primary server, two read replicas following it over the
//! wire protocol, each serving its own read-only endpoint. Under a mixed
//! write load it asserts:
//!
//! * replica `BEGIN AS OF` reads never see a torn invariant (balance
//!   transfers conserve the total) at any horizon;
//! * writes against a replica are rejected with the typed READ_ONLY code;
//! * both replicas converge to the primary's exact state within a
//!   bounded time once writers stop;
//! * `RESTORE TABLE … AS OF` on the primary returns the table to a
//!   shadow-copied earlier state, and the restore itself replicates.
//!
//! Exits non-zero (panics) on any violation; prints `SMOKE PASS` at the
//! end so the CI log is greppable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use immortaldb::{Database, DbConfig, Durability, Value};
use immortaldb_common::{Error, ErrorCode, Timestamp};
use immortaldb_net::{Client, Response, Server, ServerConfig};
use immortaldb_repl::{Replica, ReplicaConfig};

const ACCOUNTS: i64 = 8;
const BALANCE: i64 = 1_000;
const TOTAL: i64 = ACCOUNTS * BALANCE;
const WRITERS: usize = 2;
const TRANSFERS_PER_WRITER: usize = 120;
const READS_PER_REPLICA: usize = 200;

/// Order-preserving packing of a commit timestamp into one u64 so the
/// writers can share "newest commit so far" through an atomic.
fn pack(ts: Timestamp) -> u64 {
    ts.ttime * 1_000_000 + ts.sn as u64
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .as_nanos();
    let dir = std::env::temp_dir().join(format!("repl-smoke-{}-{tag}-{nanos}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sum_of(resp: &Response) -> i64 {
    resp.rows
        .iter()
        .map(|r| match &r[1] {
            Value::BigInt(b) => *b,
            other => panic!("unexpected balance value {other:?}"),
        })
        .sum()
}

fn sorted_rows(mut resp: Response) -> Vec<Vec<Value>> {
    resp.rows
        .sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    resp.rows
}

/// Retry transient failures (lock timeouts, write conflicts) until the
/// closure succeeds.
fn with_retries(mut f: impl FnMut() -> Result<(), Error>) {
    for _ in 0..50 {
        match f() {
            Ok(()) => return,
            Err(e) if e.is_transient() || matches!(e, Error::ServerBusy { .. }) => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => panic!("non-transient failure: {e}"),
        }
    }
    panic!("transfer did not succeed in 50 attempts");
}

fn main() {
    // -- primary -----------------------------------------------------------
    let primary_dir = fresh_dir("primary");
    let db = Arc::new(
        Database::open(DbConfig::new(&primary_dir).durability(Durability::Buffered)).unwrap(),
    );
    let primary =
        Server::start(Arc::clone(&db), ServerConfig::new("127.0.0.1:0").workers(6)).unwrap();
    let primary_addr = primary.local_addr().to_string();

    let mut seed = Client::connect(&primary_addr).unwrap();
    seed.query("CREATE IMMORTAL TABLE accounts (id int PRIMARY KEY, balance bigint)")
        .unwrap();
    seed.begin(immortaldb::Isolation::Serializable).unwrap();
    for id in 0..ACCOUNTS {
        seed.query(&format!("INSERT INTO accounts VALUES ({id}, {BALANCE})"))
            .unwrap();
    }
    let ts_seed = seed.commit().unwrap();
    println!(
        "seeded {ACCOUNTS} accounts at {}.{}",
        ts_seed.ttime, ts_seed.sn
    );

    // -- replicas ----------------------------------------------------------
    let mut replicas = Vec::new();
    let mut replica_addrs = Vec::new();
    for i in 0..2 {
        let r = Replica::start(
            ReplicaConfig::new(fresh_dir(&format!("replica{i}")), primary_addr.clone())
                .batch_timeout(Duration::from_secs(10)),
        )
        .unwrap();
        let srv = Server::start(
            Arc::clone(r.db()),
            ServerConfig::new("127.0.0.1:0").workers(2),
        )
        .unwrap();
        replica_addrs.push(srv.local_addr().to_string());
        replicas.push((r, srv));
    }
    println!("2 replicas bootstrapped and serving");

    // -- mixed load: writers on the primary, AS OF readers on replicas -----
    let last_commit = Arc::new(AtomicU64::new(0));
    let mut writer_handles = Vec::new();
    for w in 0..WRITERS {
        let addr = primary_addr.clone();
        let last_commit = Arc::clone(&last_commit);
        writer_handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            // Each writer transfers within its own account partition
            // (ids ≡ w mod WRITERS), so writers never deadlock against
            // each other; the conserved TOTAL is still global.
            let slots = ACCOUNTS / WRITERS as i64;
            let slot = |x: i64| WRITERS as i64 * x.rem_euclid(slots) + w as i64;
            for i in 0..TRANSFERS_PER_WRITER {
                let from = slot((i * 3) as i64);
                let to = slot((i * 3) as i64 + 1 + (i as i64 % (slots - 1)));
                let amount = 1 + (i as i64 % 7);
                with_retries(|| {
                    c.begin(immortaldb::Isolation::Serializable)?;
                    let step = (|| {
                        let a = c.query(&format!("SELECT * FROM accounts WHERE id = {from}"))?;
                        let b = c.query(&format!("SELECT * FROM accounts WHERE id = {to}"))?;
                        let (ab, bb) = (sum_of(&a), sum_of(&b));
                        c.query(&format!(
                            "UPDATE accounts SET balance = {} WHERE id = {from}",
                            ab - amount
                        ))?;
                        c.query(&format!(
                            "UPDATE accounts SET balance = {} WHERE id = {to}",
                            bb + amount
                        ))?;
                        let ts = c.commit()?;
                        last_commit.fetch_max(pack(ts), Ordering::SeqCst);
                        Ok(())
                    })();
                    if step.is_err() && c.in_transaction() {
                        let _ = c.rollback();
                    }
                    step
                });
            }
        }));
    }

    let seed_ttime = ts_seed.ttime;
    let mut reader_handles = Vec::new();
    for addr in &replica_addrs {
        let addr = addr.clone();
        reader_handles.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let mut checked = 0usize;
            for _ in 0..READS_PER_REPLICA {
                let effective = c.begin_as_of_ms(now_ms()).unwrap();
                let resp = c.query("SELECT * FROM accounts").unwrap();
                c.commit().unwrap();
                // Before the seed commit is visible the table is empty;
                // any later horizon must show a conserved total.
                if effective.ttime >= seed_ttime {
                    assert_eq!(
                        sum_of(&resp),
                        TOTAL,
                        "isolation violation at replica horizon {}.{}",
                        effective.ttime,
                        effective.sn
                    );
                    checked += 1;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            checked
        }));
    }

    for h in writer_handles {
        h.join().unwrap();
    }
    let mut total_checked = 0usize;
    for h in reader_handles {
        total_checked += h.join().unwrap();
    }
    println!(
        "writers done ({} transfers), {total_checked} replica AS OF reads checked, 0 violations",
        WRITERS * TRANSFERS_PER_WRITER
    );
    assert!(
        total_checked > 0,
        "no replica read ever saw the seed commit"
    );

    // -- bounded lag: both replicas catch the last commit ------------------
    let last = last_commit.load(Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(30);
    for (i, (r, _)) in replicas.iter().enumerate() {
        while pack(r.horizon()) < last {
            assert!(
                Instant::now() < deadline,
                "replica {i} lag exceeded 30s (horizon {:?} < packed {last})",
                r.horizon()
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    println!("both replicas converged past the last commit");

    // -- replicas serve the primary's exact state --------------------------
    let mut pc = Client::connect(&primary_addr).unwrap();
    let primary_rows = sorted_rows(pc.query("SELECT * FROM accounts").unwrap());
    for addr in &replica_addrs {
        let mut c = Client::connect(addr).unwrap();
        c.begin_as_of_ms(now_ms()).unwrap();
        let rows = sorted_rows(c.query("SELECT * FROM accounts").unwrap());
        c.commit().unwrap();
        assert_eq!(rows, primary_rows, "replica content diverged from primary");
    }
    println!("replica contents match the primary row-for-row");

    // -- writes against a replica are rejected with READ_ONLY --------------
    let mut rc = Client::connect(&replica_addrs[0]).unwrap();
    match rc.query("INSERT INTO accounts VALUES (999, 1)") {
        Err(Error::Remote { code, .. }) => assert_eq!(
            code,
            ErrorCode::ReadOnly,
            "replica write rejected with wrong code"
        ),
        other => panic!("replica write was not rejected: {other:?}"),
    }
    println!("replica write rejected with READ_ONLY over the wire");

    // -- RESTORE TABLE ... AS OF round trip --------------------------------
    let shadow = primary_rows; // state at `last` (writers are done)
    let restore_ms = now_ms();
    std::thread::sleep(Duration::from_millis(50)); // clear the 20ms tick
    pc.query("UPDATE accounts SET balance = 0 WHERE id = 0")
        .unwrap();
    pc.query("DELETE FROM accounts WHERE id = 1").unwrap();
    pc.query("INSERT INTO accounts VALUES (999, 123)").unwrap();
    let res = pc
        .query(&format!("RESTORE TABLE accounts AS OF ms({restore_ms})"))
        .unwrap();
    println!("restore: {}", res.message);
    assert!(res.affected > 0, "restore changed nothing");
    let restored = sorted_rows(pc.query("SELECT * FROM accounts").unwrap());
    assert_eq!(
        restored, shadow,
        "restore did not reproduce the shadow state"
    );
    println!("RESTORE TABLE reproduced the shadow-copied state");

    // The restore is ordinary logged work: replicas must converge to it.
    let deadline = Instant::now() + Duration::from_secs(30);
    'replicas: for addr in &replica_addrs {
        let mut c = Client::connect(addr).unwrap();
        loop {
            c.begin_as_of_ms(now_ms()).unwrap();
            let rows = sorted_rows(c.query("SELECT * FROM accounts").unwrap());
            c.commit().unwrap();
            if rows == shadow {
                continue 'replicas;
            }
            assert!(
                Instant::now() < deadline,
                "replica did not converge to the restored state"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    println!("restore replicated to both followers");

    // -- teardown ----------------------------------------------------------
    for (r, srv) in replicas {
        srv.shutdown().unwrap();
        r.stop();
    }
    primary.shutdown().unwrap();
    println!("SMOKE PASS");
}
