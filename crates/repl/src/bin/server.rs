//! `immortaldb-server` — serve one database over the wire protocol,
//! as a primary or as a read replica.
//!
//! ```text
//! immortaldb-server [--dir DIR] [--addr HOST:PORT] [--workers N]
//!                   [--thread-per-conn] [--max-connections N]
//!                   [--accept-queue N] [--idle-timeout-secs N] [--buffered]
//!                   [--sentinel] [--replica-of HOST:PORT]
//! ```
//!
//! Commits are fsync-durable by default (group commit amortizes the log
//! forces across connections); `--buffered` trades durability for speed.
//!
//! The default serving model is the readiness reactor (thousands of
//! mostly-idle connections on `--workers` execution cores);
//! `--thread-per-conn` selects the classic one-thread-per-connection
//! baseline.
//!
//! `--sentinel` arms the always-on isolation checker: every commit and
//! snapshot read streams through a lock-free tap into an online checker
//! (`check.*` in SHOW STATS). On shutdown the server prints the
//! sentinel's report and exits non-zero if any violation was confirmed.
//!
//! With `--replica-of`, the server bootstraps a replica of the given
//! primary into `--dir` (shipping its WAL over the replication frames),
//! keeps following it, and serves read-only sessions: `BEGIN AS OF` reads
//! up to the replication horizon work exactly as on the primary; writes
//! are rejected with the typed READ_ONLY error.
//!
//! The server runs until stdin closes or a `quit` line arrives, then
//! shuts down gracefully: in-flight commits drain, abandoned transactions
//! roll back, and the database closes with a final WAL force so the next
//! open replays nothing.

use std::io::BufRead;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use immortaldb::{Database, DbConfig, Durability, EventTap, Sentinel};
use immortaldb_net::{Server, ServerConfig, ServerModel};
use immortaldb_repl::{Replica, ReplicaConfig};

fn main() -> ExitCode {
    let mut dir = "immortal-data".to_string();
    let mut addr = "127.0.0.1:5433".to_string();
    let mut workers = 8usize;
    let mut accept_queue = 16usize;
    let mut max_connections = 4096usize;
    let mut idle_secs = 300u64;
    let mut durability = Durability::Fsync;
    let mut model = ServerModel::Reactor;
    let mut arm_sentinel = false;
    let mut replica_of: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match arg.as_str() {
            "--dir" => dir = take("--dir"),
            "--addr" => addr = take("--addr"),
            "--workers" => workers = take("--workers").parse().expect("--workers: number"),
            "--accept-queue" => {
                accept_queue = take("--accept-queue")
                    .parse()
                    .expect("--accept-queue: number")
            }
            "--idle-timeout-secs" => {
                idle_secs = take("--idle-timeout-secs")
                    .parse()
                    .expect("--idle-timeout-secs: number")
            }
            "--max-connections" => {
                max_connections = take("--max-connections")
                    .parse()
                    .expect("--max-connections: number")
            }
            "--thread-per-conn" => model = ServerModel::ThreadPerConn,
            "--buffered" => durability = Durability::Buffered,
            "--sentinel" => arm_sentinel = true,
            "--replica-of" => replica_of = Some(take("--replica-of")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: immortaldb-server [--dir DIR] [--addr HOST:PORT] [--workers N] \
                     [--thread-per-conn] [--max-connections N] [--accept-queue N] \
                     [--idle-timeout-secs N] [--buffered] [--sentinel] \
                     [--replica-of HOST:PORT]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let tap = arm_sentinel.then(|| EventTap::new(1 << 16));
    let (db, replica): (Arc<Database>, Option<Replica>) = match &replica_of {
        Some(primary) => {
            let mut rcfg = ReplicaConfig::new(&dir, primary.clone());
            if let Some(tap) = &tap {
                rcfg = rcfg.sentinel(Arc::clone(tap));
            }
            match Replica::start(rcfg) {
                Ok(r) => (Arc::clone(r.db()), Some(r)),
                Err(e) => {
                    eprintln!("failed to start replica of {primary} at {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => {
            let mut dcfg = DbConfig::new(&dir).durability(durability);
            if let Some(tap) = &tap {
                dcfg = dcfg.sentinel(Arc::clone(tap));
            }
            match Database::open(dcfg) {
                Ok(db) => (Arc::new(db), None),
                Err(e) => {
                    eprintln!("failed to open database at {dir}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let sentinel = tap
        .as_ref()
        .map(|tap| Sentinel::spawn(Arc::clone(tap), db.metrics().clone()));

    let cfg = ServerConfig::new(addr)
        .model(model)
        .workers(workers)
        .accept_queue(accept_queue)
        .max_connections(max_connections)
        .idle_timeout(Duration::from_secs(idle_secs));
    let server = match Server::start(db, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    let role = match &replica_of {
        Some(p) => format!("replica of {p}"),
        None => "primary".to_string(),
    };
    eprintln!(
        "immortaldb-server listening on {} (dir: {dir}, workers: {workers}, {role}); \
         type 'quit' or close stdin to stop",
        server.local_addr()
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if l.trim().eq_ignore_ascii_case("quit") => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }

    eprintln!("shutting down...");
    if let Some(r) = replica {
        r.stop();
    }
    let clean = match server.shutdown() {
        Ok(()) => true,
        Err(e) => {
            eprintln!("shutdown error: {e}");
            false
        }
    };
    let mut verified = true;
    if let Some(s) = sentinel {
        let report = s.stop();
        eprintln!(
            "sentinel: {} events, {} reads checked, {} commits checked, \
             {} unverifiable, {} dropped, {} violations",
            report.events,
            report.reads_checked,
            report.commits_checked,
            report.unverifiable,
            report.dropped,
            report.violation_count,
        );
        for v in &report.violations {
            eprintln!("sentinel violation: {v}");
        }
        verified = report.violation_count == 0;
    }
    if clean && verified {
        eprintln!("clean shutdown");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
