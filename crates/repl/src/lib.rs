//! WAL shipping: read replicas over the wire protocol.
//!
//! A [`Replica`] connects to a primary `immortaldb-net` server, bootstraps
//! a byte-identical copy of its write-ahead log (SUBSCRIBE_WAL from the
//! local log end), opens the engine in replica mode over that prefix, and
//! then keeps applying pushed WAL_BATCH frames on a follower thread:
//!
//! 1. **Bootstrap** — before the engine exists, raw batches are appended
//!    straight to the local `wal.log` until the primary signals catch-up
//!    with an empty batch. LSNs are file offsets and the stream is a byte
//!    prefix of the primary's log, so the copy is LSN-for-LSN identical.
//! 2. **Open** — [`Database::open_replica`] replays the shipped prefix
//!    (analysis + redo, no undo: the primary's in-flight transactions
//!    resolve through later shipped records).
//! 3. **Follow** — each pushed batch is appended, redone, and acked; the
//!    batch's *horizon* (sampled on the primary before its bytes) becomes
//!    the replica's visibility horizon once fully applied. Readers get
//!    `BEGIN AS OF ts` for any `ts ≤` horizon with the same isolation
//!    guarantees as on the primary; writes are rejected with the typed
//!    READ_ONLY error.
//!
//! Disconnects are retried with capped exponential backoff, resubscribing
//! from the local log end — replication is idempotent at record
//! granularity because the log position *is* the replication position.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use immortaldb::{Database, DbConfig};
use immortaldb_common::{Error, Lsn, Result, Timestamp};
use immortaldb_net::{Client, WalSubscription};
use immortaldb_obs::MetricsRegistry;
use immortaldb_storage::vfs::std_fs;
use immortaldb_storage::wal::Wal;

/// Replica tuning knobs.
#[derive(Clone)]
pub struct ReplicaConfig {
    /// Local directory for the replica's data file and shipped log.
    pub dir: PathBuf,
    /// Primary server address (`HOST:PORT`).
    pub primary: String,
    /// Buffer pool capacity in pages.
    pub pool_pages: usize,
    /// How long the follower blocks on one batch before re-checking for
    /// shutdown (and how long bootstrap waits before giving up).
    pub batch_timeout: Duration,
    /// First retry delay after a lost connection; doubles per attempt.
    pub backoff_min: Duration,
    /// Retry delay cap.
    pub backoff_max: Duration,
    /// Metrics registry to share; `None` creates a private one.
    pub metrics: Option<MetricsRegistry>,
    /// Isolation-sentinel event tap to arm on the replica engine. Share
    /// one tap with the primary and the checker verifies replica reads
    /// against the primary's commit history online (the replication
    /// horizon guarantees a commit's event precedes any replica read
    /// that could see it).
    pub sentinel: Option<Arc<immortaldb::EventTap>>,
}

impl ReplicaConfig {
    pub fn new(dir: impl Into<PathBuf>, primary: impl Into<String>) -> ReplicaConfig {
        ReplicaConfig {
            dir: dir.into(),
            primary: primary.into(),
            pool_pages: 1024,
            batch_timeout: Duration::from_secs(10),
            backoff_min: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            metrics: None,
            sentinel: None,
        }
    }

    pub fn pool_pages(mut self, n: usize) -> Self {
        self.pool_pages = n;
        self
    }

    pub fn batch_timeout(mut self, d: Duration) -> Self {
        self.batch_timeout = d;
        self
    }

    pub fn backoff(mut self, min: Duration, max: Duration) -> Self {
        self.backoff_min = min;
        self.backoff_max = max.max(min);
        self
    }

    pub fn metrics(mut self, metrics: MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    pub fn sentinel(mut self, tap: Arc<immortaldb::EventTap>) -> Self {
        self.sentinel = Some(tap);
        self
    }
}

/// A running read replica: a replica-mode [`Database`] plus the follower
/// thread keeping it fed from the primary.
pub struct Replica {
    db: Arc<Database>,
    stop: Arc<AtomicBool>,
    follower: Option<JoinHandle<()>>,
}

impl Replica {
    /// Bootstrap (or resume) a replica of `cfg.primary` in `cfg.dir` and
    /// start following. Returns once the replica has caught up with the
    /// primary's log as of connect time and the engine is open — reads
    /// can be served immediately.
    pub fn start(cfg: ReplicaConfig) -> Result<Replica> {
        std::fs::create_dir_all(&cfg.dir)?;
        let metrics = cfg.metrics.clone().unwrap_or_default();

        // Phase 1: catch the local log up before the engine exists. A
        // standalone Wal handle gives us `append_raw` plus torn-tail
        // trimming of whatever a previous run left behind.
        let horizon = {
            let wal = Wal::open_with(std_fs(), cfg.dir.join("wal.log"), metrics.clone())?;
            let mut sub = subscribe(&cfg.primary, wal.end_lsn().0)?;
            sub.set_read_timeout(Some(cfg.batch_timeout))?;
            let mut horizon = Timestamp::ZERO;
            loop {
                let batch = sub.next_batch()?;
                horizon = horizon.max(batch.horizon);
                if batch.bytes.is_empty() {
                    break; // the primary's catch-up signal
                }
                let end = wal.append_raw(Lsn(batch.start_lsn), &batch.bytes)?;
                let _ = sub.ack(end.0);
            }
            horizon
        };

        // Phase 2: open the engine over the shipped prefix (full redo).
        let mut db_cfg = DbConfig::new(&cfg.dir)
            .pool_pages(cfg.pool_pages)
            .metrics(metrics.clone());
        if let Some(tap) = cfg.sentinel.clone() {
            db_cfg = db_cfg.sentinel(tap);
        }
        let db = Arc::new(Database::open_replica(db_cfg)?);
        db.set_replication_horizon(horizon);

        // Phase 3: follow continuously.
        let stop = Arc::new(AtomicBool::new(false));
        let follower = {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("imdb-follower".into())
                .spawn(move || follower_loop(&db, &cfg, &stop))
                .map_err(Error::Io)?
        };
        Ok(Replica {
            db,
            stop,
            follower: Some(follower),
        })
    }

    /// The replica engine (serve it over `immortaldb_net::Server`, or
    /// read from it directly).
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// Newest timestamp this replica can serve `AS OF` reads at.
    pub fn horizon(&self) -> Timestamp {
        self.db.replication_horizon()
    }

    /// Stop the follower thread and return the engine (still open, still
    /// readable — it just stops advancing).
    pub fn stop(mut self) -> Arc<Database> {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(f) = self.follower.take() {
            let _ = f.join();
        }
        Arc::clone(&self.db)
    }
}

impl Drop for Replica {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(f) = self.follower.take() {
            let _ = f.join();
        }
    }
}

/// Connect, handshake, and flip the connection into a WAL subscription.
fn subscribe(primary: &str, from_lsn: u64) -> Result<WalSubscription> {
    Client::connect(primary)?.subscribe_wal(from_lsn)
}

/// Apply pushed batches forever, reconnecting with capped exponential
/// backoff. Every (re)subscription starts at the local log end, so a
/// batch that died mid-socket is simply re-shipped.
fn follower_loop(db: &Arc<Database>, cfg: &ReplicaConfig, stop: &AtomicBool) {
    let mut backoff = cfg.backoff_min;
    let mut first_attempt = true;
    while !stop.load(Ordering::SeqCst) {
        if !first_attempt {
            db.metrics().repl.reconnects.inc();
            // Sleep in small slices so `stop` stays responsive.
            let deadline = std::time::Instant::now() + backoff;
            while std::time::Instant::now() < deadline {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10).min(backoff));
            }
            backoff = (backoff * 2).min(cfg.backoff_max);
        }
        first_attempt = false;

        let mut sub = match subscribe(&cfg.primary, db.wal().end_lsn().0) {
            Ok(s) => s,
            Err(_) => continue,
        };
        if sub
            .set_read_timeout(Some(cfg.batch_timeout.min(Duration::from_millis(250))))
            .is_err()
        {
            continue;
        }
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let batch = match sub.next_batch() {
                Ok(b) => b,
                Err(Error::Io(e))
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue; // idle tick; check stop and keep waiting
                }
                Err(_) => break, // lost or corrupted stream: resubscribe
            };
            match db.replica_apply(Lsn(batch.start_lsn), &batch.bytes, batch.horizon) {
                Ok(_) => {
                    backoff = cfg.backoff_min; // healthy stream
                    let _ = sub.ack(db.wal().end_lsn().0);
                }
                Err(_) => break, // misaligned batch: resubscribe from our end
            }
        }
    }
}
